//! Lazy SPR rounds with bounded regraft radius.
//!
//! The RAxML-Light strategy: for every candidate subtree, try regraft
//! positions within a hop radius of its current location, score each
//! with a *lazy* evaluation (no branch re-optimization during
//! scoring), keep the best improvement, and re-smooth branch lengths
//! once per round. Scoring a candidate is exactly one `evaluate` plus
//! the `newview`s invalidated by the rearrangement — the invocation
//! pattern whose latency sensitivity §V-C analyzes.

use crate::Evaluator;
use phylo_tree::moves::{spr, spr_undo};
use phylo_tree::traverse::edges_within;
use phylo_tree::{EdgeId, NodeId, Tree};

/// Result of one SPR improvement round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SprRoundResult {
    /// Best log-likelihood after the round.
    pub log_likelihood: f64,
    /// Number of accepted rearrangements.
    pub accepted: usize,
    /// Number of candidate rearrangements scored.
    pub evaluated: usize,
}

/// All (prune_edge, subtree_root) candidates: every directed edge
/// whose far end is an inner node (so there is an attachment point to
/// travel with the subtree).
fn prune_candidates(tree: &Tree) -> Vec<(EdgeId, NodeId)> {
    let mut out = Vec::new();
    for e in tree.edge_ids() {
        let (a, b) = tree.endpoints(e);
        if !tree.is_tip(b) {
            out.push((e, a));
        }
        if !tree.is_tip(a) {
            out.push((e, b));
        }
    }
    out
}

/// Performs one SPR round over all prune candidates with the given
/// regraft `radius`. Each candidate's best regraft is applied
/// immediately when it improves the current score by more than
/// `epsilon` (first-improvement hill climbing, as in RAxML's fast
/// phase).
pub fn spr_round<E: Evaluator + ?Sized>(
    evaluator: &mut E,
    tree: &mut Tree,
    radius: usize,
    epsilon: f64,
) -> SprRoundResult {
    let _span = plf_core::span::enter("spr_round");
    let mut current = evaluator.log_likelihood(tree, 0);
    let mut accepted = 0;
    let mut evaluated = 0;

    for (prune_edge, subtree_root) in prune_candidates(tree) {
        // Accepted moves re-wire edges, so a candidate computed at
        // round start may have gone stale: re-validate it against the
        // current tree before use.
        {
            let (a, b) = tree.endpoints(prune_edge);
            if a != subtree_root && b != subtree_root {
                continue;
            }
            let far = if a == subtree_root { b } else { a };
            if tree.is_tip(far) {
                continue;
            }
        }
        let targets = edges_within(tree, prune_edge, radius);
        let mut best: Option<(f64, EdgeId)> = None;
        for target in targets {
            let undo = match spr(tree, prune_edge, subtree_root, target) {
                Ok(u) => u,
                Err(_) => continue, // invalid placement, skip
            };
            let ll = evaluator.log_likelihood(tree, prune_edge);
            evaluated += 1;
            spr_undo(tree, undo).expect("undo of a just-applied SPR");
            if ll > best.map_or(f64::NEG_INFINITY, |(b, _)| b) {
                best = Some((ll, target));
            }
        }
        // Apply the best lazy candidate, then re-optimize the three
        // branches around the new attachment point (RAxML's local
        // smoothing): the lazy score underestimates good placements
        // because the regraft splits its target edge naively.
        if let Some((lazy_ll, target)) = best {
            if lazy_ll <= current - 2.0 {
                continue; // hopeless even before local smoothing
            }
            let undo = spr(tree, prune_edge, subtree_root, target)
                .expect("best candidate was applicable during scoring");
            let p = {
                let (a, b) = tree.endpoints(prune_edge);
                if a == subtree_root {
                    b
                } else {
                    a
                }
            };
            let local: Vec<EdgeId> = tree.incident(p).to_vec();
            let saved: Vec<(EdgeId, f64)> = local.iter().map(|&e| (e, tree.length(e))).collect();
            for &e in &local {
                crate::newton::optimize_branch(evaluator, tree, e);
            }
            let ll = evaluator.log_likelihood(tree, prune_edge);
            evaluated += 1;
            if ll > current + epsilon {
                current = ll;
                accepted += 1;
            } else {
                for (e, len) in saved {
                    tree.set_length(e, len).expect("restoring a valid length");
                }
                spr_undo(tree, undo).expect("undo of a just-applied SPR");
            }
        }
    }

    plf_core::metrics::counter("spr.moves.evaluated").add(evaluated as u64);
    plf_core::metrics::counter("spr.moves.accepted").add(accepted as u64);
    plf_core::metrics::counter("spr.moves.rejected").add((evaluated - accepted) as u64);
    SprRoundResult {
        log_likelihood: current,
        accepted,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_bio::CompressedAlignment;
    use phylo_models::{DiscreteGamma, Gtr, GtrParams};
    use phylo_tree::build::{default_names, random_tree};
    use plf_core::{EngineConfig, LikelihoodEngine};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn prune_candidates_cover_directed_inner_edges() {
        let t = phylo_tree::newick::parse("((a:0.1,b:0.1):0.1,c:0.1,(d:0.1,e:0.1):0.1);").unwrap();
        let cands = prune_candidates(&t);
        // Every edge has ≥1 inner endpoint in a binary tree, pendant
        // edges contribute 1 candidate, internal edges 2.
        let internal = t.internal_edges().count();
        let pendant = t.num_edges() - internal;
        assert_eq!(cands.len(), pendant + 2 * internal);
    }

    #[test]
    fn spr_round_recovers_true_topology_on_easy_data() {
        // Simulate clean data on a known tree, start from a random
        // topology, and check that SPR rounds reach the true topology
        // (or at least strictly improve and leave a valid tree).
        let mut rng = SmallRng::seed_from_u64(77);
        let names = default_names(7);
        let true_tree = random_tree(&names, 0.12, &mut rng).unwrap();
        let g = Gtr::new(GtrParams::jc69());
        let gamma = DiscreteGamma::new(5.0);
        let aln = phylo_seqgen::simulate_alignment(&true_tree, g.eigen(), &gamma, 5000, &mut rng);
        let ca = CompressedAlignment::from_alignment(&aln);

        let mut tree = random_tree(&names, 0.1, &mut SmallRng::seed_from_u64(123)).unwrap();
        let mut engine = LikelihoodEngine::new(&tree, &ca, EngineConfig::default());
        let start = engine.log_likelihood(&tree, 0);

        let mut last = start;
        for _ in 0..6 {
            let r = spr_round(&mut engine, &mut tree, 5, 1e-3);
            crate::branch_opt::smooth_branches(&mut engine, &mut tree, 1e-2, 4);
            let n = crate::nni::nni_round(&mut engine, &mut tree, 1e-3);
            let now = engine.log_likelihood(&tree, 0);
            assert!(now >= last - 1e-6);
            if r.accepted == 0 && n.accepted == 0 {
                break;
            }
            last = now;
        }
        tree.validate().unwrap();
        assert!(last > start, "no improvement from SPR search");
        assert_eq!(
            tree.rf_distance(&true_tree),
            0,
            "did not recover the true topology (got RF {})",
            tree.rf_distance(&true_tree)
        );
    }
}
