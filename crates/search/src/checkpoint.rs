//! Search checkpointing and restart.
//!
//! RAxML-Light bills itself as "a tool for computing terabyte
//! phylogenies": week-long searches on supercomputers survive job time
//! limits by checkpointing. This module provides the same capability
//! for our search driver — the complete optimizer state (topology,
//! branch lengths, model parameters, progress counters) round-trips
//! through a small, versioned, human-readable text format.
//!
//! Restarting is deterministic: resuming the same checkpoint twice
//! yields identical results. It is *trajectory-equivalent* rather than
//! bit-identical to the uninterrupted run — the Newick round-trip
//! re-anchors the tree arena, which permutes the (arbitrary but
//! trajectory-relevant) edge enumeration order, so the hill-climb may
//! take a different path to an equally good optimum.

use phylo_models::GtrParams;
use phylo_tree::{newick, Tree, TreeError};

/// A complete, restartable snapshot of an ML search.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Current tree with branch lengths, as Newick.
    pub newick: String,
    /// Γ shape parameter.
    pub alpha: f64,
    /// GTR parameters.
    pub params: GtrParams,
    /// Completed improvement rounds.
    pub rounds_done: usize,
    /// Best log-likelihood so far.
    pub log_likelihood: f64,
    /// Cumulative SPR/NNI candidates scored.
    pub moves_evaluated: usize,
    /// Cumulative accepted rearrangements.
    pub moves_accepted: usize,
}

/// Format tag; bump on breaking changes.
const MAGIC: &str = "phylomic-checkpoint v1";

impl Checkpoint {
    /// Serializes to the versioned text format.
    pub fn to_text(&self) -> String {
        let r = &self.params.rates;
        let f = &self.params.freqs;
        format!(
            "{MAGIC}\n\
             tree {}\n\
             alpha {:.17e}\n\
             rates {:.17e} {:.17e} {:.17e} {:.17e} {:.17e} {:.17e}\n\
             freqs {:.17e} {:.17e} {:.17e} {:.17e}\n\
             rounds_done {}\n\
             log_likelihood {:.17e}\n\
             moves_evaluated {}\n\
             moves_accepted {}\n",
            self.newick,
            self.alpha,
            r[0],
            r[1],
            r[2],
            r[3],
            r[4],
            r[5],
            f[0],
            f[1],
            f[2],
            f[3],
            self.rounds_done,
            self.log_likelihood,
            self.moves_evaluated,
            self.moves_accepted,
        )
    }

    /// Parses the text format, validating the tree and model.
    pub fn from_text(text: &str) -> Result<Checkpoint, String> {
        let mut lines = text.lines();
        let magic = lines.next().ok_or("empty checkpoint")?;
        if magic.trim() != MAGIC {
            return Err(format!("unrecognized checkpoint header {magic:?}"));
        }
        let mut newick_s = None;
        let mut alpha = None;
        let mut rates: Option<[f64; 6]> = None;
        let mut freqs: Option<[f64; 4]> = None;
        let mut rounds_done = None;
        let mut log_likelihood = None;
        let mut moves_evaluated = None;
        let mut moves_accepted = None;

        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, rest) = line
                .split_once(' ')
                .ok_or_else(|| format!("malformed checkpoint line {line:?}"))?;
            let floats = |s: &str, n: usize| -> Result<Vec<f64>, String> {
                let v: Result<Vec<f64>, _> = s.split_whitespace().map(str::parse::<f64>).collect();
                let v = v.map_err(|e| format!("bad number in {key}: {e}"))?;
                if v.len() != n {
                    return Err(format!("{key}: expected {n} values, got {}", v.len()));
                }
                Ok(v)
            };
            match key {
                "tree" => newick_s = Some(rest.to_string()),
                "alpha" => alpha = Some(floats(rest, 1)?[0]),
                "rates" => {
                    let v = floats(rest, 6)?;
                    rates = Some([v[0], v[1], v[2], v[3], v[4], v[5]]);
                }
                "freqs" => {
                    let v = floats(rest, 4)?;
                    freqs = Some([v[0], v[1], v[2], v[3]]);
                }
                "rounds_done" => {
                    rounds_done = Some(rest.parse().map_err(|e| format!("rounds_done: {e}"))?)
                }
                "log_likelihood" => log_likelihood = Some(floats(rest, 1)?[0]),
                "moves_evaluated" => {
                    moves_evaluated =
                        Some(rest.parse().map_err(|e| format!("moves_evaluated: {e}"))?)
                }
                "moves_accepted" => {
                    moves_accepted = Some(rest.parse().map_err(|e| format!("moves_accepted: {e}"))?)
                }
                other => return Err(format!("unknown checkpoint key {other:?}")),
            }
        }

        let cp = Checkpoint {
            newick: newick_s.ok_or("missing tree")?,
            alpha: alpha.ok_or("missing alpha")?,
            params: GtrParams {
                rates: rates.ok_or("missing rates")?,
                freqs: freqs.ok_or("missing freqs")?,
            },
            rounds_done: rounds_done.ok_or("missing rounds_done")?,
            log_likelihood: log_likelihood.ok_or("missing log_likelihood")?,
            moves_evaluated: moves_evaluated.ok_or("missing moves_evaluated")?,
            moves_accepted: moves_accepted.ok_or("missing moves_accepted")?,
        };
        cp.validate()?;
        Ok(cp)
    }

    /// Sanity-checks the restored state.
    pub fn validate(&self) -> Result<(), String> {
        self.tree().map_err(|e| format!("invalid tree: {e}"))?;
        self.params.validate()?;
        if !(self.alpha.is_finite() && self.alpha > 0.0) {
            return Err(format!("invalid alpha {}", self.alpha));
        }
        if !self.log_likelihood.is_finite() {
            return Err("non-finite log-likelihood".into());
        }
        Ok(())
    }

    /// The checkpointed tree.
    pub fn tree(&self) -> Result<Tree, TreeError> {
        newick::parse(&self.newick)
    }

    /// Writes the checkpoint atomically (temp file + rename), the only
    /// safe pattern when the scheduler may kill the job mid-write.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_text())?;
        std::fs::rename(&tmp, path)
    }

    /// Loads and validates a checkpoint file.
    pub fn load(path: &std::path::Path) -> Result<Checkpoint, String> {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        Checkpoint::from_text(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            newick: "((a:0.1,b:0.2):0.3,c:0.05,(d:0.21,e:0.07):0.4);".into(),
            alpha: 0.734,
            params: GtrParams {
                rates: [1.2, 2.8123456789, 0.9, 1.1, 3.3, 1.0],
                freqs: [0.3, 0.2, 0.2, 0.3],
            },
            rounds_done: 3,
            log_likelihood: -12345.678901234567,
            moves_evaluated: 420,
            moves_accepted: 7,
        }
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let cp = sample();
        let back = Checkpoint::from_text(&cp.to_text()).unwrap();
        assert_eq!(cp, back);
        // Float precision survives (17 significant digits).
        assert_eq!(cp.log_likelihood.to_bits(), back.log_likelihood.to_bits());
        assert_eq!(cp.params.rates[1].to_bits(), back.params.rates[1].to_bits());
    }

    #[test]
    fn file_roundtrip_atomic() {
        let dir = std::env::temp_dir().join("phylomic-cp-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run1.ckp");
        let cp = sample();
        cp.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(cp, back);
        assert!(!path.with_extension("tmp").exists(), "temp file cleaned up");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_inputs_rejected() {
        assert!(Checkpoint::from_text("").is_err());
        assert!(Checkpoint::from_text("wrong header\n").is_err());
        let cp = sample();
        // Truncated: drop the last line.
        let text = cp.to_text();
        let truncated: String = text
            .lines()
            .take(text.lines().count() - 1)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(Checkpoint::from_text(&truncated).is_err());
        // Corrupted tree.
        let bad = text.replace("tree (", "tree [");
        assert!(Checkpoint::from_text(&bad).is_err());
        // Unknown key.
        let evil = format!("{text}surprise 1\n");
        assert!(Checkpoint::from_text(&evil).is_err());
        // Invalid model.
        let bad_alpha = text.replace("alpha 7", "alpha -7");
        assert!(Checkpoint::from_text(&bad_alpha).is_err());
    }

    #[test]
    fn tree_restores_topology_and_lengths() {
        let cp = sample();
        let t = cp.tree().unwrap();
        assert_eq!(t.num_taxa(), 5);
        assert!((t.total_length() - 1.33).abs() < 1e-9);
    }
}
