//! Search checkpointing and restart.
//!
//! RAxML-Light bills itself as "a tool for computing terabyte
//! phylogenies": week-long searches on supercomputers survive job time
//! limits by checkpointing. This module provides the same capability
//! for our search driver — the complete optimizer state (topology,
//! branch lengths, model parameters, progress counters) round-trips
//! through a small, versioned, human-readable text format.
//!
//! Restarting is deterministic: resuming the same checkpoint twice
//! yields identical results. It is *trajectory-equivalent* rather than
//! bit-identical to the uninterrupted run — the Newick round-trip
//! re-anchors the tree arena, which permutes the (arbitrary but
//! trajectory-relevant) edge enumeration order, so the hill-climb may
//! take a different path to an equally good optimum.

use phylo_models::GtrParams;
use phylo_tree::{newick, Tree, TreeError};
use std::path::Path;
use std::time::Duration;

/// Writes `content` to `path` atomically *and durably*: same-directory
/// temp file (suffixed `.tmp.<pid>` so sibling files and concurrent
/// processes never collide), `fsync` of the temp file before the
/// rename (otherwise a crash can publish an empty or truncated file
/// under the final name), rename, then `fsync` of the parent
/// directory so the rename itself survives a power cut. This is the
/// one write path for every artifact a crash must not corrupt —
/// checkpoints here, traces in the CLI.
pub fn write_atomic(path: &Path, content: &str) -> std::io::Result<()> {
    use std::io::Write;
    let file_name = path.file_name().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("{} has no file name", path.display()),
        )
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let written = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(content.as_bytes())?;
        // Data must be on disk *before* the rename publishes the
        // name, or a crash surfaces a truncated file that parses as
        // garbage.
        f.sync_all()
    })();
    if let Err(e) = written {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    // Durable rename: fsync the directory entry. Directories can't be
    // opened for syncing on every platform; skip silently where the
    // open fails (the data fsync above already happened).
    let parent = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    if let Ok(dir) = std::fs::File::open(parent) {
        dir.sync_all()?;
    }
    Ok(())
}

/// Bounded retry-with-backoff for checkpoint I/O: attempt `attempts`
/// times, sleeping `base_backoff * 2^k` between tries. A transient
/// `ENOSPC`/`EIO` during a week-long search should cost a few retries,
/// not the whole run.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total write attempts (≥ 1) before giving up.
    pub attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base_backoff: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// Doubling stops at `base_backoff * 2^MAX_SHIFT`: a shift clamp,
    /// not just a duration cap, so the `1 << k` can never overflow no
    /// matter how large `attempts` is configured.
    const MAX_SHIFT: u32 = 6;

    /// Hard ceiling on any single sleep, whatever `base_backoff` says.
    const MAX_SLEEP: Duration = Duration::from_secs(30);

    /// Ceiling on the *sum* of sleeps across one `save_with_retry`
    /// call. Once spent, remaining retries fire back-to-back: a
    /// checkpoint writer configured with `attempts: 80` must not
    /// stall a search for minutes.
    const MAX_TOTAL_SLEEP: Duration = Duration::from_secs(120);

    /// A policy that never retries (single attempt).
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            base_backoff: Duration::ZERO,
        }
    }

    /// The sleep after failed attempt number `attempt` (1-based):
    /// `base_backoff * 2^(attempt-1)` with the exponent clamped to
    /// [`Self::MAX_SHIFT`] and the product capped at
    /// [`Self::MAX_SLEEP`]. Total fuzz across a call is further
    /// bounded by [`Self::MAX_TOTAL_SLEEP`] in the retry loop.
    pub fn backoff_after(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(Self::MAX_SHIFT);
        self.base_backoff
            .saturating_mul(1u32 << shift)
            .min(Self::MAX_SLEEP)
    }
}

/// A complete, restartable snapshot of an ML search.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Current tree with branch lengths, as Newick.
    pub newick: String,
    /// Γ shape parameter.
    pub alpha: f64,
    /// GTR parameters.
    pub params: GtrParams,
    /// Completed improvement rounds.
    pub rounds_done: usize,
    /// Best log-likelihood so far.
    pub log_likelihood: f64,
    /// Cumulative SPR/NNI candidates scored.
    pub moves_evaluated: usize,
    /// Cumulative accepted rearrangements.
    pub moves_accepted: usize,
}

/// Format tag; bump on breaking changes.
const MAGIC: &str = "phylomic-checkpoint v1";

impl Checkpoint {
    /// Serializes to the versioned text format.
    pub fn to_text(&self) -> String {
        let r = &self.params.rates;
        let f = &self.params.freqs;
        format!(
            "{MAGIC}\n\
             tree {}\n\
             alpha {:.17e}\n\
             rates {:.17e} {:.17e} {:.17e} {:.17e} {:.17e} {:.17e}\n\
             freqs {:.17e} {:.17e} {:.17e} {:.17e}\n\
             rounds_done {}\n\
             log_likelihood {:.17e}\n\
             moves_evaluated {}\n\
             moves_accepted {}\n",
            self.newick,
            self.alpha,
            r[0],
            r[1],
            r[2],
            r[3],
            r[4],
            r[5],
            f[0],
            f[1],
            f[2],
            f[3],
            self.rounds_done,
            self.log_likelihood,
            self.moves_evaluated,
            self.moves_accepted,
        )
    }

    /// Parses the text format, validating the tree and model.
    pub fn from_text(text: &str) -> Result<Checkpoint, String> {
        let mut lines = text.lines();
        let magic = lines.next().ok_or("empty checkpoint")?;
        if magic.trim() != MAGIC {
            return Err(format!("unrecognized checkpoint header {magic:?}"));
        }
        let mut newick_s = None;
        let mut alpha = None;
        let mut rates: Option<[f64; 6]> = None;
        let mut freqs: Option<[f64; 4]> = None;
        let mut rounds_done = None;
        let mut log_likelihood = None;
        let mut moves_evaluated = None;
        let mut moves_accepted = None;

        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, rest) = line
                .split_once(' ')
                .ok_or_else(|| format!("malformed checkpoint line {line:?}"))?;
            let floats = |s: &str, n: usize| -> Result<Vec<f64>, String> {
                let v: Result<Vec<f64>, _> = s.split_whitespace().map(str::parse::<f64>).collect();
                let v = v.map_err(|e| format!("bad number in {key}: {e}"))?;
                if v.len() != n {
                    return Err(format!("{key}: expected {n} values, got {}", v.len()));
                }
                Ok(v)
            };
            // Duplicate keys mean a concatenated or otherwise
            // corrupted file; silently letting the last value win
            // would mask it, so reject.
            let dup = |key: &str| format!("duplicate checkpoint key {key:?}");
            match key {
                "tree" if newick_s.is_some() => return Err(dup(key)),
                "tree" => newick_s = Some(rest.to_string()),
                "alpha" if alpha.is_some() => return Err(dup(key)),
                "alpha" => alpha = Some(floats(rest, 1)?[0]),
                "rates" if rates.is_some() => return Err(dup(key)),
                "rates" => {
                    let v = floats(rest, 6)?;
                    rates = Some([v[0], v[1], v[2], v[3], v[4], v[5]]);
                }
                "freqs" if freqs.is_some() => return Err(dup(key)),
                "freqs" => {
                    let v = floats(rest, 4)?;
                    freqs = Some([v[0], v[1], v[2], v[3]]);
                }
                "rounds_done" if rounds_done.is_some() => return Err(dup(key)),
                "rounds_done" => {
                    rounds_done = Some(rest.parse().map_err(|e| format!("rounds_done: {e}"))?)
                }
                "log_likelihood" if log_likelihood.is_some() => return Err(dup(key)),
                "log_likelihood" => log_likelihood = Some(floats(rest, 1)?[0]),
                "moves_evaluated" if moves_evaluated.is_some() => return Err(dup(key)),
                "moves_evaluated" => {
                    moves_evaluated =
                        Some(rest.parse().map_err(|e| format!("moves_evaluated: {e}"))?)
                }
                "moves_accepted" if moves_accepted.is_some() => return Err(dup(key)),
                "moves_accepted" => {
                    moves_accepted = Some(rest.parse().map_err(|e| format!("moves_accepted: {e}"))?)
                }
                other => return Err(format!("unknown checkpoint key {other:?}")),
            }
        }

        let cp = Checkpoint {
            newick: newick_s.ok_or("missing tree")?,
            alpha: alpha.ok_or("missing alpha")?,
            params: GtrParams {
                rates: rates.ok_or("missing rates")?,
                freqs: freqs.ok_or("missing freqs")?,
            },
            rounds_done: rounds_done.ok_or("missing rounds_done")?,
            log_likelihood: log_likelihood.ok_or("missing log_likelihood")?,
            moves_evaluated: moves_evaluated.ok_or("missing moves_evaluated")?,
            moves_accepted: moves_accepted.ok_or("missing moves_accepted")?,
        };
        cp.validate()?;
        Ok(cp)
    }

    /// Sanity-checks the restored state.
    pub fn validate(&self) -> Result<(), String> {
        self.tree().map_err(|e| format!("invalid tree: {e}"))?;
        self.params.validate()?;
        if !(self.alpha.is_finite() && self.alpha > 0.0) {
            return Err(format!("invalid alpha {}", self.alpha));
        }
        if !self.log_likelihood.is_finite() {
            return Err("non-finite log-likelihood".into());
        }
        Ok(())
    }

    /// The checkpointed tree.
    pub fn tree(&self) -> Result<Tree, TreeError> {
        newick::parse(&self.newick)
    }

    /// Writes the checkpoint atomically and durably (see
    /// [`write_atomic`]), the only safe pattern when the scheduler may
    /// kill the job mid-write.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        write_atomic(path, &self.to_text())
    }

    /// [`Self::save`] under a bounded [`RetryPolicy`].
    pub fn save_with_retry(
        &self,
        path: &std::path::Path,
        policy: &RetryPolicy,
    ) -> std::io::Result<()> {
        self.save_with_retry_injected(path, policy, &mut || None)
    }

    /// [`Self::save_with_retry`] with a deterministic fault hook:
    /// `inject` is called once per attempt and may return the I/O
    /// error that attempt "fails" with before touching the
    /// filesystem. Production callers pass a hook that always returns
    /// `None`; the failure-injection tests and `--inject-fault
    /// ckpt-write=N` script it.
    pub fn save_with_retry_injected(
        &self,
        path: &std::path::Path,
        policy: &RetryPolicy,
        inject: &mut dyn FnMut() -> Option<std::io::Error>,
    ) -> std::io::Result<()> {
        assert!(policy.attempts >= 1, "retry policy needs >= 1 attempt");
        let text = self.to_text();
        let mut attempt = 0u32;
        let mut slept = Duration::ZERO;
        loop {
            attempt += 1;
            let result = match inject() {
                Some(e) => Err(e),
                None => write_atomic(path, &text),
            };
            match result {
                Ok(()) => return Ok(()),
                Err(e) if attempt >= policy.attempts => return Err(e),
                Err(_) => {
                    let nap = policy
                        .backoff_after(attempt)
                        .min(RetryPolicy::MAX_TOTAL_SLEEP.saturating_sub(slept));
                    slept += nap;
                    std::thread::sleep(nap);
                }
            }
        }
    }

    /// Loads and validates a checkpoint file.
    pub fn load(path: &std::path::Path) -> Result<Checkpoint, String> {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        Checkpoint::from_text(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            newick: "((a:0.1,b:0.2):0.3,c:0.05,(d:0.21,e:0.07):0.4);".into(),
            alpha: 0.734,
            params: GtrParams {
                rates: [1.2, 2.8123456789, 0.9, 1.1, 3.3, 1.0],
                freqs: [0.3, 0.2, 0.2, 0.3],
            },
            rounds_done: 3,
            log_likelihood: -12345.678901234567,
            moves_evaluated: 420,
            moves_accepted: 7,
        }
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let cp = sample();
        let back = Checkpoint::from_text(&cp.to_text()).unwrap();
        assert_eq!(cp, back);
        // Float precision survives (17 significant digits).
        assert_eq!(cp.log_likelihood.to_bits(), back.log_likelihood.to_bits());
        assert_eq!(cp.params.rates[1].to_bits(), back.params.rates[1].to_bits());
    }

    #[test]
    fn file_roundtrip_atomic() {
        let dir = std::env::temp_dir().join(format!("phylomic-cp-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run1.ckp");
        let cp = sample();
        cp.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(cp, back);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression: `path.with_extension("tmp")` collided with sibling
    /// files (`run1.ckp` → `run1.tmp`) and with concurrent processes
    /// writing the same checkpoint. The pid-suffixed temp name must
    /// leave unrelated siblings untouched.
    #[test]
    fn temp_file_never_collides_with_siblings() {
        let dir = std::env::temp_dir().join(format!("phylomic-cp-collide-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sibling = dir.join("run1.tmp");
        std::fs::write(&sibling, "precious sibling data").unwrap();
        let stale = dir.join("run1.ckp.tmp.999999");
        std::fs::write(&stale, "stale tmp from a dead process").unwrap();
        let path = dir.join("run1.ckp");
        let cp = sample();
        cp.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), cp);
        assert_eq!(
            std::fs::read_to_string(&sibling).unwrap(),
            "precious sibling data",
            "sibling .tmp file clobbered"
        );
        assert_eq!(
            std::fs::read_to_string(&stale).unwrap(),
            "stale tmp from a dead process",
            "another process's temp file clobbered"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_with_retry_survives_transient_errors_and_bounds_attempts() {
        let dir = std::env::temp_dir().join(format!("phylomic-cp-retry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("retry.ckp");
        let cp = sample();
        let policy = RetryPolicy {
            attempts: 4,
            base_backoff: Duration::from_millis(1),
        };

        // Two transient failures, then success.
        let mut calls = 0u32;
        cp.save_with_retry_injected(&path, &policy, &mut || {
            calls += 1;
            (calls <= 2).then(|| std::io::Error::other("injected ENOSPC"))
        })
        .unwrap();
        assert_eq!(calls, 3);
        assert_eq!(Checkpoint::load(&path).unwrap(), cp);

        // Persistent failure: gives up after exactly `attempts` tries
        // with the last error.
        let mut calls = 0u32;
        let err = cp
            .save_with_retry_injected(&path, &policy, &mut || {
                calls += 1;
                Some(std::io::Error::other("injected EIO"))
            })
            .unwrap_err();
        assert_eq!(calls, 4);
        assert!(err.to_string().contains("injected EIO"));
        // The previously saved checkpoint is untouched (failed
        // attempts never went through the rename).
        assert_eq!(Checkpoint::load(&path).unwrap(), cp);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retry_backoff_is_clamped_at_large_attempt_counts() {
        // Regression: the retry loop used to compute `1 << (attempt-1)`
        // from the raw attempt number; a policy with dozens of attempts
        // would overflow the shift (panic in debug, garbage sleeps in
        // release). The shift is now clamped, every sleep is capped,
        // and an `attempts: 80` policy with a tiny base must run all
        // 80 attempts promptly instead of stalling or panicking.
        let policy = RetryPolicy {
            attempts: 80,
            base_backoff: Duration::from_nanos(1),
        };
        for attempt in 1..=80 {
            let nap = policy.backoff_after(attempt);
            assert!(
                nap <= Duration::from_nanos(64),
                "attempt {attempt}: shift not clamped, slept {nap:?}"
            );
        }
        // Doubling a large base saturates at the per-sleep ceiling
        // rather than multiplying into minutes.
        let slow = RetryPolicy {
            attempts: 80,
            base_backoff: Duration::from_secs(3600),
        };
        assert_eq!(slow.backoff_after(80), RetryPolicy::MAX_SLEEP);

        let dir = std::env::temp_dir().join(format!("phylomic-cp-r80-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r80.ckp");
        let cp = sample();
        let mut calls = 0u32;
        let t0 = std::time::Instant::now();
        let err = cp
            .save_with_retry_injected(&path, &policy, &mut || {
                calls += 1;
                Some(std::io::Error::other("injected EIO"))
            })
            .unwrap_err();
        assert_eq!(calls, 80);
        assert!(err.to_string().contains("injected EIO"));
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "80 nanosecond-scale retries took {:?}",
            t0.elapsed()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let cp = sample();
        let text = cp.to_text();
        // A concatenated/duplicated file must not silently let the
        // last value win.
        for key in ["tree", "alpha", "rates", "freqs", "rounds_done"] {
            let line = text
                .lines()
                .find(|l| l.starts_with(key))
                .unwrap_or_else(|| panic!("no {key} line"));
            let doubled = format!("{text}{line}\n");
            let err = Checkpoint::from_text(&doubled).unwrap_err();
            assert!(
                err.contains("duplicate") && err.contains(key),
                "key {key}: unexpected error {err:?}"
            );
        }
        // Self-concatenation (two whole checkpoints) is also rejected.
        let cat = format!("{text}{text}");
        assert!(Checkpoint::from_text(&cat).is_err());
    }

    #[test]
    fn corrupted_inputs_rejected() {
        assert!(Checkpoint::from_text("").is_err());
        assert!(Checkpoint::from_text("wrong header\n").is_err());
        let cp = sample();
        // Truncated: drop the last line.
        let text = cp.to_text();
        let truncated: String = text
            .lines()
            .take(text.lines().count() - 1)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(Checkpoint::from_text(&truncated).is_err());
        // Corrupted tree.
        let bad = text.replace("tree (", "tree [");
        assert!(Checkpoint::from_text(&bad).is_err());
        // Unknown key.
        let evil = format!("{text}surprise 1\n");
        assert!(Checkpoint::from_text(&evil).is_err());
        // Invalid model.
        let bad_alpha = text.replace("alpha 7", "alpha -7");
        assert!(Checkpoint::from_text(&bad_alpha).is_err());
    }

    #[test]
    fn tree_restores_topology_and_lengths() {
        let cp = sample();
        let t = cp.tree().unwrap();
        assert_eq!(t.num_taxa(), 5);
        assert!((t.total_length() - 1.33).abs() < 1e-9);
    }
}
