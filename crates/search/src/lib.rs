#![warn(missing_docs)]
//! Maximum-likelihood tree search — the RAxML-Light workload.
//!
//! This crate rebuilds the search layer the paper integrates its
//! kernels into: Newton-Raphson branch-length optimization driven by
//! the `derivativeSum`/`derivativeCore` kernels ([`newton`]), Brent
//! optimization of the Γ shape and GTR exchangeabilities
//! ([`model_opt`]), lazy SPR rounds with bounded regraft radius
//! ([`spr`]), and the full search driver ([`search`]).
//!
//! Everything is written against the [`Evaluator`] abstraction rather
//! than a concrete engine, so the identical search code runs
//! single-threaded, under the fork-join worker scheme, or under the
//! ExaML replicated scheme (where every rank executes this code in
//! lockstep and reductions hide inside `Evaluator::log_likelihood`).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bootstrap;
pub mod branch_opt;
pub mod cat_opt;
pub mod checkpoint;
pub mod mcmc;
pub mod model_opt;
pub mod newton;
pub mod nni;
pub mod parsimony;
pub mod partitioned;
pub mod search;
pub mod spr;

pub use search::{MlSearch, SearchConfig, SearchResult};

use phylo_models::GtrParams;
use phylo_tree::{EdgeId, Tree};
use plf_core::LikelihoodEngine;

/// The likelihood services the search needs. Implemented by a single
/// [`LikelihoodEngine`] here, and by the parallel schemes in
/// `phylo-parallel`.
pub trait Evaluator {
    /// Log-likelihood with the virtual root on `root_edge`.
    fn log_likelihood(&mut self, tree: &Tree, root_edge: EdgeId) -> f64;
    /// Prepares derivative computation for `edge` (the
    /// `derivativeSum` precomputation).
    fn prepare_branch(&mut self, tree: &Tree, edge: EdgeId);
    /// First/second log-likelihood derivative at branch length `t` for
    /// the prepared edge (the `derivativeCore` kernel).
    fn branch_derivatives(&mut self, t: f64) -> (f64, f64);
    /// Replaces the Γ shape parameter.
    fn set_alpha(&mut self, alpha: f64);
    /// Replaces the GTR parameters.
    fn set_model(&mut self, params: GtrParams);
    /// Current Γ shape.
    fn alpha(&self) -> f64;
    /// Current GTR parameters.
    fn model(&self) -> GtrParams;
}

impl Evaluator for LikelihoodEngine {
    fn log_likelihood(&mut self, tree: &Tree, root_edge: EdgeId) -> f64 {
        LikelihoodEngine::log_likelihood(self, tree, root_edge)
    }
    fn prepare_branch(&mut self, tree: &Tree, edge: EdgeId) {
        LikelihoodEngine::prepare_branch(self, tree, edge)
    }
    fn branch_derivatives(&mut self, t: f64) -> (f64, f64) {
        LikelihoodEngine::branch_derivatives(self, t)
    }
    fn set_alpha(&mut self, alpha: f64) {
        LikelihoodEngine::set_alpha(self, alpha)
    }
    fn set_model(&mut self, params: GtrParams) {
        LikelihoodEngine::set_model(self, params)
    }
    fn alpha(&self) -> f64 {
        LikelihoodEngine::alpha(self)
    }
    fn model(&self) -> GtrParams {
        *LikelihoodEngine::model(self)
    }
}
