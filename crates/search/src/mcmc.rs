//! Bayesian MCMC sampling over trees — the PLF's other consumer.
//!
//! §I of the paper: probabilistic tree inference divides into Maximum
//! Likelihood *and Bayesian* methods (MrBayes, PhyloBayes), and both
//! spend their time in the same four kernels. This module provides a
//! Metropolis-Hastings sampler over topology and branch lengths so the
//! kernel stack is exercised by the second inference paradigm as well:
//! every proposal costs one `evaluate` plus the `newview`s its change
//! invalidates — the Bayesian workload profile.
//!
//! Model: uniform prior over topologies, i.i.d. Exponential(λ) prior
//! on branch lengths. Proposals: the standard branch-length multiplier
//! move (Hastings ratio = multiplier) and NNI topology moves
//! (symmetric).

use crate::Evaluator;
use phylo_tree::moves::{nni_swap, NniVariant};
use phylo_tree::tree::{BL_MAX, BL_MIN};
use phylo_tree::Tree;
use rand::Rng;
use std::collections::BTreeMap;

/// Sampler configuration.
#[derive(Clone, Copy, Debug)]
pub struct McmcConfig {
    /// Total iterations.
    pub iterations: usize,
    /// Iterations discarded before sampling statistics.
    pub burnin: usize,
    /// Record a sample every this many iterations.
    pub sample_every: usize,
    /// Probability of proposing a topology (NNI) move; otherwise a
    /// branch-length move.
    pub topology_move_prob: f64,
    /// Tuning constant of the branch multiplier proposal
    /// (`m = exp(λ_tune (u − ½))`).
    pub multiplier_tuning: f64,
    /// Rate of the Exponential branch-length prior.
    pub branch_prior_rate: f64,
}

impl Default for McmcConfig {
    fn default() -> Self {
        McmcConfig {
            iterations: 10_000,
            burnin: 2_000,
            sample_every: 10,
            topology_move_prob: 0.25,
            multiplier_tuning: 2.0 * std::f64::consts::LN_2,
            branch_prior_rate: 10.0,
        }
    }
}

/// One recorded posterior sample.
#[derive(Clone, Debug)]
pub struct McmcSample {
    /// Iteration index.
    pub iteration: usize,
    /// Log-likelihood of the sampled state.
    pub log_likelihood: f64,
    /// Log posterior (up to the constant topology prior).
    pub log_posterior: f64,
    /// Total tree length of the sampled state.
    pub tree_length: f64,
}

/// Chain outcome.
#[derive(Clone, Debug)]
pub struct McmcResult {
    /// Recorded samples, post-burn-in.
    pub samples: Vec<McmcSample>,
    /// Accepted / proposed branch-length moves.
    pub branch_moves: (usize, usize),
    /// Accepted / proposed topology moves.
    pub topology_moves: (usize, usize),
    /// Posterior frequency of every split seen after burn-in
    /// (keyed by the canonical name set, as in `Tree::splits`).
    pub split_frequencies: BTreeMap<Vec<String>, f64>,
    /// The final state of the chain.
    pub final_newick: String,
}

impl McmcResult {
    /// Posterior support of one split (0 when never sampled).
    pub fn split_support(&self, split: &[String]) -> f64 {
        self.split_frequencies.get(split).copied().unwrap_or(0.0)
    }
}

fn log_prior(tree: &Tree, rate: f64) -> f64 {
    // Σ ln(λ e^{-λ b}) over branches.
    let n = tree.num_edges() as f64;
    n * rate.ln() - rate * tree.total_length()
}

/// Runs one Metropolis-Hastings chain starting from `tree`.
pub fn run_mcmc<E: Evaluator + ?Sized, R: Rng>(
    evaluator: &mut E,
    tree: &mut Tree,
    config: McmcConfig,
    rng: &mut R,
) -> McmcResult {
    assert!(config.iterations > 0 && config.sample_every > 0);
    assert!((0.0..=1.0).contains(&config.topology_move_prob));
    assert!(config.branch_prior_rate > 0.0);

    let mut log_l = evaluator.log_likelihood(tree, 0);
    let mut log_post = log_l + log_prior(tree, config.branch_prior_rate);

    let mut samples = Vec::new();
    let mut branch_acc = (0usize, 0usize);
    let mut topo_acc = (0usize, 0usize);
    let mut split_counts: BTreeMap<Vec<String>, usize> = BTreeMap::new();
    let mut recorded = 0usize;

    let internal: Vec<usize> = tree.internal_edges().collect();

    for iter in 0..config.iterations {
        let do_topology = !internal.is_empty() && rng.random::<f64>() < config.topology_move_prob;
        if do_topology {
            topo_acc.1 += 1;
            // Symmetric NNI proposal.
            let e = internal[rng.random_range(0..internal.len())];
            let variant = if rng.random::<bool>() {
                NniVariant::First
            } else {
                NniVariant::Second
            };
            let Ok((x, y)) = phylo_tree::moves::nni(tree, e, variant) else {
                continue;
            };
            let new_l = evaluator.log_likelihood(tree, 0);
            let new_post = new_l + log_prior(tree, config.branch_prior_rate);
            if (new_post - log_post) >= rng.random::<f64>().ln() {
                log_l = new_l;
                log_post = new_post;
                topo_acc.0 += 1;
            } else {
                nni_swap(tree, e, x, y).expect("NNI swap-back");
            }
        } else {
            branch_acc.1 += 1;
            // Branch multiplier move.
            let edge = rng.random_range(0..tree.num_edges());
            let old = tree.length(edge);
            let m = (config.multiplier_tuning * (rng.random::<f64>() - 0.5)).exp();
            let proposed = (old * m).clamp(BL_MIN, BL_MAX);
            tree.set_length(edge, proposed).expect("clamped length");
            let new_l = evaluator.log_likelihood(tree, 0);
            let new_post = new_l + log_prior(tree, config.branch_prior_rate);
            // Hastings ratio of the multiplier move is m.
            if (new_post - log_post + m.ln()) >= rng.random::<f64>().ln() {
                log_l = new_l;
                log_post = new_post;
                branch_acc.0 += 1;
            } else {
                tree.set_length(edge, old).expect("restoring length");
            }
        }

        if iter >= config.burnin && iter % config.sample_every == 0 {
            samples.push(McmcSample {
                iteration: iter,
                log_likelihood: log_l,
                log_posterior: log_post,
                tree_length: tree.total_length(),
            });
            for split in tree.splits() {
                *split_counts.entry(split).or_insert(0) += 1;
            }
            recorded += 1;
        }
    }

    let split_frequencies = split_counts
        .into_iter()
        .map(|(k, v)| (k, v as f64 / recorded.max(1) as f64))
        .collect();

    McmcResult {
        samples,
        branch_moves: branch_acc,
        topology_moves: topo_acc,
        split_frequencies,
        final_newick: phylo_tree::newick::to_newick(tree),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_bio::CompressedAlignment;
    use phylo_models::{DiscreteGamma, Gtr, GtrParams};
    use phylo_tree::build::{default_names, random_tree};
    use plf_core::{EngineConfig, LikelihoodEngine};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn dataset(seed: u64, taxa: usize, sites: usize) -> (Tree, CompressedAlignment) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let names = default_names(taxa);
        let tree = random_tree(&names, 0.12, &mut rng).unwrap();
        let g = Gtr::new(GtrParams::jc69());
        let gamma = DiscreteGamma::new(5.0);
        let aln = phylo_seqgen::simulate_alignment(&tree, g.eigen(), &gamma, sites, &mut rng);
        (tree, CompressedAlignment::from_alignment(&aln))
    }

    #[test]
    fn chain_moves_and_mixes() {
        let (true_tree, ca) = dataset(808, 6, 2000);
        let names = true_tree.tip_names().to_vec();
        let mut tree = random_tree(&names, 0.1, &mut SmallRng::seed_from_u64(3)).unwrap();
        let mut engine = LikelihoodEngine::new(&tree, &ca, EngineConfig::default());
        let start_ll = phylo_search_ll(&mut engine, &tree);
        let mut rng = SmallRng::seed_from_u64(99);
        let r = run_mcmc(
            &mut engine,
            &mut tree,
            McmcConfig {
                iterations: 4000,
                burnin: 1000,
                sample_every: 5,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(!r.samples.is_empty());
        // Both move types were proposed; some of each accepted.
        assert!(r.branch_moves.1 > 0 && r.topology_moves.1 > 0);
        assert!(r.branch_moves.0 > 0, "no branch moves accepted");
        // Acceptance rates are genuine probabilities.
        let br = r.branch_moves.0 as f64 / r.branch_moves.1 as f64;
        assert!((0.01..0.99).contains(&br), "branch acceptance {br}");
        // The chain climbed far above the random start.
        let mean_ll: f64 =
            r.samples.iter().map(|s| s.log_likelihood).sum::<f64>() / r.samples.len() as f64;
        assert!(
            mean_ll > start_ll + 10.0,
            "mean {mean_ll} vs start {start_ll}"
        );
    }

    fn phylo_search_ll(e: &mut LikelihoodEngine, t: &Tree) -> f64 {
        crate::Evaluator::log_likelihood(e, t, 0)
    }

    #[test]
    fn posterior_concentrates_on_true_splits() {
        // Seed 934 draws a true tree whose shortest branch is ~0.06,
        // so every split is resolvable; 6000 sites and a
        // 10k-iteration chain then put all supports well above the
        // 0.8 threshold. (The original seed's tree had a near-zero
        // internal branch, leaving the posterior genuinely diffuse —
        // the test only passed by luck of the sampling stream.)
        let (true_tree, ca) = dataset(934, 6, 6000);
        let names = true_tree.tip_names().to_vec();
        let mut tree = random_tree(&names, 0.1, &mut SmallRng::seed_from_u64(4)).unwrap();
        let mut engine = LikelihoodEngine::new(&tree, &ca, EngineConfig::default());
        let mut rng = SmallRng::seed_from_u64(5);
        let r = run_mcmc(
            &mut engine,
            &mut tree,
            McmcConfig {
                iterations: 10_000,
                burnin: 3_000,
                sample_every: 5,
                ..Default::default()
            },
            &mut rng,
        );
        // Every true split has strong posterior support on clean data.
        for split in true_tree.splits() {
            let support = r.split_support(&split);
            assert!(
                support > 0.8,
                "split {split:?} support {support} (frequencies: {:?})",
                r.split_frequencies
            );
        }
    }

    #[test]
    fn samples_respect_burnin_and_thinning() {
        let (_, ca) = dataset(111, 5, 300);
        let names = default_names(5);
        let mut tree = random_tree(&names, 0.1, &mut SmallRng::seed_from_u64(8)).unwrap();
        let mut engine = LikelihoodEngine::new(&tree, &ca, EngineConfig::default());
        let mut rng = SmallRng::seed_from_u64(10);
        let cfg = McmcConfig {
            iterations: 1000,
            burnin: 500,
            sample_every: 50,
            ..Default::default()
        };
        let r = run_mcmc(&mut engine, &mut tree, cfg, &mut rng);
        assert!(r.samples.iter().all(|s| s.iteration >= cfg.burnin));
        for w in r.samples.windows(2) {
            assert_eq!(w[1].iteration - w[0].iteration, cfg.sample_every);
        }
        let parsed = phylo_tree::newick::parse(&r.final_newick).unwrap();
        parsed.validate().unwrap();
    }

    #[test]
    fn branch_prior_pulls_lengths_down_without_data() {
        // All-gap data carries no signal: the posterior equals the
        // prior, so sampled tree lengths must match the Exponential
        // prior mean (n_edges / rate).
        let names = default_names(4);
        let mut tree = random_tree(&names, 0.5, &mut SmallRng::seed_from_u64(2)).unwrap();
        let rows = vec![vec![phylo_bio::DnaCode::from_char('N').unwrap(); 4]; 4];
        let ca = CompressedAlignment::from_parts(names.clone(), rows, vec![1; 4]).unwrap();
        let mut engine = LikelihoodEngine::new(&tree, &ca, EngineConfig::default());
        let mut rng = SmallRng::seed_from_u64(3);
        let cfg = McmcConfig {
            iterations: 20_000,
            burnin: 5_000,
            sample_every: 10,
            topology_move_prob: 0.0,
            branch_prior_rate: 10.0,
            ..Default::default()
        };
        let r = run_mcmc(&mut engine, &mut tree, cfg, &mut rng);
        let mean_len: f64 =
            r.samples.iter().map(|s| s.tree_length).sum::<f64>() / r.samples.len() as f64;
        let expect = tree.num_edges() as f64 / cfg.branch_prior_rate;
        assert!(
            (mean_len - expect).abs() < 0.35 * expect,
            "sampled mean length {mean_len}, prior mean {expect}"
        );
    }
}
