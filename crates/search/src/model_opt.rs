//! Model-parameter optimization (Γ shape α and GTR exchangeabilities).
//!
//! RAxML optimizes the continuous model parameters one dimension at a
//! time with Brent's method, re-evaluating the tree likelihood at each
//! trial point. The GT rate stays fixed at 1 (only relative
//! exchangeabilities are identifiable); base frequencies are empirical.

use crate::Evaluator;
use phylo_models::math::brent::minimize;
use phylo_models::DiscreteGamma;
use phylo_tree::Tree;

/// Bounds for a single exchangeability rate during optimization.
pub const RATE_MIN: f64 = 1e-3;
/// Upper bound for a single exchangeability rate.
pub const RATE_MAX: f64 = 100.0;

/// Result of a model-optimization sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelOptResult {
    /// Log-likelihood after the sweep.
    pub log_likelihood: f64,
    /// Optimized Γ shape.
    pub alpha: f64,
}

/// Optimizes α by Brent search on `log α` (the likelihood surface in α
/// spans orders of magnitude, so the log parameterization brackets
/// robustly).
pub fn optimize_alpha<E: Evaluator + ?Sized>(evaluator: &mut E, tree: &Tree, tol: f64) -> f64 {
    let (lo, hi) = (DiscreteGamma::MIN_ALPHA.ln(), DiscreteGamma::MAX_ALPHA.ln());
    let r = minimize(
        |la| {
            evaluator.set_alpha(la.exp());
            -evaluator.log_likelihood(tree, 0)
        },
        lo,
        hi,
        tol,
        64,
    );
    let alpha = r.xmin.exp();
    evaluator.set_alpha(alpha);
    alpha
}

/// Optimizes the five free GTR exchangeabilities (GT ≡ 1), one Brent
/// pass each, in log space.
pub fn optimize_rates<E: Evaluator + ?Sized>(evaluator: &mut E, tree: &Tree, tol: f64) {
    for idx in 0..5 {
        let mut params = evaluator.model();
        let r = minimize(
            |lr| {
                params.rates[idx] = lr.exp();
                evaluator.set_model(params);
                -evaluator.log_likelihood(tree, 0)
            },
            RATE_MIN.ln(),
            RATE_MAX.ln(),
            tol,
            48,
        );
        params.rates[idx] = r.xmin.exp();
        evaluator.set_model(params);
    }
}

/// One full model sweep: α, then the exchangeabilities.
pub fn optimize_model<E: Evaluator + ?Sized>(
    evaluator: &mut E,
    tree: &Tree,
    tol: f64,
) -> ModelOptResult {
    let _span = plf_core::span::enter("model_opt");
    plf_core::metrics::counter("model.opt.sweeps").inc();
    let alpha = optimize_alpha(evaluator, tree, tol);
    optimize_rates(evaluator, tree, tol);
    ModelOptResult {
        log_likelihood: evaluator.log_likelihood(tree, 0),
        alpha,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_bio::CompressedAlignment;
    use phylo_models::{Gtr, GtrParams};
    use phylo_tree::build::{default_names, random_tree};
    use plf_core::{EngineConfig, LikelihoodEngine};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn simulated(alpha: f64, seed: u64, sites: usize) -> (phylo_tree::Tree, CompressedAlignment) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let names = default_names(8);
        let tree = random_tree(&names, 0.2, &mut rng).unwrap();
        let g = Gtr::new(GtrParams::jc69());
        let gamma = DiscreteGamma::new(alpha);
        let aln = phylo_seqgen::simulate_alignment(&tree, g.eigen(), &gamma, sites, &mut rng);
        (tree, CompressedAlignment::from_alignment(&aln))
    }

    #[test]
    fn alpha_optimization_improves_likelihood() {
        let (tree, ca) = simulated(0.3, 17, 3000);
        let mut engine = LikelihoodEngine::new(
            &tree,
            &ca,
            EngineConfig {
                alpha: 5.0, // start far from truth
                ..Default::default()
            },
        );
        let before = engine.log_likelihood(&tree, 0);
        let alpha = optimize_alpha(&mut engine, &tree, 1e-4);
        let after = engine.log_likelihood(&tree, 0);
        assert!(after >= before, "{after} < {before}");
        // Recovered alpha should be in the low-heterogeneity regime.
        assert!(alpha < 1.5, "alpha = {alpha}");
    }

    #[test]
    fn rate_optimization_does_not_degrade() {
        let (tree, ca) = simulated(1.0, 23, 2000);
        let mut engine = LikelihoodEngine::new(&tree, &ca, EngineConfig::default());
        let before = engine.log_likelihood(&tree, 0);
        optimize_rates(&mut engine, &tree, 1e-3);
        let after = engine.log_likelihood(&tree, 0);
        assert!(after >= before - 1e-6, "{after} < {before}");
    }

    #[test]
    fn full_model_sweep_runs() {
        let (tree, ca) = simulated(0.7, 31, 1000);
        let mut engine = LikelihoodEngine::new(&tree, &ca, EngineConfig::default());
        let before = engine.log_likelihood(&tree, 0);
        let r = optimize_model(&mut engine, &tree, 1e-3);
        assert!(r.log_likelihood >= before - 1e-6);
        assert!(r.alpha >= DiscreteGamma::MIN_ALPHA && r.alpha <= DiscreteGamma::MAX_ALPHA);
    }
}
