//! Partitioned (multi-gene) alignments with per-partition models.
//!
//! §V-A of the paper: "multiple data partitions are supported" but
//! "for a large number of partitions, performance will degrade due to
//! decreasing parallel block size". This module supplies the
//! functional side of that feature: an evaluator over a partitioned
//! alignment where every partition carries its own GTR parameters and
//! Γ shape, while branch lengths are shared across partitions (the
//! standard linked-branch-length model RAxML uses by default). The
//! load-balancing side lives in `phylo-parallel::balance`.

use crate::Evaluator;
use phylo_bio::CompressedAlignment;
use phylo_models::GtrParams;
use phylo_tree::{EdgeId, Tree};
use plf_core::{EngineConfig, LikelihoodEngine};

/// A contiguous pattern range forming one partition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionDef {
    /// Display name (gene name).
    pub name: String,
    /// Pattern range `[start, end)` within the alignment.
    pub range: std::ops::Range<usize>,
}

/// An evaluator over a partitioned alignment: one engine per
/// partition, independent substitution models, shared topology and
/// branch lengths.
pub struct PartitionedEngine {
    names: Vec<String>,
    engines: Vec<LikelihoodEngine>,
}

impl PartitionedEngine {
    /// Builds one engine per partition. Ranges must be non-empty,
    /// sorted, non-overlapping, and cover the whole alignment.
    pub fn new(
        tree: &Tree,
        aln: &CompressedAlignment,
        config: EngineConfig,
        partitions: &[PartitionDef],
    ) -> Self {
        assert!(!partitions.is_empty(), "need at least one partition");
        let mut expected = 0usize;
        for p in partitions {
            assert_eq!(
                p.range.start, expected,
                "partition {:?} does not start where the previous ended",
                p.name
            );
            assert!(p.range.end > p.range.start, "empty partition {:?}", p.name);
            expected = p.range.end;
        }
        assert_eq!(
            expected,
            aln.num_patterns(),
            "partitions must cover the whole alignment"
        );
        PartitionedEngine {
            names: partitions.iter().map(|p| p.name.clone()).collect(),
            engines: partitions
                .iter()
                .map(|p| LikelihoodEngine::with_range(tree, aln, config, p.range.clone()))
                .collect(),
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.engines.len()
    }

    /// Partition names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Per-partition engine access (model inspection, stats).
    pub fn partition(&self, i: usize) -> &LikelihoodEngine {
        &self.engines[i]
    }

    /// Sets one partition's Γ shape.
    pub fn set_partition_alpha(&mut self, i: usize, alpha: f64) {
        self.engines[i].set_alpha(alpha);
    }

    /// Sets one partition's GTR parameters.
    pub fn set_partition_model(&mut self, i: usize, params: GtrParams) {
        self.engines[i].set_model(params);
    }

    /// Log-likelihood of a single partition at `root_edge`.
    pub fn partition_log_likelihood(&mut self, i: usize, tree: &Tree, root_edge: EdgeId) -> f64 {
        self.engines[i].log_likelihood(tree, root_edge)
    }

    /// Optimizes each partition's α independently by Brent search (the
    /// per-partition model optimization step of a partitioned
    /// analysis). Returns the per-partition α values.
    pub fn optimize_partition_alphas(&mut self, tree: &Tree, tol: f64) -> Vec<f64> {
        use phylo_models::math::brent::minimize;
        use phylo_models::DiscreteGamma;
        let mut out = Vec::with_capacity(self.engines.len());
        for engine in self.engines.iter_mut() {
            let r = minimize(
                |la| {
                    engine.set_alpha(la.exp());
                    -engine.log_likelihood(tree, 0)
                },
                DiscreteGamma::MIN_ALPHA.ln(),
                DiscreteGamma::MAX_ALPHA.ln(),
                tol,
                64,
            );
            let alpha = r.xmin.exp();
            engine.set_alpha(alpha);
            out.push(alpha);
        }
        out
    }
}

impl Evaluator for PartitionedEngine {
    fn log_likelihood(&mut self, tree: &Tree, root_edge: EdgeId) -> f64 {
        self.engines
            .iter_mut()
            .map(|e| e.log_likelihood(tree, root_edge))
            .sum()
    }

    fn prepare_branch(&mut self, tree: &Tree, edge: EdgeId) {
        for e in self.engines.iter_mut() {
            e.prepare_branch(tree, edge);
        }
    }

    fn branch_derivatives(&mut self, t: f64) -> (f64, f64) {
        let mut d1 = 0.0;
        let mut d2 = 0.0;
        for e in self.engines.iter_mut() {
            let (a, b) = e.branch_derivatives(t);
            d1 += a;
            d2 += b;
        }
        (d1, d2)
    }

    fn set_alpha(&mut self, alpha: f64) {
        for e in self.engines.iter_mut() {
            e.set_alpha(alpha);
        }
    }

    fn set_model(&mut self, params: GtrParams) {
        for e in self.engines.iter_mut() {
            e.set_model(params);
        }
    }

    fn alpha(&self) -> f64 {
        self.engines[0].alpha()
    }

    fn model(&self) -> GtrParams {
        *self.engines[0].model()
    }
}

/// Splits an alignment into `k` equal partitions (test/bench helper).
pub fn equal_partitions(aln: &CompressedAlignment, k: usize) -> Vec<PartitionDef> {
    let n = aln.num_patterns();
    assert!(k >= 1 && k <= n);
    (0..k)
        .map(|i| PartitionDef {
            name: format!("part{i}"),
            range: (i * n / k)..((i + 1) * n / k),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch_opt::smooth_branches;
    use phylo_models::{DiscreteGamma, Gtr};
    use phylo_tree::build::{default_names, random_tree};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn dataset(seed: u64, sites: usize) -> (Tree, CompressedAlignment) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let names = default_names(8);
        let tree = random_tree(&names, 0.15, &mut rng).unwrap();
        let g = Gtr::new(GtrParams::jc69());
        let gamma = DiscreteGamma::new(1.0);
        let aln = phylo_seqgen::simulate_compressed(&tree, g.eigen(), &gamma, sites, &mut rng);
        (tree, aln)
    }

    #[test]
    fn partitioned_sum_equals_monolithic_when_models_match() {
        let (tree, aln) = dataset(50, 600);
        let cfg = EngineConfig::default();
        let mut single = LikelihoodEngine::new(&tree, &aln, cfg);
        let mut parts = PartitionedEngine::new(&tree, &aln, cfg, &equal_partitions(&aln, 3));
        for e in [0usize, 4, 9] {
            let a = single.log_likelihood(&tree, e);
            let b = parts.log_likelihood(&tree, e);
            assert!((a - b).abs() < 1e-9, "edge {e}: {a} vs {b}");
        }
        // Derivatives too.
        crate::Evaluator::prepare_branch(&mut single, &tree, 2);
        parts.prepare_branch(&tree, 2);
        let (a1, a2) = crate::Evaluator::branch_derivatives(&mut single, tree.length(2));
        let (b1, b2) = parts.branch_derivatives(tree.length(2));
        assert!((a1 - b1).abs() < 1e-8 && (a2 - b2).abs() < 1e-8);
    }

    #[test]
    fn per_partition_models_improve_on_heterogeneous_data() {
        // Two genes with very different rate heterogeneity: a linked
        // single-alpha model must score below per-partition alphas.
        let mut rng = SmallRng::seed_from_u64(60);
        let names = default_names(8);
        let tree = random_tree(&names, 0.2, &mut rng).unwrap();
        let g = Gtr::new(GtrParams::jc69());
        let a1 = phylo_seqgen::simulate_compressed(
            &tree,
            g.eigen(),
            &DiscreteGamma::new(0.1),
            1500,
            &mut rng,
        );
        let a2 = phylo_seqgen::simulate_compressed(
            &tree,
            g.eigen(),
            &DiscreteGamma::new(30.0),
            1500,
            &mut rng,
        );
        // Concatenate.
        let names_s: Vec<String> = a1.names().to_vec();
        let rows: Vec<Vec<phylo_bio::DnaCode>> = (0..a1.num_taxa())
            .map(|t| {
                let mut r = a1.row(t).to_vec();
                r.extend_from_slice(a2.row(t));
                r
            })
            .collect();
        let weights = vec![1u32; 3000];
        let concat = CompressedAlignment::from_parts(names_s, rows, weights).unwrap();

        let cfg = EngineConfig::default();
        let defs = vec![
            PartitionDef {
                name: "slow-gene".into(),
                range: 0..1500,
            },
            PartitionDef {
                name: "fast-gene".into(),
                range: 1500..3000,
            },
        ];
        let mut tree_l = tree.clone();
        let mut linked = LikelihoodEngine::new(&tree_l, &concat, cfg);
        smooth_branches(&mut linked, &mut tree_l, 1e-3, 6);
        let alpha_linked = crate::model_opt::optimize_alpha(&mut linked, &tree_l, 1e-4);
        let ll_linked = linked.log_likelihood(&tree_l, 0);

        let mut parts = PartitionedEngine::new(&tree_l, &concat, cfg, &defs);
        let alphas = parts.optimize_partition_alphas(&tree_l, 1e-4);
        let ll_parts = Evaluator::log_likelihood(&mut parts, &tree_l, 0);

        assert!(
            ll_parts > ll_linked + 2.0,
            "per-partition {ll_parts} vs linked {ll_linked}"
        );
        assert!(
            alphas[0] < alpha_linked && alphas[1] > alpha_linked,
            "alphas {alphas:?} should straddle linked {alpha_linked}"
        );
    }

    #[test]
    fn search_runs_under_partitioned_evaluator() {
        let (true_tree, aln) = dataset(70, 1000);
        let names = true_tree.tip_names().to_vec();
        let mut tree = random_tree(&names, 0.1, &mut SmallRng::seed_from_u64(3)).unwrap();
        let mut parts = PartitionedEngine::new(
            &tree,
            &aln,
            EngineConfig::default(),
            &equal_partitions(&aln, 4),
        );
        let search = crate::MlSearch::new(crate::SearchConfig {
            max_rounds: 3,
            optimize_model: false,
            ..Default::default()
        });
        let r = search.run(&mut parts, &mut tree);
        assert!(r.log_likelihood.is_finite());
        assert!(tree.rf_distance(&true_tree) <= 2);
    }

    #[test]
    fn invalid_partitions_rejected() {
        let (tree, aln) = dataset(80, 100);
        let cfg = EngineConfig::default();
        let bad = vec![PartitionDef {
            name: "p".into(),
            range: 0..50,
        }];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            PartitionedEngine::new(&tree, &aln, cfg, &bad)
        }));
        assert!(r.is_err(), "gap at the end must be rejected");

        let overlapping = vec![
            PartitionDef {
                name: "a".into(),
                range: 0..60,
            },
            PartitionDef {
                name: "b".into(),
                range: 50..100,
            },
        ];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            PartitionedEngine::new(&tree, &aln, cfg, &overlapping)
        }));
        assert!(r.is_err());
    }
}
