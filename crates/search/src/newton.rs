//! Newton-Raphson optimization of a single branch length.
//!
//! This is the consumer of the paper's `derivativeSum` /
//! `derivativeCore` kernels: `derivativeSum` runs once per branch
//! (the site table is invariant in the branch length), then each
//! Newton iteration costs one `derivativeCore` call (§IV).

use crate::Evaluator;
use phylo_tree::tree::{BL_MAX, BL_MIN};
use phylo_tree::{EdgeId, Tree};

/// Outcome of one branch optimization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NewtonResult {
    /// The optimized branch length (already written into the tree).
    pub length: f64,
    /// Newton iterations performed.
    pub iterations: usize,
    /// Whether |dL/dt| fell under the tolerance.
    pub converged: bool,
}

/// Maximum Newton iterations per branch (RAxML uses 30).
pub const MAX_ITER: usize = 30;

/// Convergence tolerance on the branch-length step.
pub const TOL: f64 = 1e-9;

/// Optimizes the length of `edge` in place by safeguarded
/// Newton-Raphson on `d logL / dt`, exactly the RAxML `makenewz`
/// scheme: a Newton step when the second derivative is negative
/// (concave), otherwise a slope-following fallback step; all iterates
/// clamped to `[BL_MIN, BL_MAX]`.
pub fn optimize_branch<E: Evaluator + ?Sized>(
    evaluator: &mut E,
    tree: &mut Tree,
    edge: EdgeId,
) -> NewtonResult {
    let _span = plf_core::span::enter("branch_opt");
    evaluator.prepare_branch(tree, edge);
    let mut t = tree.length(edge);
    let mut converged = false;
    let mut iterations = 0;

    for _ in 0..MAX_ITER {
        iterations += 1;
        let _iter_span = plf_core::span::enter("newton_iter");
        let (d1, d2) = evaluator.branch_derivatives(t);
        if !d1.is_finite() || !d2.is_finite() {
            break;
        }
        if d1.abs() < TOL {
            converged = true;
            break;
        }
        // At a boundary with the gradient pointing outward, the
        // constrained optimum is the boundary itself.
        if (t <= BL_MIN && d1 < 0.0) || (t >= BL_MAX && d1 > 0.0) {
            converged = true;
            break;
        }
        let mut next = if d2 < 0.0 {
            // Proper Newton step toward the stationary point.
            t - d1 / d2
        } else if d1 < 0.0 {
            // Convex region, likelihood decreasing: halve the branch
            // (RAxML's fallback).
            t * 0.5
        } else {
            // Convex region, likelihood increasing: double it.
            t * 2.0
        };
        if !(BL_MIN..=BL_MAX).contains(&next) {
            next = next.clamp(BL_MIN, BL_MAX);
        }
        if (next - t).abs() < TOL {
            t = next;
            converged = true;
            break;
        }
        t = next;
    }

    newton_iterations_counter().add(iterations as u64);
    tree.set_length(edge, t).expect("clamped length is valid");
    NewtonResult {
        length: tree.length(edge),
        iterations,
        converged,
    }
}

/// Cached handle for the `newton.iterations` counter — `optimize_branch`
/// runs once per edge per smoothing pass, so skip the registry lookup.
fn newton_iterations_counter() -> &'static plf_core::metrics::Counter {
    static C: std::sync::OnceLock<plf_core::metrics::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| plf_core::metrics::counter("newton.iterations"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_bio::{Alignment, CompressedAlignment, Sequence};
    use phylo_models::DiscreteGamma;
    use phylo_tree::build::{default_names, random_tree};
    use phylo_tree::newick;
    use plf_core::{EngineConfig, LikelihoodEngine};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup() -> (phylo_tree::Tree, CompressedAlignment) {
        let mut rng = SmallRng::seed_from_u64(99);
        let names = default_names(8);
        let true_tree = random_tree(&names, 0.15, &mut rng).unwrap();
        let g = phylo_models::Gtr::new(phylo_models::GtrParams::jc69());
        let gamma = DiscreteGamma::new(1.0);
        let aln = phylo_seqgen::simulate_alignment(&true_tree, g.eigen(), &gamma, 1500, &mut rng);
        let ca = CompressedAlignment::from_alignment(&aln);
        (true_tree, ca)
    }

    #[test]
    fn optimizing_improves_loglikelihood() {
        let (mut tree, aln) = setup();
        let mut engine = LikelihoodEngine::new(&tree, &aln, EngineConfig::default());
        for edge in 0..tree.num_edges() {
            let before = engine.log_likelihood(&tree, edge);
            // Perturb, then re-optimize.
            tree.set_length(edge, 1.5).unwrap();
            let r = optimize_branch(&mut engine, &mut tree, edge);
            let after = engine.log_likelihood(&tree, edge);
            assert!(
                after >= before - 1e-6,
                "edge {edge}: {after} < {before} (result {r:?})"
            );
        }
    }

    #[test]
    fn derivative_vanishes_at_optimum() {
        let (mut tree, aln) = setup();
        let mut engine = LikelihoodEngine::new(&tree, &aln, EngineConfig::default());
        let edge = 3;
        let r = optimize_branch(&mut engine, &mut tree, edge);
        assert!(r.converged, "{r:?}");
        engine.prepare_branch(&tree, edge);
        let (d1, d2) = engine.branch_derivatives(r.length);
        // Interior optimum: zero slope, negative curvature.
        if r.length > BL_MIN * 2.0 && r.length < BL_MAX / 2.0 {
            assert!(d1.abs() < 1e-4, "d1 = {d1}");
            assert!(d2 < 0.0, "d2 = {d2}");
        }
    }

    #[test]
    fn recovers_known_branch_length_roughly() {
        // Simulate on a fixed 4-taxon tree with a distinctive inner
        // branch, then re-optimize that branch from a wrong start.
        let true_tree = newick::parse("((a:0.1,b:0.1):0.4,c:0.1,d:0.1);").unwrap();
        let g = phylo_models::Gtr::new(phylo_models::GtrParams::jc69());
        let gamma = DiscreteGamma::new(10.0);
        let mut rng = SmallRng::seed_from_u64(5);
        let aln = phylo_seqgen::simulate_alignment(&true_tree, g.eigen(), &gamma, 60_000, &mut rng);
        let ca = CompressedAlignment::from_alignment(&aln);
        let mut tree = true_tree.clone();
        let inner = tree.internal_edges().next().unwrap();
        tree.set_length(inner, 0.05).unwrap();
        let mut engine = LikelihoodEngine::new(&tree, &ca, EngineConfig::default());
        engine.set_alpha(10.0);
        let r = optimize_branch(&mut engine, &mut tree, inner);
        assert!(
            (r.length - 0.4).abs() < 0.05,
            "recovered {} expected ~0.4",
            r.length
        );
    }

    #[test]
    fn zero_information_branch_hits_minimum() {
        // Identical sequences: the ML branch length is 0 (clamped to
        // BL_MIN).
        let tree = newick::parse("(a:0.2,b:0.2,c:0.2);").unwrap();
        let a = Alignment::new(vec![
            Sequence::from_str_named("a", "ACGTACGTAC").unwrap(),
            Sequence::from_str_named("b", "ACGTACGTAC").unwrap(),
            Sequence::from_str_named("c", "ACGTACGTAC").unwrap(),
        ])
        .unwrap();
        let ca = CompressedAlignment::from_alignment(&a);
        let mut tree = tree;
        let mut engine = LikelihoodEngine::new(&tree, &ca, EngineConfig::default());
        let r = optimize_branch(&mut engine, &mut tree, 0);
        assert!(r.length <= BL_MIN * 10.0, "length {}", r.length);
    }
}
