#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index loops mirror the paper's kernel notation; reference constants keep full printed precision
//! Sequence simulation under GTR+Γ — the INDELible substitute.
//!
//! The paper generates its 8 test alignments (10K–4,000K sites, 15
//! taxa) with INDELible V1.03. This crate reimplements the part of
//! INDELible the experiments need: evolving DNA down a fixed tree under
//! GTR with Γ-distributed per-site rates (no indels — the paper's
//! datasets are fixed-width alignments).
//!
//! The generative process per site: draw a rate category uniformly
//! (the discrete-Γ categories are equiprobable), draw the state at an
//! arbitrary root node from the stationary distribution π, then walk
//! the tree, sampling each child state from the transition distribution
//! `P(t·r)` of its branch.
#![deny(unsafe_op_in_unsafe_fn)]

use phylo_bio::{Alignment, CompressedAlignment, DnaCode, Sequence};
use phylo_models::{DiscreteGamma, Eigensystem, NUM_RATES, NUM_STATES};
use phylo_tree::{NodeId, Tree};
use rand::Rng;

/// Cumulative transition rows for one edge: `cum[k][a]` is the CDF over
/// child states given parent state `a` at rate category `k`.
struct EdgeSampler {
    cum: [[[f64; NUM_STATES]; NUM_STATES]; NUM_RATES],
}

impl EdgeSampler {
    fn new(eigen: &Eigensystem, rates: &[f64; NUM_RATES], t: f64) -> Self {
        let mut cum = [[[0.0; NUM_STATES]; NUM_STATES]; NUM_RATES];
        for (k, &r) in rates.iter().enumerate() {
            let p = eigen.prob_matrix(t, r);
            for a in 0..NUM_STATES {
                let mut acc = 0.0;
                for b in 0..NUM_STATES {
                    acc += p[a][b];
                    cum[k][a][b] = acc;
                }
                // Guard the final entry against rounding (P rows sum to
                // 1 − ε): sampling must never fall off the end.
                cum[k][a][NUM_STATES - 1] = f64::INFINITY;
            }
        }
        EdgeSampler { cum }
    }

    #[inline]
    fn sample<R: Rng>(&self, k: usize, a: usize, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        let row = &self.cum[k][a];
        let mut b = 0;
        while row[b] < u {
            b += 1;
        }
        b
    }
}

/// Simulates `num_sites` DNA characters for every taxon of `tree`.
///
/// Returns per-taxon state rows indexed by tip id. This is the raw
/// sampler; see [`simulate_alignment`] / [`simulate_compressed`] for
/// the packaged forms.
pub fn simulate_states<R: Rng>(
    tree: &Tree,
    eigen: &Eigensystem,
    gamma: &DiscreteGamma,
    num_sites: usize,
    rng: &mut R,
) -> Vec<Vec<u8>> {
    assert!(num_sites > 0, "cannot simulate an empty alignment");
    let rates = gamma.rates();
    let pi = eigen.freqs();
    let pi_cum = {
        let mut c = [0.0; NUM_STATES];
        let mut acc = 0.0;
        for (i, slot) in c.iter_mut().enumerate() {
            acc += pi[i];
            *slot = acc;
        }
        c[NUM_STATES - 1] = f64::INFINITY;
        c
    };

    // Directed edges away from the root node, in parent-before-child
    // order, with per-edge samplers.
    let root: NodeId = tree.num_taxa();
    let mut order: Vec<(NodeId, NodeId, EdgeSampler)> = Vec::with_capacity(tree.num_edges());
    let mut seen = vec![false; tree.num_nodes()];
    seen[root] = true;
    let mut stack = vec![root];
    while let Some(u) = stack.pop() {
        for (e, v) in tree.neighbors(u) {
            if !seen[v] {
                seen[v] = true;
                order.push((u, v, EdgeSampler::new(eigen, rates, tree.length(e))));
                stack.push(v);
            }
        }
    }

    let mut rows = vec![vec![0u8; num_sites]; tree.num_taxa()];
    let mut states = vec![0usize; tree.num_nodes()];
    for site in 0..num_sites {
        let k = rng.random_range(0..NUM_RATES);
        let u: f64 = rng.random();
        let mut s = 0;
        while pi_cum[s] < u {
            s += 1;
        }
        states[root] = s;
        for (parent, child, sampler) in &order {
            states[*child] = sampler.sample(k, states[*parent], rng);
        }
        for tip in 0..tree.num_taxa() {
            rows[tip][site] = states[tip] as u8;
        }
    }
    rows
}

/// Simulates a full [`Alignment`] (taxon names from the tree).
pub fn simulate_alignment<R: Rng>(
    tree: &Tree,
    eigen: &Eigensystem,
    gamma: &DiscreteGamma,
    num_sites: usize,
    rng: &mut R,
) -> Alignment {
    let rows = simulate_states(tree, eigen, gamma, num_sites, rng);
    let sequences = rows
        .into_iter()
        .enumerate()
        .map(|(tip, states)| {
            let codes: Vec<DnaCode> = states
                .into_iter()
                .map(|s| DnaCode::from_state(s as usize))
                .collect();
            Sequence::new(tree.tip_name(tip), codes)
        })
        .collect();
    Alignment::new(sequences).expect("simulated alignment is rectangular")
}

/// Simulates directly into pattern form *without* the column-hashing
/// compression pass — every site becomes a weight-1 pattern. This is
/// what the multi-million-site benchmark datasets use: with 15 taxa and
/// long simulated alignments, virtually every column is unique anyway,
/// so compression would only add an O(n·m) hashing pass.
pub fn simulate_compressed<R: Rng>(
    tree: &Tree,
    eigen: &Eigensystem,
    gamma: &DiscreteGamma,
    num_sites: usize,
    rng: &mut R,
) -> CompressedAlignment {
    let rows = simulate_states(tree, eigen, gamma, num_sites, rng);
    let names: Vec<String> = (0..tree.num_taxa())
        .map(|t| tree.tip_name(t).to_string())
        .collect();
    let code_rows: Vec<Vec<DnaCode>> = rows
        .into_iter()
        .map(|r| {
            r.into_iter()
                .map(|s| DnaCode::from_state(s as usize))
                .collect()
        })
        .collect();
    CompressedAlignment::from_parts(names, code_rows, vec![1; num_sites])
        .expect("simulated patterns are rectangular")
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_models::{Gtr, GtrParams};
    use phylo_tree::build::{default_names, random_tree};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn model() -> Gtr {
        Gtr::new(GtrParams {
            rates: [1.4, 3.1, 0.6, 1.0, 3.9, 1.0],
            freqs: [0.35, 0.15, 0.2, 0.3],
        })
    }

    #[test]
    fn dimensions_and_determinism() {
        let mut rng = SmallRng::seed_from_u64(42);
        let tree = random_tree(&default_names(8), 0.1, &mut rng).unwrap();
        let g = model();
        let gamma = DiscreteGamma::new(0.8);
        let a1 = simulate_alignment(
            &tree,
            g.eigen(),
            &gamma,
            500,
            &mut SmallRng::seed_from_u64(1),
        );
        let a2 = simulate_alignment(
            &tree,
            g.eigen(),
            &gamma,
            500,
            &mut SmallRng::seed_from_u64(1),
        );
        assert_eq!(a1, a2, "same seed, same alignment");
        assert_eq!(a1.num_taxa(), 8);
        assert_eq!(a1.num_sites(), 500);
        let a3 = simulate_alignment(
            &tree,
            g.eigen(),
            &gamma,
            500,
            &mut SmallRng::seed_from_u64(2),
        );
        assert_ne!(a1, a3, "different seed, different alignment");
    }

    #[test]
    fn stationary_frequencies_recovered_on_star() {
        // Long branches from a 3-taxon star: each tip is an independent
        // draw from pi.
        let tree = phylo_tree::Tree::triplet(["a", "b", "c"], [50.0, 50.0, 50.0]).unwrap();
        let g = model();
        let gamma = DiscreteGamma::new(10.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let a = simulate_alignment(&tree, g.eigen(), &gamma, 30_000, &mut rng);
        let f = a.empirical_frequencies();
        for s in 0..4 {
            assert!(
                (f[s] - g.freqs()[s]).abs() < 0.01,
                "state {s}: {} vs {}",
                f[s],
                g.freqs()[s]
            );
        }
    }

    #[test]
    fn short_branches_give_identical_sequences() {
        let tree = phylo_tree::Tree::triplet(["a", "b", "c"], [1e-8, 1e-8, 1e-8]).unwrap();
        let g = model();
        let gamma = DiscreteGamma::new(1.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let a = simulate_alignment(&tree, g.eigen(), &gamma, 2000, &mut rng);
        let s0 = a.sequence(0).to_iupac_string();
        assert_eq!(s0, a.sequence(1).to_iupac_string());
        assert_eq!(s0, a.sequence(2).to_iupac_string());
    }

    #[test]
    fn low_alpha_creates_more_invariant_sites() {
        // Small alpha concentrates rates near zero: most sites evolve
        // very slowly, so more columns are constant.
        let mut rng = SmallRng::seed_from_u64(11);
        let tree = random_tree(&default_names(10), 0.3, &mut rng).unwrap();
        let g = model();
        let count_constant = |alpha: f64, seed: u64| -> usize {
            let gamma = DiscreteGamma::new(alpha);
            let a = simulate_alignment(
                &tree,
                g.eigen(),
                &gamma,
                4000,
                &mut SmallRng::seed_from_u64(seed),
            );
            (0..a.num_sites())
                .filter(|&s| {
                    let col = a.column(s);
                    col.iter().all(|c| *c == col[0])
                })
                .count()
        };
        let low = count_constant(0.05, 5);
        let high = count_constant(50.0, 5);
        assert!(
            low > high + 100,
            "alpha=0.05 constant sites {low}, alpha=50 constant {high}"
        );
    }

    #[test]
    fn compressed_form_matches_dimensions() {
        let mut rng = SmallRng::seed_from_u64(9);
        let tree = random_tree(&default_names(15), 0.1, &mut rng).unwrap();
        let g = model();
        let gamma = DiscreteGamma::new(1.0);
        let c = simulate_compressed(&tree, g.eigen(), &gamma, 1000, &mut rng);
        assert_eq!(c.num_taxa(), 15);
        assert_eq!(c.num_patterns(), 1000);
        assert_eq!(c.original_sites(), 1000);
        assert!(c.weights().iter().all(|&w| w == 1));
    }

    #[test]
    #[should_panic]
    fn zero_sites_rejected() {
        let tree = phylo_tree::Tree::triplet(["a", "b", "c"], [0.1; 3]).unwrap();
        let g = model();
        let gamma = DiscreteGamma::new(1.0);
        simulate_states(&tree, g.eigen(), &gamma, 0, &mut SmallRng::seed_from_u64(0));
    }
}
