#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![allow(clippy::needless_range_loop)] // index loops mirror the paper's kernel notation; reference constants keep full printed precision
//! `plf-core` — the Phylogenetic Likelihood Function kernels.
//!
//! This crate implements the paper's primary contribution: the four
//! compute kernels that dominate maximum-likelihood tree inference
//! (§IV), each in two variants:
//!
//! * **scalar** — a straightforward reference implementation, the
//!   moral equivalent of the unvectorized C code a "recompile with
//!   `-mmic`" port would run (§V-B);
//! * **vector** — the paper's MIC optimizations expressed portably:
//!   64-byte aligned buffers ([`aligned`]), the fused 16-wide
//!   `(rate, state)` loop reorganization (§V-B3, [`layout`]), site
//!   blocking in groups of 8 (§V-B4), and `mul_add` chains that lower
//!   to FMA instructions.
//!
//! The kernels:
//!
//! | paper name       | here                                   |
//! |------------------|----------------------------------------|
//! | `newview`        | [`kernels::Kernels::newview_ii`] (+ tip fast paths) |
//! | `evaluate`       | [`kernels::Kernels::evaluate_ii`] (+ tip fast path) |
//! | `derivativeSum`  | [`kernels::Kernels::derivative_sum_ii`] (+ tip) |
//! | `derivativeCore` | [`kernels::Kernels::derivative_core`]  |
//!
//! [`engine::LikelihoodEngine`] ties the kernels to a tree: it owns the
//! conditional likelihood arrays (CLAs), tracks which are valid for the
//! current virtual-root orientation (RAxML's traversal descriptor), and
//! exposes `log_likelihood` / `branch_derivatives` to the search layer.
//!
//! [`naive`] contains an independent brute-force likelihood
//! implementation (sum over all internal state assignments) used as the
//! correctness anchor by the test suite.

pub mod aligned;
pub mod cat;
pub mod cla;
pub mod cost;
pub mod engine;
pub mod instrument;
pub mod kernels;
pub mod layout;
pub mod metrics;
pub mod naive;
pub mod nstate;
pub mod recompute;
pub mod repeats;
pub mod scaling;
pub mod span;
pub(crate) mod sync;
pub mod trace;

pub use aligned::AlignedVec;
pub use cost::{KernelCost, KernelOp};
pub use engine::{EngineConfig, LikelihoodEngine};
pub use instrument::{KernelId, KernelStats, LatencyHistogram, OpCost, RegionStats};
pub use kernels::{KernelKind, Kernels};
pub use repeats::{RepeatStats, SiteRepeats};
pub use span::{SpanGuard, TrackSnapshot};
pub use trace::{TraceEvent, TRACE_VERSION};

/// Number of DNA states.
pub const NUM_STATES: usize = phylo_models::NUM_STATES;
/// Number of Γ rate categories.
pub const NUM_RATES: usize = phylo_models::NUM_RATES;
/// Doubles per site in a CLA (`4 states × 4 rates`; 128 bytes).
pub const SITE_STRIDE: usize = phylo_models::SITE_STRIDE;
/// Site-block width used by the vector kernels (§V-B4).
pub const SITE_BLOCK: usize = 8;
