//! Runtime-N-state likelihood evaluation (protein support, §VII).
//!
//! The paper's kernels are specialized for DNA (4 states × 4 Γ rates =
//! a fixed 16-double site stride). This module provides the §VII
//! "support protein data" extension: the same PLF over any alphabet
//! size, with heap-backed per-site strides of `n_states × 4` doubles.
//! Tips are 32-bit ambiguity masks; because a 2²⁰-entry lookup table is
//! impractical, tip contributions are computed on the fly (cheap for
//! unambiguous residues, a masked sum otherwise).
//!
//! The implementation deliberately favors clarity over the DNA path's
//! layout tricks — it is the correctness-first generalization, and the
//! DNA engine doubles as its oracle (`n_states = 4` must reproduce
//! [`crate::engine::LikelihoodEngine`] exactly; see the tests).

use crate::aligned::AlignedVec;
use crate::scaling::{LN_SCALE, SCALE_FACTOR, SCALE_THRESHOLD};
use crate::NUM_RATES;
use phylo_models::{DiscreteGamma, NEigensystem};
use phylo_tree::traverse::{children, full_schedule};
use phylo_tree::{EdgeId, NodeId, Tree};

/// A likelihood engine over an `n_states`-letter alphabet.
pub struct NStateEngine {
    eigen: NEigensystem,
    gamma: DiscreteGamma,
    n: usize,
    stride: usize,
    /// Per tree-tip-id rows of ambiguity masks over patterns.
    tips: Vec<Vec<u32>>,
    weights: Vec<u32>,
    num_patterns: usize,
    num_taxa: usize,
    clas: Vec<AlignedVec>,
    scales: Vec<Vec<u32>>,
    /// Scratch for branch derivatives.
    sumtable: AlignedVec,
    sum_ready: bool,
}

impl NStateEngine {
    /// Builds an engine. `tips[tip_id][pattern]` are ambiguity masks
    /// over the model's states (bit `s` set ⇔ state `s` compatible).
    pub fn new(
        tree: &Tree,
        eigen: NEigensystem,
        gamma: DiscreteGamma,
        tips: Vec<Vec<u32>>,
        weights: Vec<u32>,
    ) -> Self {
        let n = eigen.num_states();
        assert!(
            (2..=32).contains(&n),
            "mask encoding supports 2..=32 states"
        );
        assert_eq!(tips.len(), tree.num_taxa(), "one tip row per taxon");
        let num_patterns = weights.len();
        let all = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
        for (t, row) in tips.iter().enumerate() {
            assert_eq!(row.len(), num_patterns, "tip {t} row length");
            assert!(
                row.iter().all(|&m| m != 0 && m <= all),
                "tip {t} contains an invalid mask"
            );
        }
        let stride = n * NUM_RATES;
        NStateEngine {
            eigen,
            gamma,
            n,
            stride,
            tips,
            weights,
            num_patterns,
            num_taxa: tree.num_taxa(),
            clas: (0..tree.num_inner())
                .map(|_| AlignedVec::zeroed(num_patterns * stride))
                .collect(),
            scales: vec![vec![0; num_patterns]; tree.num_inner()],
            sumtable: AlignedVec::zeroed(num_patterns * stride),
            sum_ready: false,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.n
    }

    /// Number of patterns covered.
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    fn inner_idx(&self, node: NodeId) -> usize {
        node - self.num_taxa
    }

    /// Per-rate transition matrices for branch length `t`.
    fn pmats(&self, t: f64) -> Vec<Vec<Vec<f64>>> {
        self.gamma
            .rates()
            .iter()
            .map(|&r| self.eigen.prob_matrix(t, r))
            .collect()
    }

    /// Conditional likelihood of a tip mask: `Σ_{b ∈ mask} P[a][b]`.
    #[inline]
    fn tip_partial(p_row: &[f64], mask: u32) -> f64 {
        let mut sum = 0.0;
        let mut m = mask;
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            sum += p_row[b];
            m &= m - 1;
        }
        sum
    }

    /// Fills `out` with the directed conditional likelihoods of `node`
    /// looking away from `toward`, assuming children are valid.
    fn newview(&mut self, tree: &Tree, node: NodeId, toward: EdgeId) {
        let n = self.n;
        let stride = self.stride;
        let ch = children(tree, node, toward);
        let pm: [Vec<Vec<Vec<f64>>>; 2] = [
            self.pmats(tree.length(ch[0].0)),
            self.pmats(tree.length(ch[1].0)),
        ];
        let idx = self.inner_idx(node);
        let mut out = std::mem::replace(&mut self.clas[idx], AlignedVec::zeroed(0));
        let mut scale = std::mem::take(&mut self.scales[idx]);

        for i in 0..self.num_patterns {
            let site = &mut out[i * stride..(i + 1) * stride];
            let mut scale_in = 0u32;
            // First child fills, second multiplies in.
            for (c, &(_, child)) in ch.iter().enumerate() {
                let pmc = &pm[c];
                if tree.is_tip(child) {
                    let mask = self.tips[child][i];
                    for k in 0..NUM_RATES {
                        let p = &pmc[k];
                        for a in 0..n {
                            let v = Self::tip_partial(&p[a], mask);
                            let slot = &mut site[k * n + a];
                            if c == 0 {
                                *slot = v;
                            } else {
                                *slot *= v;
                            }
                        }
                    }
                } else {
                    let cidx = self.inner_idx(child);
                    let cla = &self.clas[cidx];
                    let cv = &cla[i * stride..(i + 1) * stride];
                    scale_in += self.scales[cidx][i];
                    for k in 0..NUM_RATES {
                        let p = &pmc[k];
                        for a in 0..n {
                            let mut v = 0.0;
                            for b in 0..n {
                                v += p[a][b] * cv[k * n + b];
                            }
                            let slot = &mut site[k * n + a];
                            if c == 0 {
                                *slot = v;
                            } else {
                                *slot *= v;
                            }
                        }
                    }
                }
            }
            // Underflow scaling, as in the DNA path.
            let mut max = 0.0f64;
            for &v in site.iter() {
                if v > max {
                    max = v;
                }
            }
            if max < SCALE_THRESHOLD {
                for v in site.iter_mut() {
                    *v *= SCALE_FACTOR;
                }
                scale_in += 1;
            }
            scale[i] = scale_in;
        }

        self.clas[idx] = out;
        self.scales[idx] = scale;
    }

    /// Recomputes every CLA oriented toward `root_edge` (no caching:
    /// this is the reference-clarity path).
    pub fn update_partials(&mut self, tree: &Tree, root_edge: EdgeId) {
        for d in full_schedule(tree, root_edge) {
            self.newview(tree, d.node, d.toward_edge);
        }
        self.sum_ready = false;
    }

    /// Log-likelihood with the virtual root on `root_edge`.
    pub fn log_likelihood(&mut self, tree: &Tree, root_edge: EdgeId) -> f64 {
        self.update_partials(tree, root_edge);
        let n = self.n;
        let stride = self.stride;
        let (a, b) = tree.endpoints(root_edge);
        let (q, r) = if tree.is_tip(a) { (a, b) } else { (b, a) };
        let pm = self.pmats(tree.length(root_edge));
        let pi = self.eigen.freqs();
        let w_cat = 1.0 / NUM_RATES as f64;
        let ridx = self.inner_idx(r);
        let r_cla = &self.clas[ridx];
        let r_scale = &self.scales[ridx];

        let mut log_l = 0.0;
        for i in 0..self.num_patterns {
            let rv = &r_cla[i * stride..(i + 1) * stride];
            let mut site = 0.0;
            let mut sc = r_scale[i] as f64;
            if tree.is_tip(q) {
                let mask = self.tips[q][i];
                for k in 0..NUM_RATES {
                    let p = &pm[k];
                    for a_state in 0..n {
                        if mask & (1 << a_state) == 0 {
                            continue;
                        }
                        let mut x = 0.0;
                        for b_state in 0..n {
                            x += p[a_state][b_state] * rv[k * n + b_state];
                        }
                        site += w_cat * pi[a_state] * x;
                    }
                }
            } else {
                let qidx = self.inner_idx(q);
                let qv = &self.clas[qidx][i * stride..(i + 1) * stride];
                sc += self.scales[qidx][i] as f64;
                for k in 0..NUM_RATES {
                    let p = &pm[k];
                    for a_state in 0..n {
                        let mut x = 0.0;
                        for b_state in 0..n {
                            x += p[a_state][b_state] * rv[k * n + b_state];
                        }
                        site += w_cat * pi[a_state] * qv[k * n + a_state] * x;
                    }
                }
            }
            let w = self.weights[i] as f64;
            log_l += w * (site.max(f64::MIN_POSITIVE).ln() - sc * LN_SCALE);
        }
        log_l
    }

    /// Prepares the branch-invariant eigen-space sum table for `edge`
    /// (the N-state `derivativeSum`).
    pub fn prepare_branch(&mut self, tree: &Tree, edge: EdgeId) {
        self.update_partials(tree, edge);
        let n = self.n;
        let stride = self.stride;
        let (a, b) = tree.endpoints(edge);
        let (q, r) = if tree.is_tip(a) { (a, b) } else { (b, a) };
        let pi = self.eigen.freqs().to_vec();
        let u = self.eigen.u().to_vec();
        let ui = self.eigen.u_inv().to_vec();
        let ridx = self.inner_idx(r);

        let mut sum = std::mem::replace(&mut self.sumtable, AlignedVec::zeroed(0));
        for i in 0..self.num_patterns {
            let rv = &self.clas[ridx][i * stride..(i + 1) * stride];
            let site = &mut sum[i * stride..(i + 1) * stride];
            for k in 0..NUM_RATES {
                for j in 0..n {
                    // left̂[j] = Σ_a q_a π_a U[a][j]
                    let mut le = 0.0;
                    if tree.is_tip(q) {
                        let mask = self.tips[q][i];
                        for a_state in 0..n {
                            if mask & (1 << a_state) != 0 {
                                le += pi[a_state] * u[a_state][j];
                            }
                        }
                    } else {
                        let qidx = self.inner_idx(q);
                        let qv = &self.clas[qidx][i * stride..(i + 1) * stride];
                        for a_state in 0..n {
                            le += qv[k * n + a_state] * pi[a_state] * u[a_state][j];
                        }
                    }
                    // right̂[j] = Σ_b U⁻¹[j][b] r_b
                    let mut re = 0.0;
                    for b_state in 0..n {
                        re += ui[j][b_state] * rv[k * n + b_state];
                    }
                    site[k * n + j] = le * re;
                }
            }
        }
        self.sumtable = sum;
        self.sum_ready = true;
    }

    /// First and second log-likelihood derivatives at branch length
    /// `t` for the prepared branch (the N-state `derivativeCore`).
    ///
    /// # Panics
    /// Panics when no branch is prepared.
    pub fn branch_derivatives(&self, t: f64) -> (f64, f64) {
        assert!(self.sum_ready, "prepare_branch must run first");
        let n = self.n;
        let stride = self.stride;
        let vals = self.eigen.values();
        let rates = self.gamma.rates();
        // Exponential tables shared by all sites.
        let mut e = vec![0.0; stride];
        let mut d1 = vec![0.0; stride];
        let mut d2 = vec![0.0; stride];
        for k in 0..NUM_RATES {
            for j in 0..n {
                let lr = vals[j] * rates[k];
                let ex = (lr * t).exp();
                e[k * n + j] = ex;
                d1[k * n + j] = lr * ex;
                d2[k * n + j] = lr * lr * ex;
            }
        }
        let mut dlnl = 0.0;
        let mut d2lnl = 0.0;
        for i in 0..self.num_patterns {
            let s = &self.sumtable[i * stride..(i + 1) * stride];
            let mut l = 0.0;
            let mut l1 = 0.0;
            let mut l2 = 0.0;
            for m in 0..stride {
                l += s[m] * e[m];
                l1 += s[m] * d1[m];
                l2 += s[m] * d2[m];
            }
            let l = l.max(f64::MIN_POSITIVE);
            let w = self.weights[i] as f64;
            let r1 = l1 / l;
            dlnl += w * r1;
            d2lnl += w * (l2 / l - r1 * r1);
        }
        (dlnl, d2lnl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, LikelihoodEngine};
    use phylo_bio::{Alignment, CompressedAlignment, Sequence};
    use phylo_models::nstate::dna_as_nstate;
    use phylo_models::{protein_poisson, GtrParams};
    use phylo_tree::newick;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn dna_fixture() -> (Tree, CompressedAlignment, GtrParams) {
        let tree = newick::parse("((a:0.11,b:0.23):0.31,c:0.08,(d:0.19,e:0.27):0.14);").unwrap();
        let aln = CompressedAlignment::from_alignment(
            &Alignment::new(vec![
                Sequence::from_str_named("a", "ACGTACGTNACGTRYAC").unwrap(),
                Sequence::from_str_named("b", "ACGTTCGAAACGTRYAC").unwrap(),
                Sequence::from_str_named("c", "ACGAACGTCACGTAAAC").unwrap(),
                Sequence::from_str_named("d", "TCGTACGTGACTTRYAC").unwrap(),
                Sequence::from_str_named("e", "ACGTACTTTACGTRYCC").unwrap(),
            ])
            .unwrap(),
        );
        let params = GtrParams {
            rates: [1.2, 2.9, 0.8, 1.1, 3.5, 1.0],
            freqs: aln.empirical_frequencies(),
        };
        (tree, aln, params)
    }

    fn nstate_from_dna(
        tree: &Tree,
        aln: &CompressedAlignment,
        params: GtrParams,
        alpha: f64,
    ) -> NStateEngine {
        let tips: Vec<Vec<u32>> = (0..tree.num_taxa())
            .map(|t| {
                let row = aln.taxon_index(tree.tip_name(t)).unwrap();
                aln.row(row).iter().map(|c| c.bits() as u32).collect()
            })
            .collect();
        NStateEngine::new(
            tree,
            dna_as_nstate(&params).unwrap(),
            DiscreteGamma::new(alpha),
            tips,
            aln.weights().to_vec(),
        )
    }

    #[test]
    fn four_state_matches_dna_engine_exactly() {
        let (tree, aln, params) = dna_fixture();
        let alpha = 0.7;
        let mut dna = LikelihoodEngine::new(
            &tree,
            &aln,
            EngineConfig {
                kernel: crate::KernelKind::Vector,
                alpha,
                ..EngineConfig::default()
            },
        );
        dna.set_model(params);
        let mut gen = nstate_from_dna(&tree, &aln, params, alpha);
        for e in tree.edge_ids() {
            let a = dna.log_likelihood(&tree, e);
            let b = gen.log_likelihood(&tree, e);
            assert!((a - b).abs() < 1e-9, "edge {e}: {a} vs {b}");
        }
    }

    #[test]
    fn four_state_derivatives_match_dna_engine() {
        let (tree, aln, params) = dna_fixture();
        let alpha = 0.7;
        let mut dna = LikelihoodEngine::new(
            &tree,
            &aln,
            EngineConfig {
                kernel: crate::KernelKind::Scalar,
                alpha,
                ..EngineConfig::default()
            },
        );
        dna.set_model(params);
        let mut gen = nstate_from_dna(&tree, &aln, params, alpha);
        for e in [0usize, 3, 6] {
            dna.prepare_branch(&tree, e);
            gen.prepare_branch(&tree, e);
            let t = tree.length(e);
            let (a1, a2) = dna.branch_derivatives(t);
            let (b1, b2) = gen.branch_derivatives(t);
            assert!((a1 - b1).abs() < 1e-7 * (1.0 + a1.abs()), "{a1} vs {b1}");
            assert!((a2 - b2).abs() < 1e-7 * (1.0 + a2.abs()), "{a2} vs {b2}");
        }
    }

    fn protein_fixture(seed: u64) -> (Tree, Vec<Vec<u32>>, Vec<u32>, NEigensystem) {
        let tree = newick::parse("((a:0.2,b:0.3):0.15,c:0.25,(d:0.1,e:0.4):0.2);").unwrap();
        let mut freqs = [0.0f64; 20];
        let mut total = 0.0;
        for (i, f) in freqs.iter_mut().enumerate() {
            *f = 1.0 + (i % 5) as f64 * 0.4;
            total += *f;
        }
        let freqs = freqs.map(|f| f / total);
        let eigen = protein_poisson(&freqs).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let patterns = 40;
        let tips: Vec<Vec<u32>> = (0..5)
            .map(|_| {
                (0..patterns)
                    .map(|_| 1u32 << rng.random_range(0..20))
                    .collect()
            })
            .collect();
        (tree, tips, vec![1; patterns], eigen)
    }

    #[test]
    fn protein_root_invariance() {
        let (tree, tips, weights, eigen) = protein_fixture(5);
        let mut engine = NStateEngine::new(&tree, eigen, DiscreteGamma::new(0.9), tips, weights);
        let reference = engine.log_likelihood(&tree, 0);
        assert!(reference.is_finite() && reference < 0.0);
        for e in tree.edge_ids().skip(1) {
            let ll = engine.log_likelihood(&tree, e);
            assert!(
                (ll - reference).abs() < 1e-8,
                "edge {e}: {ll} vs {reference}"
            );
        }
    }

    #[test]
    fn protein_all_gap_logl_zero() {
        let (tree, tips, weights, eigen) = protein_fixture(6);
        let all = (1u32 << 20) - 1;
        let gaps: Vec<Vec<u32>> = tips.iter().map(|r| vec![all; r.len()]).collect();
        let mut engine = NStateEngine::new(&tree, eigen, DiscreteGamma::new(1.0), gaps, weights);
        let ll = engine.log_likelihood(&tree, 0);
        assert!(ll.abs() < 1e-8, "logL = {ll}");
    }

    #[test]
    fn protein_derivatives_match_finite_differences() {
        let (tree, tips, weights, eigen) = protein_fixture(7);
        let mut engine = NStateEngine::new(&tree, eigen, DiscreteGamma::new(0.8), tips, weights);
        let edge = 2;
        engine.prepare_branch(&tree, edge);
        let t0 = tree.length(edge);
        let (d1, d2) = engine.branch_derivatives(t0);
        let h = 1e-5;
        let mut ll = |t: f64| {
            let mut tt = tree.clone();
            tt.set_length(edge, t).unwrap();
            engine.log_likelihood(&tt, edge)
        };
        let (lp, lm, l0) = (ll(t0 + h), ll(t0 - h), ll(t0));
        let fd1 = (lp - lm) / (2.0 * h);
        let fd2 = (lp - 2.0 * l0 + lm) / (h * h);
        assert!(
            (d1 - fd1).abs() < 1e-3 * (1.0 + fd1.abs()),
            "d1 {d1} fd {fd1}"
        );
        assert!(
            (d2 - fd2).abs() < 1e-2 * (1.0 + fd2.abs()),
            "d2 {d2} fd {fd2}"
        );
    }

    #[test]
    fn invalid_masks_rejected() {
        let (tree, mut tips, weights, eigen) = protein_fixture(8);
        tips[0][0] = 0;
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            NStateEngine::new(&tree, eigen, DiscreteGamma::new(1.0), tips, weights)
        }));
        assert!(r.is_err());
    }
}
