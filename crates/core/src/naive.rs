//! Brute-force reference likelihood.
//!
//! Computes the phylogenetic likelihood by explicit summation over all
//! internal-node state assignments — exponential in the number of inner
//! nodes, entirely independent of the CLA/kernel code paths, and
//! therefore the correctness oracle for everything in this crate.
//! Usable for trees with up to ~8 taxa.

use crate::{NUM_RATES, NUM_STATES};
use phylo_models::{Eigensystem, ProbMatrix};
use phylo_tree::Tree;

/// Log-likelihood of `tree` under GTR+Γ by brute-force enumeration.
///
/// `tip_rows[tip_id][pattern]` holds 4-bit ambiguity codes; `weights`
/// are pattern multiplicities.
///
/// # Panics
/// Panics when the tree has more than 10 inner nodes (the enumeration
/// would be intractable) or when dimensions disagree.
pub fn log_likelihood(
    tree: &Tree,
    eigen: &Eigensystem,
    rates: &[f64; NUM_RATES],
    tip_rows: &[Vec<u8>],
    weights: &[u32],
) -> f64 {
    let n_inner = tree.num_inner();
    assert!(n_inner <= 10, "brute force limited to 10 inner nodes");
    assert_eq!(tip_rows.len(), tree.num_taxa());
    let n_patterns = weights.len();
    for row in tip_rows {
        assert_eq!(row.len(), n_patterns);
    }

    // Per-edge transition matrices for each rate category.
    let pmats: Vec<ProbMatrix> = tree
        .edge_ids()
        .map(|e| ProbMatrix::new(eigen, rates, tree.length(e)))
        .collect();

    // Direct all edges away from an arbitrary inner root.
    let root = tree.num_taxa(); // first inner node id
    let pi = eigen.freqs();
    let w_cat = 1.0 / NUM_RATES as f64;

    // Collect directed edges (parent, child, edge id) by BFS from root.
    let mut parent_of = vec![usize::MAX; tree.num_nodes()];
    let mut order = vec![root];
    let mut seen = vec![false; tree.num_nodes()];
    seen[root] = true;
    let mut qi = 0;
    while qi < order.len() {
        let u = order[qi];
        qi += 1;
        for (e, v) in tree.neighbors(u) {
            if !seen[v] {
                seen[v] = true;
                parent_of[v] = e;
                order.push(v);
            }
        }
    }
    let directed: Vec<(usize, usize, usize)> = order
        .iter()
        .skip(1)
        .map(|&v| {
            let e = parent_of[v];
            (tree.other_end(e, v), v, e)
        })
        .collect();

    // Inner node ids in a dense 0..n_inner mapping for enumeration.
    let inner_index = |node: usize| -> usize { node - tree.num_taxa() };

    let n_assign = NUM_STATES.pow(n_inner as u32);
    let mut log_l = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        let mut site = 0.0;
        for k in 0..NUM_RATES {
            let mut cat_sum = 0.0;
            for assign in 0..n_assign {
                let state_of = |node: usize| -> usize {
                    (assign / NUM_STATES.pow(inner_index(node) as u32)) % NUM_STATES
                };
                let mut prob = pi[state_of(root)];
                for &(u, v, e) in &directed {
                    let su = state_of(u);
                    let p = &pmats[e].per_rate[k];
                    if tree.is_tip(v) {
                        let code = tip_rows[v][i];
                        let mut tip_sum = 0.0;
                        for b in 0..NUM_STATES {
                            if code & (1 << b) != 0 {
                                tip_sum += p[su][b];
                            }
                        }
                        prob *= tip_sum;
                    } else {
                        prob *= p[su][state_of(v)];
                    }
                    if prob == 0.0 {
                        break;
                    }
                }
                cat_sum += prob;
            }
            site += w_cat * cat_sum;
        }
        log_l += w as f64 * site.ln();
    }
    log_l
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_models::{DiscreteGamma, Gtr, GtrParams};
    use phylo_tree::newick;

    fn codes(s: &str) -> Vec<u8> {
        s.chars()
            .map(|c| phylo_bio::DnaCode::from_char(c).unwrap().bits())
            .collect()
    }

    #[test]
    fn jc69_identical_tips_likelihood_known() {
        // Triplet with all branch lengths tiny and identical state A:
        // likelihood per site should approach pi_A = 0.25.
        let tree = newick::parse("(a:0.00000001,b:0.00000001,c:0.00000001);").unwrap();
        let g = Gtr::new(GtrParams::jc69());
        let rates = *DiscreteGamma::new(10.0).rates();
        let tips = vec![codes("A"), codes("A"), codes("A")];
        let l = log_likelihood(&tree, g.eigen(), &rates, &tips, &[1]);
        assert!((l - 0.25f64.ln()).abs() < 1e-4, "logL = {l}");
    }

    #[test]
    fn all_gap_pattern_has_likelihood_one() {
        // A column of all-undetermined characters sums to probability 1.
        let tree = newick::parse("(a:0.3,b:0.2,(c:0.1,d:0.4):0.25);").unwrap();
        let g = Gtr::new(GtrParams {
            rates: [1.5, 2.0, 0.5, 1.2, 3.1, 1.0],
            freqs: [0.3, 0.2, 0.2, 0.3],
        });
        let rates = *DiscreteGamma::new(0.6).rates();
        let tips = vec![codes("N"), codes("N"), codes("N"), codes("N")];
        let l = log_likelihood(&tree, g.eigen(), &rates, &tips, &[1]);
        assert!(l.abs() < 1e-9, "logL = {l}");
    }

    #[test]
    fn weights_multiply_loglikelihood() {
        let tree = newick::parse("(a:0.3,b:0.2,(c:0.1,d:0.4):0.25);").unwrap();
        let g = Gtr::new(GtrParams::jc69());
        let rates = *DiscreteGamma::new(1.0).rates();
        let tips = vec![codes("A"), codes("C"), codes("G"), codes("T")];
        let l1 = log_likelihood(&tree, g.eigen(), &rates, &tips, &[1]);
        let l5 = log_likelihood(&tree, g.eigen(), &rates, &tips, &[5]);
        assert!((l5 - 5.0 * l1).abs() < 1e-9);
    }

    #[test]
    fn virtual_root_invariance_under_reversibility() {
        // The enumeration roots at an arbitrary inner node; likelihood
        // must not depend on which one. Re-rooting is simulated by
        // parsing a different-but-equivalent newick rotation.
        let g = Gtr::new(GtrParams {
            rates: [0.9, 2.2, 1.1, 0.7, 4.0, 1.0],
            freqs: [0.26, 0.24, 0.27, 0.23],
        });
        let rates = *DiscreteGamma::new(0.8).rates();
        let t1 = newick::parse("((a:0.1,b:0.2):0.3,c:0.15,(d:0.25,e:0.05):0.4);").unwrap();
        let t2 = newick::parse("((d:0.25,e:0.05):0.4,(a:0.1,b:0.2):0.3,c:0.15);").unwrap();
        // Same tip order required: map by name.
        let tip_of = |t: &Tree, n: &str| t.tip_by_name(n).unwrap();
        let chars = [("a", "A"), ("b", "C"), ("c", "G"), ("d", "T"), ("e", "R")];
        let build = |t: &Tree| {
            let mut rows = vec![Vec::new(); 5];
            for (name, ch) in chars {
                rows[tip_of(t, name)] = codes(ch);
            }
            rows
        };
        let l1 = log_likelihood(&t1, g.eigen(), &rates, &build(&t1), &[1]);
        let l2 = log_likelihood(&t2, g.eigen(), &rates, &build(&t2), &[1]);
        assert!((l1 - l2).abs() < 1e-10, "{l1} vs {l2}");
    }
}
