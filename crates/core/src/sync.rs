//! Synchronization facade: `std` types in production, `interleave`
//! shims under the `interleave` cargo feature.
//!
//! Only code whose concurrency protocol is model-checked goes through
//! this module (currently the span-ring seqlock). Global statics keep
//! using `std::sync::atomic` directly — the shimmed constructors are
//! not `const`, and process-wide flags are not part of any checked
//! protocol.

#[cfg(feature = "interleave")]
pub(crate) use interleave::sync::atomic;

#[cfg(not(feature = "interleave"))]
pub(crate) use std::sync::atomic;
