//! Explicit-SIMD kernel implementations (AVX2+FMA).
//!
//! Where [`super::vector`] renders the paper's §V-B optimizations
//! portably and hopes LLVM auto-vectorizes, this backend writes them
//! with `core::arch::x86_64` intrinsics — the commodity-hardware
//! equivalent of the paper's hand-vectorized MIC kernels:
//!
//! * §V-B1 *explicit vectorization* — the 16-wide fused loop is split
//!   across four 4×f64 AVX2 lanes, one per Γ rate category (`m = 4k +
//!   a` maps lane block `k` to category `k`), giving four independent
//!   FMA accumulator chains per site;
//! * §V-B2 *memory alignment* — CLA and sumtable buffers must be
//!   64-byte aligned and whole-site padded (debug-asserted at every
//!   kernel entry; see [`crate::layout`] for the invariant), so every
//!   site loads full vectors with no scalar remainder;
//! * §V-B4 *site blocking* — `evaluate`/`derivativeCore` keep the
//!   vector phase and the scalar log/division tail in separate
//!   8-site-block passes;
//! * §V-B5 *streaming stores* — `newview` CLAs and `derivativeSum`
//!   tables are written exactly once and never read back in-kernel, so
//!   they leave through non-temporal stores (`_mm256_stream_pd`),
//!   followed by one `sfence` at kernel exit that makes the
//!   weakly-ordered writes globally visible before any reader runs;
//! * prefetching — each site iteration prefetches the input CLA(s) a
//!   few sites ahead into L1, the §V-B MIC prefetch scheme.
//!
//! The underflow-scaling decision reuses [`crate::scaling::scale_site`]
//! on an aligned stack staging buffer, so scaling counters are
//! bit-identical to the scalar and vector backends (rescaling
//! multiplies by an exact power of two, so values stay bit-identical
//! too).
//!
//! On non-x86-64 targets, and on x86-64 hosts without AVX2+FMA, every
//! method delegates to the portable [`super::vector::VectorKernels`]
//! path; [`crate::KernelKind::resolve`] never dispatches here in that
//! case, so the delegation is defense in depth for direct callers.

use super::Kernels;
use crate::aligned::debug_assert_site_buffer as assert_buf;
use crate::layout::{EigenBasis, FusedPmat, Lut16x16};
use crate::SITE_STRIDE;

/// Explicit AVX2+FMA kernel set (portable fallback elsewhere).
pub struct SimdKernels;

/// Whether the explicit-SIMD backend can run on this host: x86-64 with
/// AVX2 and FMA detected at runtime. Detection results are cached by
/// `std`, so this is cheap enough to gate every kernel entry.
#[inline]
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

impl Kernels for SimdKernels {
    fn newview_tt(
        &self,
        lut_l: &Lut16x16,
        lut_r: &Lut16x16,
        codes_l: &[u8],
        codes_r: &[u8],
        out: &mut [f64],
        scale_out: &mut [u32],
    ) {
        #[cfg(target_arch = "x86_64")]
        if simd_available() {
            assert_buf(out, scale_out.len(), "newview_tt out");
            // SAFETY: AVX2+FMA presence verified by simd_available().
            return unsafe { x86::newview_tt(lut_l, lut_r, codes_l, codes_r, out, scale_out) };
        }
        super::vector::VectorKernels.newview_tt(lut_l, lut_r, codes_l, codes_r, out, scale_out)
    }

    fn newview_ti(
        &self,
        lut_l: &Lut16x16,
        codes_l: &[u8],
        p_r: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        out: &mut [f64],
        scale_out: &mut [u32],
    ) {
        #[cfg(target_arch = "x86_64")]
        if simd_available() {
            assert_buf(v_r, scale_out.len(), "newview_ti v_r");
            assert_buf(out, scale_out.len(), "newview_ti out");
            // SAFETY: AVX2+FMA presence verified by simd_available().
            return unsafe { x86::newview_ti(lut_l, codes_l, p_r, v_r, scale_r, out, scale_out) };
        }
        super::vector::VectorKernels.newview_ti(lut_l, codes_l, p_r, v_r, scale_r, out, scale_out)
    }

    fn newview_ii(
        &self,
        p_l: &FusedPmat,
        v_l: &[f64],
        scale_l: &[u32],
        p_r: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        out: &mut [f64],
        scale_out: &mut [u32],
    ) {
        #[cfg(target_arch = "x86_64")]
        if simd_available() {
            assert_buf(v_l, scale_out.len(), "newview_ii v_l");
            assert_buf(v_r, scale_out.len(), "newview_ii v_r");
            assert_buf(out, scale_out.len(), "newview_ii out");
            // SAFETY: AVX2+FMA presence verified by simd_available().
            return unsafe {
                x86::newview_ii(p_l, v_l, scale_l, p_r, v_r, scale_r, out, scale_out)
            };
        }
        super::vector::VectorKernels
            .newview_ii(p_l, v_l, scale_l, p_r, v_r, scale_r, out, scale_out)
    }

    fn evaluate_ti(
        &self,
        pi_tip: &Lut16x16,
        codes_q: &[u8],
        p: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        weights: &[u32],
    ) -> f64 {
        #[cfg(target_arch = "x86_64")]
        if simd_available() {
            assert_buf(v_r, weights.len(), "evaluate_ti v_r");
            // SAFETY: AVX2+FMA presence verified by simd_available().
            return unsafe { x86::evaluate_ti(pi_tip, codes_q, p, v_r, scale_r, weights) };
        }
        super::vector::VectorKernels.evaluate_ti(pi_tip, codes_q, p, v_r, scale_r, weights)
    }

    fn evaluate_ii(
        &self,
        pi_w: &[f64; SITE_STRIDE],
        v_q: &[f64],
        scale_q: &[u32],
        p: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        weights: &[u32],
    ) -> f64 {
        #[cfg(target_arch = "x86_64")]
        if simd_available() {
            assert_buf(v_q, weights.len(), "evaluate_ii v_q");
            assert_buf(v_r, weights.len(), "evaluate_ii v_r");
            // SAFETY: AVX2+FMA presence verified by simd_available().
            return unsafe { x86::evaluate_ii(pi_w, v_q, scale_q, p, v_r, scale_r, weights) };
        }
        super::vector::VectorKernels.evaluate_ii(pi_w, v_q, scale_q, p, v_r, scale_r, weights)
    }

    fn derivative_sum_ti(&self, basis: &EigenBasis, codes_q: &[u8], v_r: &[f64], out: &mut [f64]) {
        #[cfg(target_arch = "x86_64")]
        if simd_available() {
            let n = out.len() / SITE_STRIDE;
            assert_buf(v_r, n, "derivative_sum_ti v_r");
            assert_buf(out, n, "derivative_sum_ti out");
            // SAFETY: AVX2+FMA presence verified by simd_available().
            return unsafe { x86::derivative_sum_ti(basis, codes_q, v_r, out) };
        }
        super::vector::VectorKernels.derivative_sum_ti(basis, codes_q, v_r, out)
    }

    fn derivative_sum_ii(&self, basis: &EigenBasis, v_q: &[f64], v_r: &[f64], out: &mut [f64]) {
        #[cfg(target_arch = "x86_64")]
        if simd_available() {
            let n = out.len() / SITE_STRIDE;
            assert_buf(v_q, n, "derivative_sum_ii v_q");
            assert_buf(v_r, n, "derivative_sum_ii v_r");
            assert_buf(out, n, "derivative_sum_ii out");
            // SAFETY: AVX2+FMA presence verified by simd_available().
            return unsafe { x86::derivative_sum_ii(basis, v_q, v_r, out) };
        }
        super::vector::VectorKernels.derivative_sum_ii(basis, v_q, v_r, out)
    }

    fn derivative_core(
        &self,
        sumtable: &[f64],
        lambda_rate: &[f64; SITE_STRIDE],
        t: f64,
        weights: &[u32],
    ) -> (f64, f64) {
        #[cfg(target_arch = "x86_64")]
        if simd_available() {
            assert_buf(sumtable, weights.len(), "derivative_core sumtable");
            // SAFETY: AVX2+FMA presence verified by simd_available().
            return unsafe { x86::derivative_core(sumtable, lambda_rate, t, weights) };
        }
        super::vector::VectorKernels.derivative_core(sumtable, lambda_rate, t, weights)
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The AVX2+FMA kernel cores. Every function here carries
    //! `#[target_feature(enable = "avx2", enable = "fma")]`; callers
    //! must verify feature presence (see the trait impl above), which
    //! is what makes the `unsafe` call sites sound.

    use super::super::{derivative_exp_tables, positive};
    use crate::layout::{EigenBasis, FusedPmat, Lut16x16};
    use crate::scaling::{scale_site, LN_SCALE};
    use crate::{NUM_RATES, NUM_STATES, SITE_BLOCK, SITE_STRIDE};
    use core::arch::x86_64::{
        __m256d, _mm256_castpd256_pd128, _mm256_extractf128_pd, _mm256_fmadd_pd, _mm256_loadu_pd,
        _mm256_mul_pd, _mm256_set1_pd, _mm256_setzero_pd, _mm256_storeu_pd, _mm256_stream_pd,
        _mm_add_pd, _mm_add_sd, _mm_cvtsd_f64, _mm_prefetch, _mm_sfence, _mm_unpackhi_pd,
        _MM_HINT_T0,
    };

    /// How many sites ahead the input CLA prefetches run. One site is
    /// 128 bytes (two cache lines); 8 sites ≈ 1 KiB of lookahead, far
    /// enough to cover the FMA latency of the current site at DRAM
    /// bandwidth without thrashing L1.
    const PREFETCH_SITES: usize = 8;

    /// One site's 16 doubles on the stack. 64-byte aligned so the
    /// staging round-trip between compute, the scaling rule, and the
    /// streaming store uses fully aligned vector moves.
    #[repr(align(64))]
    struct SiteBuf([f64; SITE_STRIDE]);

    /// Loads lanes `[at, at + 4)` of a site row.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    fn load4(row: &[f64], at: usize) -> __m256d {
        let s = &row[at..at + 4];
        // SAFETY: the slice bounds-check above proves 4 readable f64s.
        unsafe { _mm256_loadu_pd(s.as_ptr()) }
    }

    /// Stores `v` to lanes `[at, at + 4)` of a site row.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    fn store4(row: &mut [f64], at: usize, v: __m256d) {
        let s = &mut row[at..at + 4];
        // SAFETY: the slice bounds-check above proves 4 writable f64s.
        unsafe { _mm256_storeu_pd(s.as_mut_ptr(), v) }
    }

    /// Non-temporal store of `v` to lanes `[at, at + 4)` (§V-B5):
    /// bypasses the cache since output CLAs are never read back by the
    /// writing kernel. Callers must only pass `at` offsets that keep
    /// the destination 32-byte aligned (guaranteed by the
    /// `stream_ok` gate: 32-byte-aligned base + 128-byte site stride).
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    fn stream4(row: &mut [f64], at: usize, v: __m256d) {
        let s = &mut row[at..at + 4];
        debug_assert_eq!(s.as_ptr() as usize % 32, 0, "streaming store misaligned");
        // SAFETY: the slice bounds-check proves 4 writable f64s; the
        // 32-byte alignment `_mm256_stream_pd` requires holds because
        // the caller's `stream_ok` gate checked the buffer base and
        // every site offset is a multiple of 128 bytes (debug-asserted
        // above).
        unsafe { _mm256_stream_pd(s.as_mut_ptr(), v) }
    }

    /// Minimum number of sites before non-temporal stores pay off. NT
    /// stores bypass the cache entirely, so for outputs that still fit
    /// in L2 (and will be re-read by the parent `newview`/`evaluate`
    /// within a few kernel calls) they trade a cache hit on the reader
    /// for nothing — BENCH_5 measured the Simd backend *losing* to
    /// scalar at 1k patterns on exactly the streamed kernels. 4096
    /// sites × 128 B = 512 KiB, about where outputs stop fitting in a
    /// per-core L2 and the reader was going to miss anyway.
    const NT_MIN_SITES: usize = 4096;

    /// Whether `out` should take streaming stores: every site offset
    /// must be 32-byte aligned (engine-owned buffers are 64-byte
    /// aligned and always qualify; the 128-byte site stride preserves
    /// alignment), and the output must be large enough
    /// ([`NT_MIN_SITES`]) that bypassing the cache wins.
    #[inline]
    fn stream_ok(out: &[f64], n_sites: usize) -> bool {
        (out.as_ptr() as usize).is_multiple_of(32) && n_sites >= NT_MIN_SITES
    }

    /// §V-B5 epilogue: `sfence` after non-temporal stores. NT stores
    /// are weakly ordered — without the fence a reader synchronized
    /// through an ordinary release/acquire edge (e.g. a fork-join
    /// barrier) could observe stale CLA contents. Every kernel that
    /// streamed calls this exactly once before returning, so
    /// `evaluate` may assume CLAs are visible without fencing itself.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    fn drain_streams(nt: bool) {
        if nt {
            _mm_sfence();
        }
    }

    /// Prefetches site `site` of `buf` (both of its cache lines) into
    /// L1. Runs unconditionally near the end of the buffer: prefetch
    /// never faults and the address is not dereferenced (`_mm_prefetch`
    /// is documented to accept invalid pointers), so `wrapping_add`
    /// past the end is fine.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    fn prefetch_site(buf: &[f64], site: usize) {
        // Prefetch hints never fault and do not dereference, so the
        // possibly-past-the-end address is fine (`_mm_prefetch` is
        // documented to accept invalid pointers).
        let p = buf.as_ptr().wrapping_add(site * SITE_STRIDE);
        _mm_prefetch::<_MM_HINT_T0>(p as *const i8);
        _mm_prefetch::<_MM_HINT_T0>(p.wrapping_add(8) as *const i8);
    }

    /// Horizontal sum of 4 lanes.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    fn hsum(v: __m256d) -> f64 {
        let hi = _mm256_extractf128_pd(v, 1);
        let lo = _mm256_castpd256_pd128(v);
        let s = _mm_add_pd(lo, hi);
        _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)))
    }

    /// The paper's fused 16-wide matrix application (§V-B3) on 4×f64
    /// lanes: lane block `k` is rate category `k`, and
    /// `acc[k] = Σ_b cols[b][4k..4k+4] · v[4k + b]` runs as four
    /// independent FMA accumulator chains — the 16-wide MIC loop split
    /// across four AVX2 registers. Also serves the eigen-basis
    /// projections, whose tables share the `[input][m]` fused layout.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    fn matvec(cols: &[[f64; SITE_STRIDE]; NUM_STATES], v: &[f64]) -> [__m256d; NUM_RATES] {
        let mut acc = [_mm256_setzero_pd(); NUM_RATES];
        for (b, col) in cols.iter().enumerate() {
            for (k, a) in acc.iter_mut().enumerate() {
                let x = _mm256_set1_pd(v[4 * k + b]);
                *a = _mm256_fmadd_pd(load4(col, 4 * k), x, *a);
            }
        }
        acc
    }

    /// Finishes one `newview` site: stages the 16 accumulated values,
    /// applies the shared underflow-scaling rule (bit-identical to the
    /// scalar/vector backends), and writes the site to `out` exactly
    /// once — streaming when `nt`.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    fn finish_site(acc: [__m256d; NUM_RATES], out: &mut [f64], at: usize, nt: bool) -> u32 {
        let mut buf = SiteBuf([0.0; SITE_STRIDE]);
        for (k, &a) in acc.iter().enumerate() {
            store4(&mut buf.0, 4 * k, a);
        }
        let bumps = scale_site(&mut buf.0);
        for k in 0..NUM_RATES {
            let v = load4(&buf.0, 4 * k);
            if nt {
                stream4(out, at + 4 * k, v);
            } else {
                store4(out, at + 4 * k, v);
            }
        }
        bumps
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) fn newview_tt(
        lut_l: &Lut16x16,
        lut_r: &Lut16x16,
        codes_l: &[u8],
        codes_r: &[u8],
        out: &mut [f64],
        scale_out: &mut [u32],
    ) {
        let n = scale_out.len();
        let nt = stream_ok(out, n);
        for i in 0..n {
            let l = &lut_l.rows[codes_l[i] as usize];
            let r = &lut_r.rows[codes_r[i] as usize];
            let mut acc = [_mm256_setzero_pd(); NUM_RATES];
            for (k, a) in acc.iter_mut().enumerate() {
                *a = _mm256_mul_pd(load4(l, 4 * k), load4(r, 4 * k));
            }
            scale_out[i] = finish_site(acc, out, i * SITE_STRIDE, nt);
        }
        drain_streams(nt);
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) fn newview_ti(
        lut_l: &Lut16x16,
        codes_l: &[u8],
        p_r: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        out: &mut [f64],
        scale_out: &mut [u32],
    ) {
        let n = scale_out.len();
        let nt = stream_ok(out, n);
        for i in 0..n {
            prefetch_site(v_r, i + PREFETCH_SITES);
            let l = &lut_l.rows[codes_l[i] as usize];
            let vr = &v_r[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            let mut acc = matvec(&p_r.cols, vr);
            for (k, a) in acc.iter_mut().enumerate() {
                *a = _mm256_mul_pd(load4(l, 4 * k), *a);
            }
            scale_out[i] = scale_r[i] + finish_site(acc, out, i * SITE_STRIDE, nt);
        }
        drain_streams(nt);
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) fn newview_ii(
        p_l: &FusedPmat,
        v_l: &[f64],
        scale_l: &[u32],
        p_r: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        out: &mut [f64],
        scale_out: &mut [u32],
    ) {
        let n = scale_out.len();
        let nt = stream_ok(out, n);
        for i in 0..n {
            prefetch_site(v_l, i + PREFETCH_SITES);
            prefetch_site(v_r, i + PREFETCH_SITES);
            let vl = &v_l[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            let vr = &v_r[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            let l = matvec(&p_l.cols, vl);
            let mut acc = matvec(&p_r.cols, vr);
            for (k, a) in acc.iter_mut().enumerate() {
                *a = _mm256_mul_pd(l[k], *a);
            }
            scale_out[i] = scale_l[i] + scale_r[i] + finish_site(acc, out, i * SITE_STRIDE, nt);
        }
        drain_streams(nt);
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) fn evaluate_ti(
        pi_tip: &Lut16x16,
        codes_q: &[u8],
        p: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        weights: &[u32],
    ) -> f64 {
        let n = weights.len();
        let mut log_l = 0.0;
        let mut block = [0.0f64; SITE_BLOCK];
        let mut i = 0;
        while i < n {
            let len = SITE_BLOCK.min(n - i);
            // Phase 1 (§V-B4): per-site 16-wide reductions.
            for (bi, slot) in block[..len].iter_mut().enumerate() {
                let s = i + bi;
                prefetch_site(v_r, s + PREFETCH_SITES);
                let piq = &pi_tip.rows[codes_q[s] as usize];
                let vr = &v_r[s * SITE_STRIDE..(s + 1) * SITE_STRIDE];
                let x = matvec(&p.cols, vr);
                let mut acc = _mm256_setzero_pd();
                for (k, &xk) in x.iter().enumerate() {
                    acc = _mm256_fmadd_pd(load4(piq, 4 * k), xk, acc);
                }
                *slot = hsum(acc);
            }
            // Phase 2 (scalar tail on the whole block): logs.
            for (bi, &site) in block[..len].iter().enumerate() {
                let s = i + bi;
                let w = weights[s] as f64;
                log_l += w * (positive(site).ln() - scale_r[s] as f64 * LN_SCALE);
            }
            i += len;
        }
        log_l
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) fn evaluate_ii(
        pi_w: &[f64; SITE_STRIDE],
        v_q: &[f64],
        scale_q: &[u32],
        p: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        weights: &[u32],
    ) -> f64 {
        let n = weights.len();
        let mut log_l = 0.0;
        let mut block = [0.0f64; SITE_BLOCK];
        let mut i = 0;
        while i < n {
            let len = SITE_BLOCK.min(n - i);
            for (bi, slot) in block[..len].iter_mut().enumerate() {
                let s = i + bi;
                prefetch_site(v_q, s + PREFETCH_SITES);
                prefetch_site(v_r, s + PREFETCH_SITES);
                let vq = &v_q[s * SITE_STRIDE..(s + 1) * SITE_STRIDE];
                let vr = &v_r[s * SITE_STRIDE..(s + 1) * SITE_STRIDE];
                let x = matvec(&p.cols, vr);
                let mut acc = _mm256_setzero_pd();
                for (k, &xk) in x.iter().enumerate() {
                    let pq = _mm256_mul_pd(load4(&pi_w[..], 4 * k), load4(vq, 4 * k));
                    acc = _mm256_fmadd_pd(pq, xk, acc);
                }
                *slot = hsum(acc);
            }
            for (bi, &site) in block[..len].iter().enumerate() {
                let s = i + bi;
                let w = weights[s] as f64;
                let sc = (scale_q[s] + scale_r[s]) as f64;
                log_l += w * (positive(site).ln() - sc * LN_SCALE);
            }
            i += len;
        }
        log_l
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) fn derivative_sum_ti(
        basis: &EigenBasis,
        codes_q: &[u8],
        v_r: &[f64],
        out: &mut [f64],
    ) {
        let n = out.len() / SITE_STRIDE;
        let nt = stream_ok(out, n);
        for i in 0..n {
            prefetch_site(v_r, i + PREFETCH_SITES);
            let le = &basis.tip_left.rows[codes_q[i] as usize];
            let vr = &v_r[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            let mut acc = matvec(&basis.uinv, vr);
            for (k, a) in acc.iter_mut().enumerate() {
                *a = _mm256_mul_pd(load4(le, 4 * k), *a);
            }
            write_sum_site(acc, out, i * SITE_STRIDE, nt);
        }
        drain_streams(nt);
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) fn derivative_sum_ii(basis: &EigenBasis, v_q: &[f64], v_r: &[f64], out: &mut [f64]) {
        let n = out.len() / SITE_STRIDE;
        let nt = stream_ok(out, n);
        for i in 0..n {
            prefetch_site(v_q, i + PREFETCH_SITES);
            prefetch_site(v_r, i + PREFETCH_SITES);
            let vq = &v_q[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            let vr = &v_r[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            let le = matvec(&basis.piu, vq);
            let mut acc = matvec(&basis.uinv, vr);
            for (k, a) in acc.iter_mut().enumerate() {
                *a = _mm256_mul_pd(le[k], *a);
            }
            write_sum_site(acc, out, i * SITE_STRIDE, nt);
        }
        drain_streams(nt);
    }

    /// Writes one sumtable site (no scaling rule here — sumtables are
    /// branch-invariant intermediates, not CLAs).
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    fn write_sum_site(acc: [__m256d; NUM_RATES], out: &mut [f64], at: usize, nt: bool) {
        for (k, &a) in acc.iter().enumerate() {
            if nt {
                stream4(out, at + 4 * k, a);
            } else {
                store4(out, at + 4 * k, a);
            }
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) fn derivative_core(
        sumtable: &[f64],
        lambda_rate: &[f64; SITE_STRIDE],
        t: f64,
        weights: &[u32],
    ) -> (f64, f64) {
        let n = weights.len();
        debug_assert_eq!(sumtable.len(), n * SITE_STRIDE);
        let (e, d1, d2) = derivative_exp_tables(lambda_rate, t);
        // The per-branch exponential tables, hoisted into registers
        // once — they are shared by every site.
        let mut ev = [_mm256_setzero_pd(); NUM_RATES];
        let mut d1v = [_mm256_setzero_pd(); NUM_RATES];
        let mut d2v = [_mm256_setzero_pd(); NUM_RATES];
        for k in 0..NUM_RATES {
            ev[k] = load4(&e[..], 4 * k);
            d1v[k] = load4(&d1[..], 4 * k);
            d2v[k] = load4(&d2[..], 4 * k);
        }
        let mut dlnl = 0.0;
        let mut d2lnl = 0.0;
        let mut bl = [0.0f64; SITE_BLOCK];
        let mut bl1 = [0.0f64; SITE_BLOCK];
        let mut bl2 = [0.0f64; SITE_BLOCK];
        let mut i = 0;
        while i < n {
            let len = SITE_BLOCK.min(n - i);
            // Phase 1 (§V-B4): vector reductions per site.
            for bi in 0..len {
                let s = i + bi;
                prefetch_site(sumtable, s + PREFETCH_SITES);
                let sv = &sumtable[s * SITE_STRIDE..(s + 1) * SITE_STRIDE];
                let mut al = _mm256_setzero_pd();
                let mut al1 = _mm256_setzero_pd();
                let mut al2 = _mm256_setzero_pd();
                for k in 0..NUM_RATES {
                    let x = load4(sv, 4 * k);
                    al = _mm256_fmadd_pd(x, ev[k], al);
                    al1 = _mm256_fmadd_pd(x, d1v[k], al1);
                    al2 = _mm256_fmadd_pd(x, d2v[k], al2);
                }
                bl[bi] = hsum(al);
                bl1[bi] = hsum(al1);
                bl2[bi] = hsum(al2);
            }
            // Phase 2: the scalar divisions on the whole block.
            for bi in 0..len {
                let l = positive(bl[bi]);
                let w = weights[i + bi] as f64;
                let r1 = bl1[bi] / l;
                dlnl += w * r1;
                d2lnl += w * (bl2[bi] / l - r1 * r1);
            }
            i += len;
        }
        (dlnl, d2lnl)
    }
}

#[cfg(test)]
mod tests {
    use super::super::KernelKind;
    use super::*;
    use crate::AlignedVec;

    /// Deterministic pseudo-random doubles in `(lo, hi)` (xorshift64*;
    /// no external RNG needed for unit smoke tests).
    fn fill(buf: &mut [f64], seed: u64, lo: f64, hi: f64) {
        let mut s = seed | 1;
        for v in buf.iter_mut() {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            let u = (s.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64;
            *v = lo + u * (hi - lo);
        }
    }

    fn pmat(t: f64) -> FusedPmat {
        use phylo_models::{DiscreteGamma, Gtr, GtrParams, ProbMatrix};
        let g = Gtr::new(GtrParams {
            rates: [1.2, 2.9, 0.8, 1.1, 3.5, 1.0],
            freqs: [0.28, 0.22, 0.21, 0.29],
        });
        let rates = *DiscreteGamma::new(0.7).rates();
        FusedPmat::from_prob(&ProbMatrix::new(g.eigen(), &rates, t))
    }

    #[test]
    fn simd_matches_vector_on_newview_ii_including_scaling() {
        // Values spanning down to 1e-50 force some (not all) sites
        // through the underflow-scaling path.
        for n in [1usize, 7, 8, 9, 31] {
            let mut vl = AlignedVec::zeroed(n * SITE_STRIDE);
            let mut vr = AlignedVec::zeroed(n * SITE_STRIDE);
            fill(&mut vl, 11, 1e-50, 1.0);
            fill(&mut vr, 13, 1e-50, 1.0);
            let scale = vec![1u32; n];
            let (pl, pr) = (pmat(0.23), pmat(0.11));
            let run = |kind: KernelKind| {
                let mut out = AlignedVec::zeroed(n * SITE_STRIDE);
                let mut sc = vec![0u32; n];
                kind.kernels()
                    .newview_ii(&pl, &vl, &scale, &pr, &vr, &scale, &mut out, &mut sc);
                (out, sc)
            };
            let (ov, sv) = run(KernelKind::Vector);
            let (os, ss) = run(KernelKind::Simd);
            assert_eq!(sv, ss, "n={n}: scaling counters must be bit-identical");
            for (a, b) in ov.iter().zip(os.iter()) {
                assert!(
                    (a - b).abs() <= 1e-12 * (1.0 + a.abs()),
                    "n={n}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn streamed_cla_is_readable_immediately_after_the_kernel_returns() {
        // Pins the §V-B5 fence: the kernel streams the CLA and fences,
        // so a plain read-back right here must observe every value.
        let n = 33;
        let mut vl = AlignedVec::zeroed(n * SITE_STRIDE);
        let mut vr = AlignedVec::zeroed(n * SITE_STRIDE);
        fill(&mut vl, 3, 1e-3, 1.0);
        fill(&mut vr, 5, 1e-3, 1.0);
        let scale = vec![0u32; n];
        let (pl, pr) = (pmat(0.4), pmat(0.9));
        let mut out = AlignedVec::zeroed(n * SITE_STRIDE);
        let mut sc = vec![0u32; n];
        KernelKind::Simd
            .kernels()
            .newview_ii(&pl, &vl, &scale, &pr, &vr, &scale, &mut out, &mut sc);
        assert!(out.iter().all(|v| v.is_finite() && *v > 0.0));
        // And the values are the right ones, not just nonzero.
        let mut out_v = AlignedVec::zeroed(n * SITE_STRIDE);
        let mut sc_v = vec![0u32; n];
        KernelKind::Vector
            .kernels()
            .newview_ii(&pl, &vl, &scale, &pr, &vr, &scale, &mut out_v, &mut sc_v);
        for (a, b) in out.iter().zip(out_v.iter()) {
            assert!((a - b).abs() <= 1e-12 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn unaligned_output_falls_back_to_regular_stores() {
        // A deliberately 8-byte-misaligned output view must still be
        // written correctly (release builds take the storeu path; this
        // guards the `stream_ok` gate).
        if !simd_available() || cfg!(debug_assertions) {
            // Debug builds assert the alignment contract instead.
            return;
        }
        let n = 4;
        let mut vl = AlignedVec::zeroed(n * SITE_STRIDE);
        let mut vr = AlignedVec::zeroed(n * SITE_STRIDE);
        fill(&mut vl, 7, 1e-3, 1.0);
        fill(&mut vr, 9, 1e-3, 1.0);
        let scale = vec![0u32; n];
        let (pl, pr) = (pmat(0.2), pmat(0.3));
        let mut raw = AlignedVec::zeroed(n * SITE_STRIDE + 1);
        let mut sc = vec![0u32; n];
        let out = &mut raw[1..];
        KernelKind::Simd
            .kernels()
            .newview_ii(&pl, &vl, &scale, &pr, &vr, &scale, out, &mut sc);
        let mut out_v = AlignedVec::zeroed(n * SITE_STRIDE);
        let mut sc_v = vec![0u32; n];
        KernelKind::Vector
            .kernels()
            .newview_ii(&pl, &vl, &scale, &pr, &vr, &scale, &mut out_v, &mut sc_v);
        for (a, b) in raw[1..].iter().zip(out_v.iter()) {
            assert!((a - b).abs() <= 1e-12 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn availability_is_consistent_with_dispatch() {
        if simd_available() {
            assert_eq!(KernelKind::Simd.resolve(), KernelKind::Simd);
        } else {
            assert_eq!(KernelKind::Simd.resolve(), KernelKind::Vector);
        }
    }
}
