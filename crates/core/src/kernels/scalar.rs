//! Reference (scalar) kernel implementations.
//!
//! Deliberately written the way the pre-port C code computes: nested
//! loops over rate categories and states, per-(k, a) dot products over
//! child states, no fused multiply-add, no layout tricks. This is the
//! baseline the paper's §V optimizations are measured against, and the
//! oracle the vector variant is tested against.

use super::{derivative_exp_tables, positive, Kernels};
use crate::layout::{EigenBasis, FusedPmat, Lut16x16};
use crate::scaling::{scale_site, LN_SCALE};
use crate::{NUM_RATES, NUM_STATES, SITE_STRIDE};

/// Scalar kernel set.
pub struct ScalarKernels;

/// P_k[a][b] from the fused layout (the scalar code un-fuses it).
#[inline]
fn p_entry(p: &FusedPmat, k: usize, a: usize, b: usize) -> f64 {
    p.cols[b][4 * k + a]
}

impl Kernels for ScalarKernels {
    fn newview_tt(
        &self,
        lut_l: &Lut16x16,
        lut_r: &Lut16x16,
        codes_l: &[u8],
        codes_r: &[u8],
        out: &mut [f64],
        scale_out: &mut [u32],
    ) {
        let n = scale_out.len();
        debug_assert_eq!(out.len(), n * SITE_STRIDE);
        for i in 0..n {
            let l = &lut_l.rows[codes_l[i] as usize];
            let r = &lut_r.rows[codes_r[i] as usize];
            let site = &mut out[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            for m in 0..SITE_STRIDE {
                site[m] = l[m] * r[m];
            }
            scale_out[i] = scale_site(site);
        }
    }

    fn newview_ti(
        &self,
        lut_l: &Lut16x16,
        codes_l: &[u8],
        p_r: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        out: &mut [f64],
        scale_out: &mut [u32],
    ) {
        let n = scale_out.len();
        for i in 0..n {
            let l = &lut_l.rows[codes_l[i] as usize];
            let vr = &v_r[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            let site = &mut out[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            for k in 0..NUM_RATES {
                for a in 0..NUM_STATES {
                    let mut r = 0.0;
                    for b in 0..NUM_STATES {
                        r += p_entry(p_r, k, a, b) * vr[4 * k + b];
                    }
                    site[4 * k + a] = l[4 * k + a] * r;
                }
            }
            scale_out[i] = scale_r[i] + scale_site(site);
        }
    }

    fn newview_ii(
        &self,
        p_l: &FusedPmat,
        v_l: &[f64],
        scale_l: &[u32],
        p_r: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        out: &mut [f64],
        scale_out: &mut [u32],
    ) {
        let n = scale_out.len();
        for i in 0..n {
            let vl = &v_l[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            let vr = &v_r[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            let site = &mut out[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            for k in 0..NUM_RATES {
                for a in 0..NUM_STATES {
                    let mut l = 0.0;
                    let mut r = 0.0;
                    for b in 0..NUM_STATES {
                        l += p_entry(p_l, k, a, b) * vl[4 * k + b];
                        r += p_entry(p_r, k, a, b) * vr[4 * k + b];
                    }
                    site[4 * k + a] = l * r;
                }
            }
            scale_out[i] = scale_l[i] + scale_r[i] + scale_site(site);
        }
    }

    fn evaluate_ti(
        &self,
        pi_tip: &Lut16x16,
        codes_q: &[u8],
        p: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        weights: &[u32],
    ) -> f64 {
        let n = weights.len();
        let mut log_l = 0.0;
        for i in 0..n {
            let piq = &pi_tip.rows[codes_q[i] as usize];
            let vr = &v_r[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            let mut site = 0.0;
            for k in 0..NUM_RATES {
                for a in 0..NUM_STATES {
                    let mut x = 0.0;
                    for b in 0..NUM_STATES {
                        x += p_entry(p, k, a, b) * vr[4 * k + b];
                    }
                    site += piq[4 * k + a] * x;
                }
            }
            let w = weights[i] as f64;
            log_l += w * (positive(site).ln() - scale_r[i] as f64 * LN_SCALE);
        }
        log_l
    }

    fn evaluate_ii(
        &self,
        pi_w: &[f64; SITE_STRIDE],
        v_q: &[f64],
        scale_q: &[u32],
        p: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        weights: &[u32],
    ) -> f64 {
        let n = weights.len();
        let mut log_l = 0.0;
        for i in 0..n {
            let vq = &v_q[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            let vr = &v_r[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            let mut site = 0.0;
            for k in 0..NUM_RATES {
                for a in 0..NUM_STATES {
                    let mut x = 0.0;
                    for b in 0..NUM_STATES {
                        x += p_entry(p, k, a, b) * vr[4 * k + b];
                    }
                    site += pi_w[4 * k + a] * vq[4 * k + a] * x;
                }
            }
            let w = weights[i] as f64;
            let sc = (scale_q[i] + scale_r[i]) as f64;
            log_l += w * (positive(site).ln() - sc * LN_SCALE);
        }
        log_l
    }

    fn derivative_sum_ti(&self, basis: &EigenBasis, codes_q: &[u8], v_r: &[f64], out: &mut [f64]) {
        let n = out.len() / SITE_STRIDE;
        for i in 0..n {
            let le = &basis.tip_left.rows[codes_q[i] as usize];
            let vr = &v_r[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            let site = &mut out[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            for k in 0..NUM_RATES {
                for j in 0..NUM_STATES {
                    let m = 4 * k + j;
                    let mut re = 0.0;
                    for b in 0..NUM_STATES {
                        re += basis.uinv[b][m] * vr[4 * k + b];
                    }
                    site[m] = le[m] * re;
                }
            }
        }
    }

    fn derivative_sum_ii(&self, basis: &EigenBasis, v_q: &[f64], v_r: &[f64], out: &mut [f64]) {
        let n = out.len() / SITE_STRIDE;
        for i in 0..n {
            let vq = &v_q[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            let vr = &v_r[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            let site = &mut out[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            for k in 0..NUM_RATES {
                for j in 0..NUM_STATES {
                    let m = 4 * k + j;
                    let mut le = 0.0;
                    let mut re = 0.0;
                    for ab in 0..NUM_STATES {
                        le += basis.piu[ab][m] * vq[4 * k + ab];
                        re += basis.uinv[ab][m] * vr[4 * k + ab];
                    }
                    site[m] = le * re;
                }
            }
        }
    }

    fn derivative_core(
        &self,
        sumtable: &[f64],
        lambda_rate: &[f64; SITE_STRIDE],
        t: f64,
        weights: &[u32],
    ) -> (f64, f64) {
        let n = weights.len();
        debug_assert_eq!(sumtable.len(), n * SITE_STRIDE);
        let (e, d1, d2) = derivative_exp_tables(lambda_rate, t);
        let mut dlnl = 0.0;
        let mut d2lnl = 0.0;
        for i in 0..n {
            let s = &sumtable[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            let mut l = 0.0;
            let mut l1 = 0.0;
            let mut l2 = 0.0;
            for m in 0..SITE_STRIDE {
                l += s[m] * e[m];
                l1 += s[m] * d1[m];
                l2 += s[m] * d2[m];
            }
            let l = positive(l);
            let w = weights[i] as f64;
            let ratio1 = l1 / l;
            dlnl += w * ratio1;
            d2lnl += w * (l2 / l - ratio1 * ratio1);
        }
        (dlnl, d2lnl)
    }
}
