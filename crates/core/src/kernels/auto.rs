//! Size- and kernel-aware runtime dispatch for [`crate::KernelKind::Auto`].
//!
//! BENCH_5 showed that a single "best backend" does not exist: the
//! explicit-SIMD backend wins by up to 4.7× on the large FMA-bound
//! kernels but *loses* to the portable backends on `newview_tt` (a pure
//! 16-wide LUT product with no matrix work to amortize the staging
//! round-trip) and, before the NT-store size gate, on small inputs of
//! the streamed kernels. `AutoKernels` therefore routes every call to
//! the backend measured fastest for that kernel shape and input size,
//! instead of resolving `Auto` to one backend for the whole engine.
//!
//! Correctness note: all backends share the underflow-scaling rule
//! (`crate::scaling::scale_site`) and produce bit-identical scaling
//! counters, so routing different kernels of one likelihood evaluation
//! to different backends cannot change any counter or downstream
//! scaling decision; log-likelihoods agree to the usual ≤1e-12
//! cross-backend tolerance.
//!
//! The crossover constants below are calibrated against the plf
//! microbench on the reference host (see BENCH_6.json): they only steer
//! performance, never correctness, so a host where the true crossover
//! differs still computes exact results.

use super::{scalar, simd, vector, Kernels};
use crate::layout::{EigenBasis, FusedPmat, Lut16x16};
use crate::SITE_STRIDE;

/// The size/kernel-aware dispatcher behind [`crate::KernelKind::Auto`]
/// on SIMD-capable hosts (on other hosts `Auto` resolves straight to
/// the vector backend and this type is never dispatched to).
pub struct AutoKernels;

/// Below this many sites `newview_ti` runs portably: the per-call
/// staging overhead of the intrinsics path only amortizes once the
/// input stops fitting hot in L1/L2 (BENCH_5: Simd 0.87× scalar at 1k
/// patterns, >1.9× from 10k up).
const SIMD_MIN_NEWVIEW_TI: usize = 4096;

/// `newview_tt` is a pure per-site 16-wide LUT product — no matvec for
/// the FMA chains to win back the staging round-trip — so the portable
/// backend stays ahead at every measured size (BENCH_5: Simd 0.63–0.99×
/// scalar at 1k–100k). Routed portably at all sizes.
const SIMD_MIN_NEWVIEW_TT: usize = usize::MAX;

#[inline]
fn simd_or_vector(n_sites: usize, simd_min: usize) -> &'static dyn Kernels {
    if n_sites >= simd_min && simd::simd_available() {
        &simd::SimdKernels
    } else {
        &vector::VectorKernels
    }
}

impl Kernels for AutoKernels {
    fn newview_tt(
        &self,
        lut_l: &Lut16x16,
        lut_r: &Lut16x16,
        codes_l: &[u8],
        codes_r: &[u8],
        out: &mut [f64],
        scale_out: &mut [u32],
    ) {
        simd_or_vector(scale_out.len(), SIMD_MIN_NEWVIEW_TT)
            .newview_tt(lut_l, lut_r, codes_l, codes_r, out, scale_out)
    }

    fn newview_ti(
        &self,
        lut_l: &Lut16x16,
        codes_l: &[u8],
        p_r: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        out: &mut [f64],
        scale_out: &mut [u32],
    ) {
        simd_or_vector(scale_out.len(), SIMD_MIN_NEWVIEW_TI)
            .newview_ti(lut_l, codes_l, p_r, v_r, scale_r, out, scale_out)
    }

    fn newview_ii(
        &self,
        p_l: &FusedPmat,
        v_l: &[f64],
        scale_l: &[u32],
        p_r: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        out: &mut [f64],
        scale_out: &mut [u32],
    ) {
        simd_or_vector(scale_out.len(), 0)
            .newview_ii(p_l, v_l, scale_l, p_r, v_r, scale_r, out, scale_out)
    }

    fn evaluate_ti(
        &self,
        pi_tip: &Lut16x16,
        codes_q: &[u8],
        p: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        weights: &[u32],
    ) -> f64 {
        simd_or_vector(weights.len(), 0).evaluate_ti(pi_tip, codes_q, p, v_r, scale_r, weights)
    }

    fn evaluate_ii(
        &self,
        pi_w: &[f64; SITE_STRIDE],
        v_q: &[f64],
        scale_q: &[u32],
        p: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        weights: &[u32],
    ) -> f64 {
        simd_or_vector(weights.len(), 0).evaluate_ii(pi_w, v_q, scale_q, p, v_r, scale_r, weights)
    }

    fn derivative_sum_ti(&self, basis: &EigenBasis, codes_q: &[u8], v_r: &[f64], out: &mut [f64]) {
        simd_or_vector(out.len() / SITE_STRIDE, 0).derivative_sum_ti(basis, codes_q, v_r, out)
    }

    fn derivative_sum_ii(&self, basis: &EigenBasis, v_q: &[f64], v_r: &[f64], out: &mut [f64]) {
        simd_or_vector(out.len() / SITE_STRIDE, 0).derivative_sum_ii(basis, v_q, v_r, out)
    }

    fn derivative_core(
        &self,
        sumtable: &[f64],
        lambda_rate: &[f64; SITE_STRIDE],
        t: f64,
        weights: &[u32],
    ) -> (f64, f64) {
        simd_or_vector(weights.len(), 0).derivative_core(sumtable, lambda_rate, t, weights)
    }
}

// Referenced so the scalar backend stays reachable from the dispatch
// module even while no crossover currently routes to it; keeping the
// import alive documents that `scalar` is a legal routing target.
#[allow(dead_code)]
const SCALAR_REFERENCE: &scalar::ScalarKernels = &scalar::ScalarKernels;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaling::SCALE_THRESHOLD;
    use crate::{AlignedVec, KernelKind};

    /// Auto must agree bit-for-bit on scaling counters with every
    /// concrete backend at sizes straddling each crossover constant.
    #[test]
    fn auto_matches_concrete_backends_across_crossovers() {
        use phylo_models::{DiscreteGamma, Gtr, GtrParams, ProbMatrix};
        let g = Gtr::new(GtrParams {
            rates: [1.0, 2.0, 1.0, 1.0, 2.0, 1.0],
            freqs: [0.25; 4],
        });
        let rates = *DiscreteGamma::new(0.5).rates();
        let p = FusedPmat::from_prob(&ProbMatrix::new(g.eigen(), &rates, 0.1));
        for n in [1usize, 7, SIMD_MIN_NEWVIEW_TI - 1, SIMD_MIN_NEWVIEW_TI + 1] {
            let mut v = AlignedVec::zeroed(n * SITE_STRIDE);
            for (i, x) in v.iter_mut().enumerate() {
                // Straddle the scaling threshold so some sites rescale.
                *x = if i % 48 == 0 {
                    SCALE_THRESHOLD / 2.0
                } else {
                    0.5 + (i % 7) as f64 * 0.05
                };
            }
            let scale = vec![2u32; n];
            let run = |k: &dyn Kernels| {
                let mut out = AlignedVec::zeroed(n * SITE_STRIDE);
                let mut sc = vec![0u32; n];
                k.newview_ii(&p, &v, &scale, &p, &v, &scale, &mut out, &mut sc);
                (out, sc)
            };
            let (oa, sa) = run(&AutoKernels);
            for kind in [KernelKind::Scalar, KernelKind::Vector, KernelKind::Simd] {
                let (ob, sb) = run(kind.kernels());
                assert_eq!(sa, sb, "n={n} {kind}: scaling counters differ");
                for (a, b) in oa.iter().zip(ob.iter()) {
                    assert!((a - b).abs() <= 1e-12 * (1.0 + a.abs()), "n={n} {kind}");
                }
            }
        }
    }
}
