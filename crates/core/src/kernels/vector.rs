//! Vectorized kernel implementations (§V-B of the paper).
//!
//! Portable Rust rendering of the paper's MIC optimizations:
//!
//! * §V-B3 *re-organized loops* — the four per-category 1×4 · 4×4
//!   products are executed simultaneously as one fused 16-wide loop
//!   (`fused_matvec`), expressed with fixed-size arrays and a
//!   target-gated [`fma`] helper so LLVM lowers it to broadcast +
//!   mul/add vector code (FMA where the target has it);
//! * §V-B2 *memory alignment* — all CLA inputs come from 64-byte
//!   aligned [`crate::AlignedVec`] storage with a 128-byte site stride;
//! * §V-B4 *site blocking* — `evaluate` and `derivativeCore` process
//!   sites in groups of [`crate::SITE_BLOCK`] so the per-site scalar
//!   tail (log, divisions) runs over 8-wide blocks;
//! * §V-B5 *streaming stores* — output CLAs and sumtables are written
//!   exactly once per site, never read back (store-only traffic).

use super::{derivative_exp_tables, positive, Kernels};
use crate::layout::{EigenBasis, FusedPmat, Lut16x16};
use crate::scaling::{scale_site, LN_SCALE};
use crate::{NUM_RATES, NUM_STATES, SITE_BLOCK, SITE_STRIDE};

/// Vectorized kernel set.
pub struct VectorKernels;

/// Fused multiply-add that is only contracted to an FMA instruction when
/// the target actually has one. `f64::mul_add` is an *exact* fused
/// operation: on targets without hardware FMA it lowers to a libm
/// `fma()` call, which costs ~10× a mul+add (the BENCH_5 regression).
/// Plain `a * b + c` lets LLVM emit mul+add everywhere and still fuse
/// opportunistically under `-C target-feature=+fma`.
#[inline(always)]
fn fma(a: f64, b: f64, c: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        a * b + c
    }
}

/// One fused 16-wide matrix application: `acc[4k + a] = Σ_b
/// P_k[a][b] · v[4k + b]`, computed as four broadcast-FMA passes over
/// the fused columns.
#[inline(always)]
fn fused_matvec(p: &FusedPmat, v: &[f64]) -> [f64; SITE_STRIDE] {
    let mut acc = [0.0; SITE_STRIDE];
    for b in 0..NUM_STATES {
        let col = &p.cols[b];
        for k in 0..NUM_RATES {
            let x = v[4 * k + b];
            for a in 0..NUM_STATES {
                let m = 4 * k + a;
                acc[m] = fma(col[m], x, acc[m]);
            }
        }
    }
    acc
}

/// Fused eigen-basis projection: `acc[4k + j] = Σ_s table[s][4k + j] ·
/// v[4k + s]`.
#[inline(always)]
fn fused_project(table: &[[f64; SITE_STRIDE]; NUM_STATES], v: &[f64]) -> [f64; SITE_STRIDE] {
    let mut acc = [0.0; SITE_STRIDE];
    for s in 0..NUM_STATES {
        let col = &table[s];
        for k in 0..NUM_RATES {
            let x = v[4 * k + s];
            for j in 0..NUM_STATES {
                let m = 4 * k + j;
                acc[m] = fma(col[m], x, acc[m]);
            }
        }
    }
    acc
}

impl Kernels for VectorKernels {
    fn newview_tt(
        &self,
        lut_l: &Lut16x16,
        lut_r: &Lut16x16,
        codes_l: &[u8],
        codes_r: &[u8],
        out: &mut [f64],
        scale_out: &mut [u32],
    ) {
        for (i, site) in out.chunks_exact_mut(SITE_STRIDE).enumerate() {
            let l = &lut_l.rows[codes_l[i] as usize];
            let r = &lut_r.rows[codes_r[i] as usize];
            // The Figure 2 loop: one fused 16-wide elementwise product.
            for m in 0..SITE_STRIDE {
                site[m] = l[m] * r[m];
            }
            scale_out[i] = scale_site(site);
        }
    }

    fn newview_ti(
        &self,
        lut_l: &Lut16x16,
        codes_l: &[u8],
        p_r: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        out: &mut [f64],
        scale_out: &mut [u32],
    ) {
        for (i, site) in out.chunks_exact_mut(SITE_STRIDE).enumerate() {
            let l = &lut_l.rows[codes_l[i] as usize];
            let vr = &v_r[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            let r = fused_matvec(p_r, vr);
            for m in 0..SITE_STRIDE {
                site[m] = l[m] * r[m];
            }
            scale_out[i] = scale_r[i] + scale_site(site);
        }
    }

    fn newview_ii(
        &self,
        p_l: &FusedPmat,
        v_l: &[f64],
        scale_l: &[u32],
        p_r: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        out: &mut [f64],
        scale_out: &mut [u32],
    ) {
        for (i, site) in out.chunks_exact_mut(SITE_STRIDE).enumerate() {
            let vl = &v_l[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            let vr = &v_r[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            let l = fused_matvec(p_l, vl);
            let r = fused_matvec(p_r, vr);
            for m in 0..SITE_STRIDE {
                site[m] = l[m] * r[m];
            }
            scale_out[i] = scale_l[i] + scale_r[i] + scale_site(site);
        }
    }

    fn evaluate_ti(
        &self,
        pi_tip: &Lut16x16,
        codes_q: &[u8],
        p: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        weights: &[u32],
    ) -> f64 {
        let n = weights.len();
        let mut log_l = 0.0;
        let mut block = [0.0f64; SITE_BLOCK];
        let mut i = 0;
        while i < n {
            let len = SITE_BLOCK.min(n - i);
            // Phase 1 (vectorizable): per-site 16-wide reductions.
            for (bi, slot) in block[..len].iter_mut().enumerate() {
                let s = i + bi;
                let piq = &pi_tip.rows[codes_q[s] as usize];
                let vr = &v_r[s * SITE_STRIDE..(s + 1) * SITE_STRIDE];
                let x = fused_matvec(p, vr);
                let mut site = 0.0;
                for m in 0..SITE_STRIDE {
                    site = fma(piq[m], x[m], site);
                }
                *slot = site;
            }
            // Phase 2 (site-blocked scalar tail): logs + accumulation.
            for (bi, &site) in block[..len].iter().enumerate() {
                let s = i + bi;
                let w = weights[s] as f64;
                log_l += w * (positive(site).ln() - scale_r[s] as f64 * LN_SCALE);
            }
            i += len;
        }
        log_l
    }

    fn evaluate_ii(
        &self,
        pi_w: &[f64; SITE_STRIDE],
        v_q: &[f64],
        scale_q: &[u32],
        p: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        weights: &[u32],
    ) -> f64 {
        let n = weights.len();
        let mut log_l = 0.0;
        let mut block = [0.0f64; SITE_BLOCK];
        let mut i = 0;
        while i < n {
            let len = SITE_BLOCK.min(n - i);
            for (bi, slot) in block[..len].iter_mut().enumerate() {
                let s = i + bi;
                let vq = &v_q[s * SITE_STRIDE..(s + 1) * SITE_STRIDE];
                let vr = &v_r[s * SITE_STRIDE..(s + 1) * SITE_STRIDE];
                let x = fused_matvec(p, vr);
                let mut site = 0.0;
                for m in 0..SITE_STRIDE {
                    site = fma(pi_w[m] * vq[m], x[m], site);
                }
                *slot = site;
            }
            for (bi, &site) in block[..len].iter().enumerate() {
                let s = i + bi;
                let w = weights[s] as f64;
                let sc = (scale_q[s] + scale_r[s]) as f64;
                log_l += w * (positive(site).ln() - sc * LN_SCALE);
            }
            i += len;
        }
        log_l
    }

    fn derivative_sum_ti(&self, basis: &EigenBasis, codes_q: &[u8], v_r: &[f64], out: &mut [f64]) {
        for (i, site) in out.chunks_exact_mut(SITE_STRIDE).enumerate() {
            let le = &basis.tip_left.rows[codes_q[i] as usize];
            let vr = &v_r[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            let re = fused_project(&basis.uinv, vr);
            for m in 0..SITE_STRIDE {
                site[m] = le[m] * re[m];
            }
        }
    }

    fn derivative_sum_ii(&self, basis: &EigenBasis, v_q: &[f64], v_r: &[f64], out: &mut [f64]) {
        for (i, site) in out.chunks_exact_mut(SITE_STRIDE).enumerate() {
            let vq = &v_q[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            let vr = &v_r[i * SITE_STRIDE..(i + 1) * SITE_STRIDE];
            let le = fused_project(&basis.piu, vq);
            let re = fused_project(&basis.uinv, vr);
            for m in 0..SITE_STRIDE {
                site[m] = le[m] * re[m];
            }
        }
    }

    fn derivative_core(
        &self,
        sumtable: &[f64],
        lambda_rate: &[f64; SITE_STRIDE],
        t: f64,
        weights: &[u32],
    ) -> (f64, f64) {
        let n = weights.len();
        debug_assert_eq!(sumtable.len(), n * SITE_STRIDE);
        let (e, d1, d2) = derivative_exp_tables(lambda_rate, t);
        let mut dlnl = 0.0;
        let mut d2lnl = 0.0;
        let mut bl = [0.0f64; SITE_BLOCK];
        let mut bl1 = [0.0f64; SITE_BLOCK];
        let mut bl2 = [0.0f64; SITE_BLOCK];
        let mut i = 0;
        while i < n {
            let len = SITE_BLOCK.min(n - i);
            // Phase 1 (§V-B4): vectorizable 16-wide preprocessing per
            // site within the block.
            for bi in 0..len {
                let s = &sumtable[(i + bi) * SITE_STRIDE..(i + bi + 1) * SITE_STRIDE];
                let mut l = 0.0;
                let mut l1 = 0.0;
                let mut l2 = 0.0;
                for m in 0..SITE_STRIDE {
                    l = fma(s[m], e[m], l);
                    l1 = fma(s[m], d1[m], l1);
                    l2 = fma(s[m], d2[m], l2);
                }
                bl[bi] = l;
                bl1[bi] = l1;
                bl2[bi] = l2;
            }
            // Phase 2: the formerly scalar operations, executed on the
            // whole 8-site block at once.
            for bi in 0..len {
                let l = positive(bl[bi]);
                let w = weights[i + bi] as f64;
                let r1 = bl1[bi] / l;
                dlnl += w * r1;
                d2lnl += w * (bl2[bi] / l - r1 * r1);
            }
            i += len;
        }
        (dlnl, d2lnl)
    }
}

/// CI tripwire, compiled only under the `seed-hotpath-bug` feature
/// (see Cargo.toml): a deliberately impure kernel entry point the
/// analyzer must flag. The name matches a PLF entry point so the
/// purity rule roots reachability here; the raw `mul_add` outside the
/// `fma` helper reproduces the libm-collapse shape the fpdet rule
/// pins; the `unwrap` and unchecked indexing seed the panic/index
/// categories. `cargo xtask lint --cfg-feature seed-hotpath-bug`
/// must fail on this fn — CI asserts that it does.
#[cfg(feature = "seed-hotpath-bug")]
pub fn derivative_core(sumtable: &[f64], lambda: &[f64], t: f64) -> f64 {
    let scale = lambda.first().copied().unwrap() * t;
    let mut acc = 0.0;
    for i in 0..sumtable.len() {
        acc = sumtable[i].mul_add(scale, acc);
    }
    acc
}
