//! Analytical per-kernel cost model (roofline accounting).
//!
//! The paper argues in hardware-efficiency terms — achieved GFLOP/s
//! and memory bandwidth relative to the machine's peaks — so every
//! kernel invocation here reports how many floating-point operations
//! it performs and how many bytes it streams, derived from the loop
//! structure of the reference implementations in
//! [`crate::kernels::scalar`]. Combined with the wall-clock timings in
//! [`crate::instrument::KernelStats`] this yields achieved GFLOP/s,
//! GB/s and arithmetic intensity per kernel without any measurement
//! hooks on the hot path, and — against a calibrated host roofline
//! (the `plf-prof` crate) — a % -of-peak figure per backend.
//!
//! # Counting conventions
//!
//! The model is analytical, not measured; the conventions are chosen
//! so two people counting by hand arrive at the same numbers:
//!
//! * every floating-point add, sub, mul and div counts as **1 flop**;
//!   `ln` also counts as 1 flop (it is one invocation site, however
//!   the libm polynomial expands);
//! * integer arithmetic, comparisons, and the rare rescale
//!   multiplications inside `scale_site` (triggered on underflow
//!   only) count as **0 flops**;
//! * bytes count the **per-site streaming traffic** — CLA value
//!   vectors (16 doubles = 128 B/site), scale vectors (4 B/site), tip
//!   code arrays (1 B/site), site weights (4 B/site) and the
//!   sumtable — assuming each is touched once per invocation;
//! * O(1)-per-call operands (the fused P matrix, tip LUTs, eigenbasis,
//!   the derivative exp tables) are excluded: they stay cache-resident
//!   across the site loop and contribute no per-site traffic;
//! * write-allocate traffic on output buffers is not modeled (the
//!   vector/simd backends stream stores past large outputs anyway).
//!
//! The derived per-site costs are pinned by unit tests against
//! hand-computed values, so any change to a kernel's loop structure
//! must update both in the same commit.

use crate::instrument::KernelId;
use crate::metrics::{counter, Counter};
use crate::{NUM_RATES, NUM_STATES};
use std::sync::OnceLock;

/// The eight concrete PLF kernel entry points ([`crate::kernels::Kernels`]
/// trait methods). [`KernelId`] groups them into the paper's four
/// kernels; this enum distinguishes the tip/inner variants, which have
/// different arithmetic and traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelOp {
    /// `newview` with two tip children (LUT product).
    NewviewTt,
    /// `newview` with one tip and one inner child.
    NewviewTi,
    /// `newview` with two inner children.
    NewviewIi,
    /// `evaluate` with a tip on the virtual-root edge.
    EvaluateTi,
    /// `evaluate` with two inner endpoints.
    EvaluateIi,
    /// `derivativeSum` with a tip endpoint.
    DerivativeSumTi,
    /// `derivativeSum` with two inner endpoints.
    DerivativeSumIi,
    /// Newton-step derivative accumulation.
    DerivativeCore,
}

impl KernelOp {
    /// All ops, grouped in paper kernel order.
    pub const ALL: [KernelOp; 8] = [
        KernelOp::NewviewTt,
        KernelOp::NewviewTi,
        KernelOp::NewviewIi,
        KernelOp::EvaluateTi,
        KernelOp::EvaluateIi,
        KernelOp::DerivativeSumTi,
        KernelOp::DerivativeSumIi,
        KernelOp::DerivativeCore,
    ];

    /// Stable name, shared with `plf-microbench` result rows.
    pub fn name(self) -> &'static str {
        match self {
            KernelOp::NewviewTt => "newview_tt",
            KernelOp::NewviewTi => "newview_ti",
            KernelOp::NewviewIi => "newview_ii",
            KernelOp::EvaluateTi => "evaluate_ti",
            KernelOp::EvaluateIi => "evaluate_ii",
            KernelOp::DerivativeSumTi => "derivative_sum_ti",
            KernelOp::DerivativeSumIi => "derivative_sum_ii",
            KernelOp::DerivativeCore => "derivative_core",
        }
    }

    /// Inverse of [`KernelOp::name`].
    pub fn from_name(name: &str) -> Option<KernelOp> {
        KernelOp::ALL.into_iter().find(|op| op.name() == name)
    }

    /// The paper kernel this op belongs to.
    pub fn kernel_id(self) -> KernelId {
        match self {
            KernelOp::NewviewTt | KernelOp::NewviewTi | KernelOp::NewviewIi => KernelId::Newview,
            KernelOp::EvaluateTi | KernelOp::EvaluateIi => KernelId::Evaluate,
            KernelOp::DerivativeSumTi | KernelOp::DerivativeSumIi => KernelId::DerivativeSum,
            KernelOp::DerivativeCore => KernelId::DerivativeCore,
        }
    }

    /// Dense index for per-op arrays (order of [`KernelOp::ALL`]).
    pub fn index(self) -> usize {
        match self {
            KernelOp::NewviewTt => 0,
            KernelOp::NewviewTi => 1,
            KernelOp::NewviewIi => 2,
            KernelOp::EvaluateTi => 3,
            KernelOp::EvaluateIi => 4,
            KernelOp::DerivativeSumTi => 5,
            KernelOp::DerivativeSumIi => 6,
            KernelOp::DerivativeCore => 7,
        }
    }

    /// Analytical cost of one invocation over `sites` pattern-sites
    /// (uncompressed path; DNA states and the default rate count).
    pub fn cost(self, sites: u64) -> KernelCost {
        self.per_site_for(NUM_STATES as u64, NUM_RATES as u64)
            .scaled(sites)
    }

    /// Per-site cost for `states` states and `rates` rate categories.
    ///
    /// The site stride is `states * rates` doubles; tip codes stay one
    /// byte and scale counters four. Derived symbolically from the
    /// reference loops so the DNA-4 numbers used everywhere else fall
    /// out of the same formulas the tests pin.
    pub fn per_site_for(self, states: u64, rates: u64) -> KernelCost {
        let w = states * rates; // doubles per site
        let vb = 8 * w; // CLA value bytes per site
        let sb = 4; // scale-counter bytes per site
        let cb = 1; // tip-code bytes per site
        let wb = 4; // site-weight bytes per site
                    // Per-(rate, state) inner products over child states: a dot
                    // product of length `states` is `2*states` flops (mul + add,
                    // accumulator initialized to zero).
        let dot = 2 * states;
        // Per-site log-likelihood tail of the evaluate kernels:
        // ln + (scale * LN_SCALE) mul + sub + weight mul + accumulate.
        let eval_tail = 5;
        match self {
            // One mul per entry of the site vector.
            KernelOp::NewviewTt => KernelCost {
                flops: w,
                bytes_read: 2 * cb,
                bytes_written: vb + sb,
            },
            KernelOp::NewviewTi => KernelCost {
                flops: rates * states * (dot + 1),
                bytes_read: cb + vb + sb,
                bytes_written: vb + sb,
            },
            KernelOp::NewviewIi => KernelCost {
                flops: rates * states * (2 * dot + 1),
                bytes_read: 2 * (vb + sb),
                bytes_written: vb + sb,
            },
            KernelOp::EvaluateTi => KernelCost {
                flops: rates * states * (dot + 2) + eval_tail,
                bytes_read: cb + vb + sb + wb,
                bytes_written: 0,
            },
            KernelOp::EvaluateIi => KernelCost {
                flops: rates * states * (dot + 3) + eval_tail,
                bytes_read: 2 * (vb + sb) + wb,
                bytes_written: 0,
            },
            KernelOp::DerivativeSumTi => KernelCost {
                flops: rates * states * (dot + 1),
                bytes_read: cb + vb,
                bytes_written: vb,
            },
            KernelOp::DerivativeSumIi => KernelCost {
                flops: rates * states * (2 * dot + 1),
                bytes_read: 2 * vb,
                bytes_written: vb,
            },
            // Three fused dot products against the exp tables plus the
            // per-site ratio tail (2 div, 1 mul, 1 sub, 2 weight muls,
            // 2 accumulates).
            KernelOp::DerivativeCore => KernelCost {
                flops: 6 * w + 8,
                bytes_read: vb + wb,
                bytes_written: 0,
            },
        }
    }
}

/// Flops and streamed bytes of one (or `sites`-many) kernel
/// invocations under the conventions documented at module level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCost {
    /// Floating-point operations.
    pub flops: u64,
    /// Bytes read from per-site streaming operands.
    pub bytes_read: u64,
    /// Bytes written to per-site streaming outputs.
    pub bytes_written: u64,
}

impl KernelCost {
    /// Total streamed bytes (read + written).
    pub fn bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Arithmetic intensity in flops per streamed byte (0 when no
    /// bytes move).
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.bytes() == 0 {
            0.0
        } else {
            self.flops as f64 / self.bytes() as f64
        }
    }

    /// Cost scaled to `sites` pattern-sites.
    pub fn scaled(&self, sites: u64) -> KernelCost {
        KernelCost {
            flops: self.flops * sites,
            bytes_read: self.bytes_read * sites,
            bytes_written: self.bytes_written * sites,
        }
    }

    /// Adds another cost into this one (saturating; these feed
    /// long-running accumulators).
    pub fn accumulate(&mut self, other: &KernelCost) {
        self.flops = self.flops.saturating_add(other.flops);
        self.bytes_read = self.bytes_read.saturating_add(other.bytes_read);
        self.bytes_written = self.bytes_written.saturating_add(other.bytes_written);
    }
}

/// Cost of the site-repeat-compressed `newview` path
/// ([`crate::repeats`]): the kernel runs over `classes`
/// representatives, then the result is expanded by copy to all
/// `sites`. The expansion reads the per-site class index (4 B), the
/// compact class result, and writes the full-width output; its copies
/// are pure data movement, so flops are unchanged.
pub fn newview_compressed(op: KernelOp, sites: u64, classes: u64) -> KernelCost {
    debug_assert!(matches!(
        op,
        KernelOp::NewviewTt | KernelOp::NewviewTi | KernelOp::NewviewIi
    ));
    let per_site = 8 * (NUM_STATES * NUM_RATES) as u64 + 4; // values + scale
    let base = op.cost(classes);
    KernelCost {
        flops: base.flops,
        bytes_read: base.bytes_read + 4 * sites + per_site * classes,
        bytes_written: base.bytes_written + per_site * sites,
    }
}

/// Process-wide roofline accumulators in the metrics registry
/// (`plf.cost.*`), bumped once per kernel invocation alongside the
/// per-engine [`crate::instrument::KernelStats`] aggregation.
struct CostCounters {
    flops: Counter,
    bytes_read: Counter,
    bytes_written: Counter,
}

fn cost_counters() -> &'static CostCounters {
    static COUNTERS: OnceLock<CostCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| CostCounters {
        flops: counter("plf.cost.flops"),
        bytes_read: counter("plf.cost.bytes_read"),
        bytes_written: counter("plf.cost.bytes_written"),
    })
}

/// Accumulates one invocation's cost into the global metrics registry.
#[inline]
pub fn record_global(cost: &KernelCost) {
    let c = cost_counters();
    c.flops.add(cost.flops);
    c.bytes_read.add(cost.bytes_read);
    c.bytes_written.add(cost.bytes_written);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-computed per-site pin for `newview_ii` (see
    /// `kernels/scalar.rs`): per (rate k, state a) the site loop runs
    /// two length-4 dot products (2 × 8 flops) plus the `l * r`
    /// product, over 16 (k, a) pairs: 16 × 17 = 272 flops. Traffic:
    /// reads both children's values + scales (2 × 132 B), writes the
    /// output values + scale (132 B).
    #[test]
    fn newview_ii_pinned_by_hand() {
        let c = KernelOp::NewviewIi.cost(1);
        assert_eq!(c.flops, 272);
        assert_eq!(c.bytes_read, 264);
        assert_eq!(c.bytes_written, 132);
        let c1000 = KernelOp::NewviewIi.cost(1000);
        assert_eq!(c1000.flops, 272_000);
        assert_eq!(c1000.bytes_read, 264_000);
        assert_eq!(c1000.bytes_written, 132_000);
        assert!((c.arithmetic_intensity() - 272.0 / 396.0).abs() < 1e-12);
    }

    /// Hand-computed per-site pin for `evaluate_ii`: per (k, a) one
    /// length-4 dot product (8 flops) plus `pi_w * vq * x`
    /// accumulation (2 muls + 1 add), over 16 pairs: 16 × 11 = 176;
    /// plus the ln/scale/weight tail (5) = 181 flops. Traffic: reads
    /// both CLAs + scales (264 B) + the site weight (4 B), writes
    /// nothing (scalar reduction).
    #[test]
    fn evaluate_ii_pinned_by_hand() {
        let c = KernelOp::EvaluateIi.cost(1);
        assert_eq!(c.flops, 181);
        assert_eq!(c.bytes_read, 268);
        assert_eq!(c.bytes_written, 0);
        assert_eq!(KernelOp::EvaluateIi.cost(10_000).flops, 1_810_000);
    }

    /// The remaining six ops, pinned against the same hand counts so
    /// loop-structure changes cannot drift silently.
    #[test]
    fn all_ops_pinned() {
        let pin = |op: KernelOp| {
            let c = op.cost(1);
            (c.flops, c.bytes_read, c.bytes_written)
        };
        assert_eq!(pin(KernelOp::NewviewTt), (16, 2, 132));
        assert_eq!(pin(KernelOp::NewviewTi), (144, 133, 132));
        assert_eq!(pin(KernelOp::EvaluateTi), (165, 137, 0));
        assert_eq!(pin(KernelOp::DerivativeSumTi), (144, 129, 128));
        assert_eq!(pin(KernelOp::DerivativeSumIi), (272, 256, 128));
        assert_eq!(pin(KernelOp::DerivativeCore), (104, 132, 0));
    }

    #[test]
    fn names_round_trip_and_group() {
        for op in KernelOp::ALL {
            assert_eq!(KernelOp::from_name(op.name()), Some(op));
        }
        assert_eq!(KernelOp::from_name("newview"), None);
        assert_eq!(KernelOp::NewviewTt.kernel_id(), KernelId::Newview);
        assert_eq!(KernelOp::EvaluateIi.kernel_id(), KernelId::Evaluate);
        assert_eq!(
            KernelOp::DerivativeSumTi.kernel_id(),
            KernelId::DerivativeSum
        );
        assert_eq!(
            KernelOp::DerivativeCore.kernel_id(),
            KernelId::DerivativeCore
        );
        // Index array is dense and matches ALL order.
        for (i, op) in KernelOp::ALL.into_iter().enumerate() {
            assert_eq!(op.index(), i);
        }
    }

    /// Compression never increases flops, and its traffic converges to
    /// the expansion copies as the class count shrinks.
    #[test]
    fn compressed_newview_cost() {
        let full = KernelOp::NewviewIi.cost(10_000);
        let comp = newview_compressed(KernelOp::NewviewIi, 10_000, 100);
        assert_eq!(comp.flops, KernelOp::NewviewIi.cost(100).flops);
        assert!(comp.flops < full.flops);
        // Expansion writes the full output width regardless.
        assert!(comp.bytes_written >= full.bytes_written);
        // Degenerate: one class per site is never cheaper than the
        // plain path (gather/expand overhead on top).
        let degenerate = newview_compressed(KernelOp::NewviewIi, 10_000, 10_000);
        assert!(degenerate.bytes() > full.bytes());
        assert_eq!(degenerate.flops, full.flops);
    }

    #[test]
    fn accumulate_saturates() {
        let mut c = KernelCost {
            flops: u64::MAX - 1,
            bytes_read: 0,
            bytes_written: 0,
        };
        c.accumulate(&KernelOp::NewviewIi.cost(1));
        assert_eq!(c.flops, u64::MAX);
    }

    #[test]
    fn global_counters_accumulate() {
        let before = crate::metrics::counter("plf.cost.flops").get();
        record_global(&KernelOp::NewviewTt.cost(10));
        let after = crate::metrics::counter("plf.cost.flops").get();
        assert!(after >= before + 160);
    }
}
