//! Memory-saving likelihood evaluation by CLA recomputation.
//!
//! §V-A lists "advanced memory saving techniques, which rely on CLA
//! recomputations [Izquierdo-Carrasco et al. 2012]" as unsupported in
//! the paper's MIC port — relevant because the Phi's 8 GB is the
//! binding constraint at 4000K sites (§VI-B2). This module implements
//! the technique: instead of one conditional likelihood array per
//! inner node, a fixed pool of `K < n_inner` slots is maintained and
//! evicted CLAs are recomputed on demand, trading running time for
//! memory.
//!
//! During the post-order traversal a child CLA is pinned only until
//! its parent has consumed it; slots whose nodes are no longer needed
//! in the current traversal are reusable. The minimum viable pool size
//! is the maximum number of simultaneously-live CLAs, which is bounded
//! by the tree height (≈ log₂ n for balanced trees, the paper's 15-taxon
//! trees need 4).

use crate::cla::Cla;
use crate::engine::EngineConfig;
use crate::instrument::{KernelId, KernelStats};
use crate::kernels::Kernels;
use crate::layout::{FusedPmat, Lut16x16};
use crate::repeats::{
    ClassSource, RepeatKey, RepeatScratch, RepeatStats, RepeatTable, SiteRepeats,
};
use crate::SITE_STRIDE;
use phylo_bio::CompressedAlignment;
use phylo_models::{DiscreteGamma, Eigensystem, Gtr, GtrParams, ProbMatrix};
use phylo_tree::traverse::{children, full_schedule};
use phylo_tree::{EdgeId, NodeId, Tree};

/// The smallest CLA pool that can evaluate `tree` at `root_edge`:
/// the maximum number of simultaneously pinned CLAs in the post-order
/// traversal (computed-but-unconsumed nodes plus the two root-adjacent
/// ones). Bounded by the tree height plus a constant.
pub fn min_pool_slots(tree: &Tree, root_edge: EdgeId) -> usize {
    let (ra, rb) = tree.endpoints(root_edge);
    let num_taxa = tree.num_taxa();
    let mut pinned = vec![false; tree.num_inner()];
    let mut live = 0usize;
    let mut peak = 0usize;
    for d in full_schedule(tree, root_edge) {
        let idx = d.node - num_taxa;
        if !pinned[idx] {
            pinned[idx] = true;
            live += 1;
            peak = peak.max(live);
        }
        for (_, c) in children(tree, d.node, d.toward_edge) {
            if !tree.is_tip(c) && c != ra && c != rb {
                let cidx = c - num_taxa;
                if pinned[cidx] {
                    pinned[cidx] = false;
                    live -= 1;
                }
            }
        }
    }
    peak.max(3)
}

/// The smallest pool that works for *any* virtual-root placement on
/// this tree.
pub fn min_pool_slots_any_root(tree: &Tree) -> usize {
    tree.edge_ids()
        .map(|e| min_pool_slots(tree, e))
        .max()
        .unwrap_or(3)
}

/// A likelihood engine with a bounded CLA pool.
pub struct RecomputingEngine {
    kernel: &'static dyn Kernels,
    eigen: Eigensystem,
    gamma: DiscreteGamma,
    pi_w: [f64; SITE_STRIDE],
    tip_pi: Lut16x16,
    tips: Vec<Vec<u8>>,
    weights: Vec<u32>,
    num_patterns: usize,
    num_taxa: usize,
    /// The bounded slot pool.
    slots: Vec<Cla>,
    /// Which inner node currently occupies each slot (`usize::MAX` =
    /// free).
    slot_owner: Vec<NodeId>,
    /// Inner-node → slot index (`usize::MAX` = evicted).
    resident: Vec<usize>,
    /// The directed orientation each resident CLA was computed for.
    orientation: Vec<(EdgeId, u64)>,
    /// Version bump for orientations (topology/branch changes are not
    /// tracked here — every `log_likelihood` call recomputes stale
    /// entries; callers invalidate explicitly on mutation).
    version: u64,
    stats: KernelStats,
    /// Site-repeat compression mode (resolved at construction).
    repeats_mode: SiteRepeats,
    /// Per-inner-node repeat tables. Unlike CLAs these are *not*
    /// pooled: a table costs ~12 bytes/site versus a CLA's 128, and
    /// keeping them resident is what lets evicted CLAs be recomputed
    /// over classes instead of sites.
    repeat_tables: Vec<Option<RepeatTable>>,
    repeat_valid: Vec<Option<RepeatKey>>,
    repeat_stamps: Vec<u64>,
    next_repeat_stamp: u64,
    repeat_scratch: Option<Box<RepeatScratch>>,
    repeat_stats: RepeatStats,
}

const FREE: usize = usize::MAX;

impl RecomputingEngine {
    /// Builds an engine whose CLA memory is capped at `pool_slots`
    /// arrays (the full engine uses `tree.num_inner()`).
    ///
    /// # Panics
    /// Panics when `pool_slots < 3` — a post-order step needs two
    /// resident children plus the node being computed.
    pub fn new(
        tree: &Tree,
        aln: &CompressedAlignment,
        config: EngineConfig,
        pool_slots: usize,
    ) -> Self {
        assert!(pool_slots >= 3, "pool needs at least 3 slots");
        let num_taxa = tree.num_taxa();
        let mut tips = Vec::with_capacity(num_taxa);
        for tip_id in 0..num_taxa {
            let name = tree.tip_name(tip_id);
            let row = aln
                .taxon_index(name)
                .unwrap_or_else(|| panic!("taxon {name:?} missing from alignment"));
            tips.push(aln.row(row).iter().map(|c| c.bits()).collect());
        }
        let weights: Vec<u32> = aln.weights().to_vec();
        let num_patterns = weights.len();
        let params = GtrParams {
            rates: [1.0; 6],
            freqs: aln.empirical_frequencies(),
        };
        let gtr = Gtr::new(params);
        let gamma = DiscreteGamma::new(config.alpha);
        let mut pi_w = [0.0; SITE_STRIDE];
        for k in 0..crate::NUM_RATES {
            for a in 0..crate::NUM_STATES {
                pi_w[4 * k + a] = 0.25 * params.freqs[a];
            }
        }
        let pool = pool_slots.min(tree.num_inner());
        RecomputingEngine {
            kernel: config.kernel.kernels(),
            eigen: gtr.eigen().clone(),
            gamma,
            pi_w,
            tip_pi: Lut16x16::tip_pi(&params.freqs),
            tips,
            weights,
            num_patterns,
            num_taxa,
            slots: (0..pool).map(|_| Cla::new(num_patterns)).collect(),
            slot_owner: vec![FREE; pool],
            resident: vec![FREE; tree.num_inner()],
            orientation: vec![(usize::MAX, 0); tree.num_inner()],
            version: 1,
            stats: KernelStats::new(),
            repeats_mode: config.site_repeats.effective(),
            repeat_tables: vec![None; tree.num_inner()],
            repeat_valid: vec![None; tree.num_inner()],
            repeat_stamps: vec![0; tree.num_inner()],
            next_repeat_stamp: 1,
            repeat_scratch: None,
            repeat_stats: RepeatStats::default(),
        }
    }

    /// Number of CLA slots (the memory bound).
    pub fn pool_slots(&self) -> usize {
        self.slots.len()
    }

    /// Approximate CLA memory in bytes (the quantity the pool caps).
    pub fn cla_bytes(&self) -> usize {
        self.slots.len() * self.num_patterns * SITE_STRIDE * 8
    }

    /// Kernel counters (recomputation overhead shows up as extra
    /// `newview` calls).
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// Clears counters.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Invalidates every cached CLA (call after mutating the tree).
    /// Repeat tables are *not* cleared: their validity is tracked
    /// separately against child identity and table stamps, so
    /// branch-length-only changes reuse them.
    pub fn invalidate_all(&mut self) {
        self.version += 1;
    }

    /// The resolved site-repeat compression mode.
    pub fn site_repeats(&self) -> SiteRepeats {
        self.repeats_mode
    }

    /// Cumulative repeat-compression counters.
    pub fn repeat_stats(&self) -> &RepeatStats {
        &self.repeat_stats
    }

    fn inner_idx(&self, node: NodeId) -> usize {
        node - self.num_taxa
    }

    fn fused_pmat(&self, t: f64) -> FusedPmat {
        FusedPmat::from_prob(&ProbMatrix::new(&self.eigen, self.gamma.rates(), t))
    }

    /// Finds a slot for `node`, evicting an unpinned resident if
    /// necessary.
    fn acquire_slot(&mut self, node: NodeId, pinned: &[bool]) -> usize {
        let node_idx = self.inner_idx(node);
        if let Some(s) = self.slot_owner.iter().position(|&o| o == FREE) {
            self.slot_owner[s] = node;
            self.resident[node_idx] = s;
            return s;
        }
        let victim_slot = self
            .slot_owner
            .iter()
            .position(|&o| o != FREE && !pinned[self.inner_idx(o)])
            .unwrap_or_else(|| {
                panic!(
                    "CLA pool of {} slots too small for this traversal",
                    self.slots.len()
                )
            });
        let victim = self.slot_owner[victim_slot];
        let victim_idx = self.inner_idx(victim);
        self.resident[victim_idx] = FREE;
        self.slot_owner[victim_slot] = node;
        self.resident[node_idx] = victim_slot;
        victim_slot
    }

    /// Ensures all CLAs needed at `root_edge` are resident and valid,
    /// recomputing evicted or stale ones. Returns with both
    /// root-adjacent inner CLAs resident.
    pub fn update_partials(&mut self, tree: &Tree, root_edge: EdgeId) {
        debug_assert_eq!(tree.num_inner(), self.resident.len(), "tree shape changed");
        let schedule = full_schedule(tree, root_edge);
        // Pin state: a node is pinned from the moment it is computed
        // until its parent consumes it; root-adjacent nodes stay
        // pinned to the end.
        let mut pinned = vec![false; tree.num_inner()];
        let (ra, rb) = tree.endpoints(root_edge);

        for d in &schedule {
            let idx = self.inner_idx(d.node);
            // Canonical child order: tip first, then by node id. Hoisted
            // out of `run_newview` so the repeat table and the kernel
            // dispatch agree on which child is "left".
            let mut ch = children(tree, d.node, d.toward_edge);
            let tipness = |n: NodeId| usize::from(!tree.is_tip(n));
            if (tipness(ch[0].1), ch[0].1) > (tipness(ch[1].1), ch[1].1) {
                ch.swap(0, 1);
            }
            // Tables are ensured even for resident-and-valid nodes:
            // parents build their classes from the children's tables.
            if self.repeats_mode.enabled() {
                self.ensure_repeat_table(tree, d.node, d.toward_edge, ch);
            }
            let valid = self.resident[idx] != FREE
                && self.orientation[idx] == (d.toward_edge, self.version);
            if !valid {
                self.run_newview(tree, d.node, ch, d.toward_edge, &pinned);
            }
            pinned[idx] = true;
            // Children are consumed now.
            for &(_, c) in &ch {
                if !tree.is_tip(c) && c != ra && c != rb {
                    pinned[self.inner_idx(c)] = false;
                }
            }
        }
        // Keep the root-adjacent CLAs pinned for evaluate/derivatives.
        let _ = (ra, rb);
    }

    /// Builds (or revalidates) `node`'s repeat table bottom-up from its
    /// children's class sources (same contract as the full engine's;
    /// tips are fixed at construction here, so the epoch is constant).
    fn ensure_repeat_table(
        &mut self,
        tree: &Tree,
        node: NodeId,
        toward_edge: EdgeId,
        ch: [(EdgeId, NodeId); 2],
    ) {
        let idx = self.inner_idx(node);
        let key = RepeatKey {
            toward_edge,
            child_nodes: [ch[0].1, ch[1].1],
            child_table_stamps: [
                self.repeat_stamp_of(tree, ch[0].1),
                self.repeat_stamp_of(tree, ch[1].1),
            ],
            tip_epoch: 0,
        };
        if self.repeat_valid[idx].as_ref() == Some(&key) {
            return;
        }
        let source = |n: NodeId| -> ClassSource<'_> {
            if tree.is_tip(n) {
                ClassSource::Tip(&self.tips[n])
            } else {
                ClassSource::Inner(
                    self.repeat_tables[self.inner_idx(n)]
                        .as_ref()
                        .expect("child repeat table built before parent (post-order)"),
                )
            }
        };
        let table = RepeatTable::build(source(ch[0].1), source(ch[1].1));
        self.repeat_tables[idx] = Some(table);
        self.repeat_valid[idx] = Some(key);
        self.repeat_stamps[idx] = self.next_repeat_stamp;
        self.next_repeat_stamp += 1;
    }

    fn repeat_stamp_of(&self, tree: &Tree, node: NodeId) -> u64 {
        if tree.is_tip(node) {
            0
        } else {
            self.repeat_stamps[self.inner_idx(node)]
        }
    }

    fn run_newview(
        &mut self,
        tree: &Tree,
        node: NodeId,
        ch: [(EdgeId, NodeId); 2],
        toward: EdgeId,
        pinned: &[bool],
    ) {
        let [(e_l, n_l), (e_r, n_r)] = ch;
        let idx = self.inner_idx(node);
        let slot = if self.resident[idx] != FREE {
            self.resident[idx]
        } else {
            self.acquire_slot(node, pinned)
        };
        let compress = self.repeats_mode.enabled()
            && self.repeat_tables[idx]
                .as_ref()
                .is_some_and(|t| t.compresses(self.repeats_mode));
        let mut out = std::mem::replace(&mut self.slots[slot], Cla::new(0));
        let (ov, os) = out.buffers_mut();
        self.repeat_stats.newview_calls += 1;
        if compress {
            self.run_newview_compressed(tree, ch, idx, ov, os);
            self.slots[slot] = out;
            self.orientation[idx] = (toward, self.version);
            self.stats.record(KernelId::Newview, self.num_patterns);
            return;
        }
        match (tree.is_tip(n_l), tree.is_tip(n_r)) {
            (true, true) => {
                let lut_l = Lut16x16::tip_prob(&self.fused_pmat(tree.length(e_l)));
                let lut_r = Lut16x16::tip_prob(&self.fused_pmat(tree.length(e_r)));
                self.kernel
                    .newview_tt(&lut_l, &lut_r, &self.tips[n_l], &self.tips[n_r], ov, os);
            }
            (true, false) => {
                let lut_l = Lut16x16::tip_prob(&self.fused_pmat(tree.length(e_l)));
                let p_r = self.fused_pmat(tree.length(e_r));
                let cr = &self.slots[self.slot_of(n_r)];
                self.kernel.newview_ti(
                    &lut_l,
                    &self.tips[n_l],
                    &p_r,
                    cr.values(),
                    cr.scale(),
                    ov,
                    os,
                );
            }
            (false, false) => {
                let p_l = self.fused_pmat(tree.length(e_l));
                let p_r = self.fused_pmat(tree.length(e_r));
                let cl = &self.slots[self.slot_of(n_l)];
                let cr = &self.slots[self.slot_of(n_r)];
                self.kernel.newview_ii(
                    &p_l,
                    cl.values(),
                    cl.scale(),
                    &p_r,
                    cr.values(),
                    cr.scale(),
                    ov,
                    os,
                );
            }
            (false, true) => unreachable!("children canonicalized tip-first"),
        }
        self.slots[slot] = out;
        self.orientation[idx] = (toward, self.version);
        self.stats.record(KernelId::Newview, self.num_patterns);
    }

    /// Compressed `newview` over repeat classes (see [`crate::repeats`]
    /// for the bit-identity argument).
    fn run_newview_compressed(
        &mut self,
        tree: &Tree,
        ch: [(EdgeId, NodeId); 2],
        idx: usize,
        out_v: &mut [f64],
        out_s: &mut [u32],
    ) {
        if self.repeat_scratch.is_none() {
            self.repeat_scratch = Some(Box::new(RepeatScratch::new(self.num_patterns)));
        }
        let mut scratch = self.repeat_scratch.take().expect("repeat scratch");
        let (sites, classes) = {
            let table = self.repeat_tables[idx]
                .as_ref()
                .expect("repeat table built");
            let [(e_l, n_l), (e_r, n_r)] = ch;
            match (tree.is_tip(n_l), tree.is_tip(n_r)) {
                (true, true) => {
                    let lut_l = Lut16x16::tip_prob(&self.fused_pmat(tree.length(e_l)));
                    let lut_r = Lut16x16::tip_prob(&self.fused_pmat(tree.length(e_r)));
                    scratch.newview_tt(
                        self.kernel,
                        table,
                        &lut_l,
                        &lut_r,
                        &self.tips[n_l],
                        &self.tips[n_r],
                        out_v,
                        out_s,
                    );
                }
                (true, false) => {
                    let lut_l = Lut16x16::tip_prob(&self.fused_pmat(tree.length(e_l)));
                    let p_r = self.fused_pmat(tree.length(e_r));
                    let cr = &self.slots[self.slot_of(n_r)];
                    scratch.newview_ti(
                        self.kernel,
                        table,
                        &lut_l,
                        &self.tips[n_l],
                        &p_r,
                        cr.values(),
                        cr.scale(),
                        out_v,
                        out_s,
                    );
                }
                (false, false) => {
                    let p_l = self.fused_pmat(tree.length(e_l));
                    let p_r = self.fused_pmat(tree.length(e_r));
                    let cl = &self.slots[self.slot_of(n_l)];
                    let cr = &self.slots[self.slot_of(n_r)];
                    scratch.newview_ii(
                        self.kernel,
                        table,
                        &p_l,
                        cl.values(),
                        cl.scale(),
                        &p_r,
                        cr.values(),
                        cr.scale(),
                        out_v,
                        out_s,
                    );
                }
                (false, true) => unreachable!("children canonicalized tip-first"),
            }
            (table.num_sites() as u64, table.num_classes() as u64)
        };
        self.repeat_scratch = Some(scratch);
        self.repeat_stats.compressed_calls += 1;
        self.repeat_stats.sites += sites;
        self.repeat_stats.classes += classes;
    }

    fn slot_of(&self, node: NodeId) -> usize {
        let s = self.resident[self.inner_idx(node)];
        assert_ne!(s, FREE, "child CLA evicted mid-traversal (pool too small)");
        s
    }

    /// Log-likelihood with the virtual root on `root_edge`, under the
    /// memory cap.
    pub fn log_likelihood(&mut self, tree: &Tree, root_edge: EdgeId) -> f64 {
        self.update_partials(tree, root_edge);
        let (a, b) = tree.endpoints(root_edge);
        let t = tree.length(root_edge);
        let p = self.fused_pmat(t);
        let (q, r) = if tree.is_tip(a) { (a, b) } else { (b, a) };
        let ll = if tree.is_tip(q) {
            let cr = &self.slots[self.slot_of(r)];
            self.kernel.evaluate_ti(
                &self.tip_pi,
                &self.tips[q],
                &p,
                cr.values(),
                cr.scale(),
                &self.weights,
            )
        } else {
            let cq = &self.slots[self.slot_of(q)];
            let cr = &self.slots[self.slot_of(r)];
            self.kernel.evaluate_ii(
                &self.pi_w,
                cq.values(),
                cq.scale(),
                &p,
                cr.values(),
                cr.scale(),
                &self.weights,
            )
        };
        self.stats.record(KernelId::Evaluate, self.num_patterns);
        ll
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LikelihoodEngine;
    use phylo_models::{DiscreteGamma as _DG, Gtr as _G};
    use phylo_tree::build::{balanced, caterpillar, default_names, random_tree};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn dataset(taxa: usize, seed: u64) -> (Tree, CompressedAlignment) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let names = default_names(taxa);
        let tree = random_tree(&names, 0.15, &mut rng).unwrap();
        let g = phylo_models::Gtr::new(phylo_models::GtrParams::jc69());
        let gamma = phylo_models::DiscreteGamma::new(0.9);
        let aln = phylo_seqgen_sim(&tree, &g, &gamma, 120, &mut rng);
        (tree, aln)
    }

    // Local tiny simulator shim to avoid a dev-dependency cycle with
    // phylo-seqgen: random unambiguous codes are sufficient here.
    fn phylo_seqgen_sim(
        tree: &Tree,
        _g: &_G,
        _gamma: &_DG,
        patterns: usize,
        rng: &mut SmallRng,
    ) -> CompressedAlignment {
        use rand::Rng;
        let names: Vec<String> = tree.tip_names().to_vec();
        let rows = (0..tree.num_taxa())
            .map(|_| {
                (0..patterns)
                    .map(|_| phylo_bio::DnaCode::from_state(rng.random_range(0..4)))
                    .collect()
            })
            .collect();
        CompressedAlignment::from_parts(names, rows, vec![1; patterns]).unwrap()
    }

    #[test]
    fn matches_full_engine_at_every_viable_pool_size() {
        let (tree, aln) = dataset(12, 5);
        let cfg = EngineConfig::default();
        let mut full = LikelihoodEngine::new(&tree, &aln, cfg);
        for root in [0usize, 5, 11] {
            let expect = full.log_likelihood(&tree, root);
            let min = min_pool_slots(&tree, root);
            assert!(min < tree.num_inner(), "memory saving must be possible");
            for pool in min..=tree.num_inner() {
                let mut rec = RecomputingEngine::new(&tree, &aln, cfg, pool);
                let got = rec.log_likelihood(&tree, root);
                assert!(
                    (got - expect).abs() < 1e-10,
                    "pool {pool} root {root}: {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn memory_is_actually_bounded() {
        let (tree, aln) = dataset(20, 6);
        let cfg = EngineConfig::default();
        let full_bytes = tree.num_inner() * aln.num_patterns() * SITE_STRIDE * 8;
        let rec = RecomputingEngine::new(&tree, &aln, cfg, 4);
        assert_eq!(rec.pool_slots(), 4);
        assert!(rec.cla_bytes() < full_bytes / 4);
    }

    #[test]
    fn small_pool_costs_more_newview_calls() {
        let (tree, aln) = dataset(14, 7);
        let cfg = EngineConfig::default();
        // Generous pool: repeated evaluation at alternating roots keeps
        // most CLAs resident.
        let mut big = RecomputingEngine::new(&tree, &aln, cfg, tree.num_inner());
        let small_pool = min_pool_slots_any_root(&tree);
        let mut small = RecomputingEngine::new(&tree, &aln, cfg, small_pool);
        for _ in 0..4 {
            for root in [0usize, 10] {
                big.log_likelihood(&tree, root);
                small.log_likelihood(&tree, root);
            }
        }
        let big_calls = big.stats().get(KernelId::Newview).calls;
        let small_calls = small.stats().get(KernelId::Newview).calls;
        assert!(
            small_calls > big_calls,
            "expected recomputation overhead: {small_calls} vs {big_calls}"
        );
    }

    #[test]
    fn caterpillar_needs_only_constant_pool() {
        // A pectinate tree is the deep-traversal worst case for naive
        // strategies, but post-order pinning keeps the live set tiny.
        let names = default_names(24);
        let tree = caterpillar(&names, 0.1).unwrap();
        let aln = {
            let mut rng = SmallRng::seed_from_u64(9);
            phylo_seqgen_sim(
                &tree,
                &phylo_models::Gtr::new(phylo_models::GtrParams::jc69()),
                &phylo_models::DiscreteGamma::new(1.0),
                60,
                &mut rng,
            )
        };
        let cfg = EngineConfig::default();
        let mut full = LikelihoodEngine::new(&tree, &aln, cfg);
        let expect = full.log_likelihood(&tree, 0);
        let min = min_pool_slots(&tree, 0);
        assert!(min <= 5, "caterpillar live set stays small, got {min}");
        let mut rec = RecomputingEngine::new(&tree, &aln, cfg, min);
        let got = rec.log_likelihood(&tree, 0);
        assert!((got - expect).abs() < 1e-10, "{got} vs {expect}");
    }

    #[test]
    fn balanced_tree_with_minimal_pool() {
        let names = default_names(16);
        let tree = balanced(&names, 0.1).unwrap();
        let aln = {
            let mut rng = SmallRng::seed_from_u64(10);
            phylo_seqgen_sim(
                &tree,
                &phylo_models::Gtr::new(phylo_models::GtrParams::jc69()),
                &phylo_models::DiscreteGamma::new(1.0),
                40,
                &mut rng,
            )
        };
        let cfg = EngineConfig::default();
        let mut full = LikelihoodEngine::new(&tree, &aln, cfg);
        let expect = full.log_likelihood(&tree, 0);
        // Balanced 16-taxon tree: live set grows with depth (~log n).
        let min = min_pool_slots(&tree, 0);
        assert!(min <= 8, "balanced live set is logarithmic, got {min}");
        let mut rec = RecomputingEngine::new(&tree, &aln, cfg, min);
        let got = rec.log_likelihood(&tree, 0);
        assert!((got - expect).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "at least 3 slots")]
    fn tiny_pool_rejected() {
        let (tree, aln) = dataset(8, 11);
        RecomputingEngine::new(&tree, &aln, EngineConfig::default(), 2);
    }

    #[test]
    fn site_repeats_bit_identical_under_memory_cap() {
        // Repeat-heavy alignment: 12 prototype columns cycled across 96
        // patterns, so every inner node sees heavy class collapse.
        use rand::Rng;
        let mut rng = SmallRng::seed_from_u64(21);
        let names = default_names(10);
        let tree = random_tree(&names, 0.12, &mut rng).unwrap();
        let protos: Vec<Vec<usize>> = (0..12)
            .map(|_| (0..10).map(|_| rng.random_range(0..4usize)).collect())
            .collect();
        let rows: Vec<Vec<phylo_bio::DnaCode>> = (0..10)
            .map(|taxon| {
                (0..96)
                    .map(|p| phylo_bio::DnaCode::from_state(protos[p % 12][taxon]))
                    .collect()
            })
            .collect();
        let aln =
            CompressedAlignment::from_parts(tree.tip_names().to_vec(), rows, vec![1; 96]).unwrap();
        let cfg_of = |site_repeats| EngineConfig {
            site_repeats,
            ..EngineConfig::default()
        };
        let pool = min_pool_slots_any_root(&tree);
        for root in [0usize, 4, 9] {
            let mut off = RecomputingEngine::new(&tree, &aln, cfg_of(SiteRepeats::Off), pool);
            let mut on = RecomputingEngine::new(&tree, &aln, cfg_of(SiteRepeats::On), pool);
            let a = off.log_likelihood(&tree, root);
            let b = on.log_likelihood(&tree, root);
            assert_eq!(a.to_bits(), b.to_bits(), "root {root}: {a} vs {b}");
            assert!(
                on.repeat_stats().compressed_calls > 0,
                "compression engaged nothing at root {root}"
            );
        }
    }

    #[test]
    fn repeat_tables_survive_invalidate_all() {
        let (tree, aln) = dataset(10, 13);
        let cfg = EngineConfig {
            site_repeats: SiteRepeats::On,
            ..EngineConfig::default()
        };
        let mut rec = RecomputingEngine::new(&tree, &aln, cfg, tree.num_inner());
        rec.log_likelihood(&tree, 0);
        let stamp_before = rec.next_repeat_stamp;
        // Branch-length-style invalidation recomputes CLAs but must
        // reuse the class tables (they only depend on tip patterns and
        // topology).
        rec.invalidate_all();
        rec.log_likelihood(&tree, 0);
        assert_eq!(rec.next_repeat_stamp, stamp_before, "tables were rebuilt");
    }
}
