//! Hierarchical span tracing into lock-free per-worker ring buffers.
//!
//! Every thread that records a span owns a fixed-capacity [`SpanRing`]:
//! a single-producer ring of begin/end events protected by per-slot
//! sequence counters (a seqlock). The owning thread pushes with a
//! handful of release-ordered stores and **zero allocation**; any other
//! thread may take a consistent [`snapshot`](SpanRing::snapshot) at any
//! time without stopping the writer. When the ring wraps, the *oldest*
//! events are overwritten — a long run keeps the most recent window,
//! and the drop count stays exact.
//!
//! Spans nest naturally through RAII: [`enter`] records a `Begin` event
//! and returns a [`SpanGuard`] whose `Drop` records the matching `End`.
//! Because guards are dropped in LIFO order, each thread's event stream
//! is a well-formed bracket sequence (modulo a possibly-truncated
//! prefix lost to overflow), which [`pair_spans`] and the Chrome
//! trace-event exporter ([`chrome_trace_json`]) exploit to reconstruct
//! the hierarchy: search → SPR round → branch-opt → Newton iteration →
//! kernel call.
//!
//! ## Zero cost when off
//!
//! The whole recording path is gated behind the `span-trace` cargo
//! feature (on by default). With the feature disabled, [`enter`]
//! returns an inert guard and the compiler removes the call entirely —
//! no thread-local access, no atomics, no clock read. At runtime,
//! [`set_enabled`]`(false)` reduces [`enter`] to a single relaxed
//! atomic load.
//!
//! Timestamps are nanoseconds since a process-wide epoch
//! ([`epoch_ns`]), so events from different threads share one timeline.

use crate::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Default per-thread ring capacity (events). At ~40 bytes per slot
/// this is ≈1.3 MiB per recording thread; the window comfortably holds
/// the most recent SPR round of a large search.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 15;

/// Whether an event opens or closes a span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanPhase {
    /// The span was entered.
    Begin,
    /// The span was exited.
    End,
}

/// One recorded begin/end event.
///
/// `name` is `&'static str` by design: recording stores only the
/// pointer and length, so the hot path never allocates or copies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static span name (e.g. `"newview"`, `"spr_round"`).
    pub name: &'static str,
    /// Begin or end.
    pub phase: SpanPhase,
    /// Nanoseconds since the process epoch.
    pub t_ns: u64,
}

/// A slot stores the event as four plain atomic words guarded by a
/// sequence counter, so readers never observe a torn event: `seq` is
/// odd while the writer is mid-update and encodes the event index when
/// even, letting a reader detect both in-progress writes and laps.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; 4], // name ptr, name len, t_ns, phase
}

/// Fixed-capacity single-producer ring buffer of [`SpanEvent`]s.
///
/// The *owning thread* is the only writer ([`push`](Self::push));
/// any thread may read ([`snapshot`](Self::snapshot)). Overflow
/// silently overwrites the oldest events; [`recorded`](Self::recorded)
/// counts every push ever made so `recorded - len(snapshot)` is the
/// number dropped.
pub struct SpanRing {
    slots: Box<[Slot]>,
    mask: u64,
    head: AtomicU64,
}

// SAFETY: all shared state is atomics; the single-writer discipline is
// upheld by construction (each ring is written only via its owning
// thread's thread-local handle) and torn reads are rejected via `seq`.
unsafe impl Sync for SpanRing {}

impl SpanRing {
    /// Creates a ring holding `capacity` events (rounded up to a power
    /// of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let slots: Vec<Slot> = (0..cap)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                words: [
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                ],
            })
            .collect();
        SpanRing {
            slots: slots.into_boxed_slice(),
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever pushed (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events overwritten by ring wrap-around so far.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Appends an event. Must only be called from the owning thread;
    /// lock-free and allocation-free.
    pub fn push(&self, ev: SpanEvent) {
        let i = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(i & self.mask) as usize];
        // Mark the slot as mid-write (odd), publish the words, then
        // stamp it with the even sequence that names event `i`.
        //
        // The word stores are Release (and the snapshot loads Acquire)
        // rather than Relaxed: with relaxed words, a reader lapped
        // mid-read can pair a later-lap word with an earlier-lap seq
        // validation — under C11 nothing orders a relaxed word store
        // against the *preceding* odd seq store, so the reader's
        // re-check can still see the stale even value and accept a
        // torn event. The interleave model test pins this down
        // (tests/interleave_span.rs: the relaxed variant is caught,
        // this one explores clean). On x86 both compile to plain MOVs.
        slot.seq.store(2 * i + 1, Ordering::Release);
        slot.words[0].store(ev.name.as_ptr() as u64, Ordering::Release);
        slot.words[1].store(ev.name.len() as u64, Ordering::Release);
        slot.words[2].store(ev.t_ns, Ordering::Release);
        slot.words[3].store(matches!(ev.phase, SpanPhase::End) as u64, Ordering::Release);
        slot.seq.store(2 * i + 2, Ordering::Release);
        self.head.store(i + 1, Ordering::Release);
    }

    /// Takes a consistent snapshot of the surviving events in record
    /// order, without blocking the writer. Events the writer is
    /// concurrently overwriting are skipped (they are being dropped
    /// anyway).
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        let head = self.head.load(Ordering::Acquire);
        let start = head.saturating_sub(self.slots.len() as u64);
        let mut out = Vec::with_capacity((head - start) as usize);
        for i in start..head {
            let slot = &self.slots[(i & self.mask) as usize];
            if slot.seq.load(Ordering::Acquire) != 2 * i + 2 {
                continue; // mid-write or already lapped
            }
            // Acquire pairs with the Release word stores in `push`:
            // reading any fresh word drags the writer's seq advance
            // into view, so the re-check below rejects the tear.
            let w0 = slot.words[0].load(Ordering::Acquire);
            let w1 = slot.words[1].load(Ordering::Acquire);
            let w2 = slot.words[2].load(Ordering::Acquire);
            let w3 = slot.words[3].load(Ordering::Acquire);
            if slot.seq.load(Ordering::Acquire) != 2 * i + 2 {
                continue; // lapped while reading
            }
            // SAFETY: the seq check proved these words were published
            // as a unit by `push`, and every name pushed comes from a
            // live `&'static str`.
            let name: &'static str = unsafe {
                std::str::from_utf8_unchecked(std::slice::from_raw_parts(
                    w0 as *const u8,
                    w1 as usize,
                ))
            };
            out.push(SpanEvent {
                name,
                phase: if w3 == 0 {
                    SpanPhase::Begin
                } else {
                    SpanPhase::End
                },
                t_ns: w2,
            });
        }
        out
    }

    /// Runs the seqlock reader protocol on the slot for event index
    /// `i` and returns the raw words if validation succeeds.
    ///
    /// Model-test access point: the interleave tests assert
    /// cross-word consistency on the raw values, because a *torn*
    /// reconstruction through [`Self::snapshot`] would build an
    /// invalid `&str` from mismatched pointer/length words — the
    /// exact UB the seqlock exists to prevent.
    #[cfg(feature = "interleave")]
    pub fn probe_slot(&self, i: u64) -> Option<[u64; 4]> {
        let slot = &self.slots[(i & self.mask) as usize];
        if slot.seq.load(Ordering::Acquire) != 2 * i + 2 {
            return None;
        }
        let words = [
            slot.words[0].load(Ordering::Acquire),
            slot.words[1].load(Ordering::Acquire),
            slot.words[2].load(Ordering::Acquire),
            slot.words[3].load(Ordering::Acquire),
        ];
        if slot.seq.load(Ordering::Acquire) != 2 * i + 2 {
            return None;
        }
        Some(words)
    }
}

/// A read-only copy of one thread's span timeline.
#[derive(Clone, Debug)]
pub struct TrackSnapshot {
    /// Thread label (e.g. `"master"`, `"worker0"`).
    pub label: String,
    /// Surviving events in record order.
    pub events: Vec<SpanEvent>,
    /// Total events the thread ever recorded.
    pub recorded: u64,
    /// Events lost to ring overflow.
    pub dropped: u64,
}

/// A closed (or auto-closed) span reconstructed by [`pair_spans`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompletedSpan {
    /// Span name.
    pub name: &'static str,
    /// Begin timestamp, ns since epoch.
    pub start_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
    /// Nesting depth (0 = outermost surviving span).
    pub depth: usize,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds elapsed since the process-wide trace epoch. The first
/// caller anchors the epoch; all threads share it.
pub fn epoch_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

#[cfg(feature = "span-trace")]
mod recorder {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::{Arc, Mutex};

    /// One thread's registered ring plus its human-readable label.
    pub(super) struct Track {
        label: Mutex<String>,
        ring: SpanRing,
    }

    static ENABLED: AtomicBool = AtomicBool::new(true);

    fn registry() -> &'static Mutex<Vec<Arc<Track>>> {
        static REGISTRY: OnceLock<Mutex<Vec<Arc<Track>>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
    }

    thread_local! {
        static CURRENT: Arc<Track> = register_current();
    }

    fn register_current() -> Arc<Track> {
        let mut reg = registry().lock().unwrap();
        let label = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread{}", reg.len()));
        let track = Arc::new(Track {
            label: Mutex::new(label),
            ring: SpanRing::with_capacity(DEFAULT_RING_CAPACITY),
        });
        reg.push(Arc::clone(&track));
        track
    }

    pub(super) fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    pub(super) fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }

    pub(super) fn set_thread_label(label: &str) {
        CURRENT.with(|t| *t.label.lock().unwrap() = label.to_string());
    }

    pub(super) fn record(name: &'static str, phase: SpanPhase) {
        let t_ns = super::epoch_ns();
        CURRENT.with(|t| t.ring.push(SpanEvent { name, phase, t_ns }));
    }

    pub(super) fn snapshot_all() -> Vec<TrackSnapshot> {
        let reg = registry().lock().unwrap();
        reg.iter()
            .map(|t| TrackSnapshot {
                label: t.label.lock().unwrap().clone(),
                events: t.ring.snapshot(),
                recorded: t.ring.recorded(),
                dropped: t.ring.dropped(),
            })
            .collect()
    }
}

/// RAII guard returned by [`enter`]; records the span's `End` event on
/// drop. With the `span-trace` feature off (or tracing disabled at
/// runtime) the guard is inert and compiles away.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard {
    #[cfg(feature = "span-trace")]
    name: &'static str,
    #[cfg(feature = "span-trace")]
    live: bool,
}

#[cfg(feature = "span-trace")]
impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if self.live {
            recorder::record(self.name, SpanPhase::End);
        }
    }
}

/// Opens a hierarchical span; the returned guard closes it on drop.
///
/// Hot-path cost with tracing enabled: one thread-local access, one
/// clock read, and six release-ordered atomic stores into the calling
/// thread's own ring. No locks, no allocation.
#[inline]
pub fn enter(name: &'static str) -> SpanGuard {
    #[cfg(feature = "span-trace")]
    {
        let live = recorder::enabled();
        if live {
            recorder::record(name, SpanPhase::Begin);
        }
        SpanGuard { name, live }
    }
    #[cfg(not(feature = "span-trace"))]
    {
        let _ = name;
        SpanGuard {}
    }
}

/// Runtime switch for span recording (the `span-trace` feature must be
/// compiled in for this to have any effect). Defaults to enabled.
pub fn set_enabled(on: bool) {
    #[cfg(feature = "span-trace")]
    recorder::set_enabled(on);
    #[cfg(not(feature = "span-trace"))]
    let _ = on;
}

/// Whether span recording is compiled in and currently enabled.
pub fn is_enabled() -> bool {
    #[cfg(feature = "span-trace")]
    {
        recorder::enabled()
    }
    #[cfg(not(feature = "span-trace"))]
    {
        false
    }
}

/// Labels the calling thread's track (e.g. `"master"`, `"worker3"`).
/// The label appears in exported traces and `trace-report` timelines.
pub fn set_thread_label(label: &str) {
    #[cfg(feature = "span-trace")]
    recorder::set_thread_label(label);
    #[cfg(not(feature = "span-trace"))]
    let _ = label;
}

/// Snapshots every registered thread's ring. Returns one
/// [`TrackSnapshot`] per thread that has recorded (or merely touched)
/// a span since process start; empty when the feature is off.
pub fn snapshot_all() -> Vec<TrackSnapshot> {
    #[cfg(feature = "span-trace")]
    {
        recorder::snapshot_all()
    }
    #[cfg(not(feature = "span-trace"))]
    {
        Vec::new()
    }
}

/// Reconstructs closed spans from one thread's event stream.
///
/// `End` events whose `Begin` was lost to ring overflow are skipped;
/// spans still open at the end of the stream are closed at the last
/// observed timestamp. Output is sorted by start time, outermost
/// first.
pub fn pair_spans(events: &[SpanEvent]) -> Vec<CompletedSpan> {
    let mut stack: Vec<(&'static str, u64)> = Vec::new();
    let mut out = Vec::new();
    let mut last_t = events.first().map_or(0, |e| e.t_ns);
    for ev in events {
        last_t = last_t.max(ev.t_ns);
        match ev.phase {
            SpanPhase::Begin => stack.push((ev.name, ev.t_ns)),
            SpanPhase::End => {
                // Guards drop LIFO, so a well-formed stream always ends
                // the top of the stack; a mismatch means the Begin was
                // overwritten by overflow — drop the orphan End.
                if stack.last().map(|(n, _)| *n) == Some(ev.name) {
                    let (name, start) = stack.pop().unwrap();
                    out.push(CompletedSpan {
                        name,
                        start_ns: start,
                        dur_ns: ev.t_ns.saturating_sub(start),
                        depth: stack.len(),
                    });
                }
            }
        }
    }
    // Auto-close spans still open when the snapshot was taken.
    while let Some((name, start)) = stack.pop() {
        out.push(CompletedSpan {
            name,
            start_ns: start,
            dur_ns: last_t.saturating_sub(start),
            depth: stack.len(),
        });
    }
    out.sort_by_key(|s| (s.start_ns, s.depth));
    out
}

/// One event of the Chrome trace-event JSON export.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChromeEvent {
    /// Span name.
    pub name: &'static str,
    /// `'B'` (begin) or `'E'` (end).
    pub ph: char,
    /// Timestamp, ns since epoch (serialized as µs).
    pub ts_ns: u64,
    /// Track index (one per recording thread).
    pub tid: usize,
}

/// Flattens track snapshots into balanced Chrome begin/end events.
///
/// Per track, orphan `End`s (Begin lost to overflow) are dropped and
/// spans still open at the end are auto-closed, so every `'B'` has a
/// matching `'E'` on the same `tid` — a guarantee the proptests pin
/// down.
pub fn chrome_events(tracks: &[TrackSnapshot]) -> Vec<ChromeEvent> {
    let mut out = Vec::new();
    for (tid, track) in tracks.iter().enumerate() {
        let mut stack: Vec<&'static str> = Vec::new();
        let mut last_t = track.events.first().map_or(0, |e| e.t_ns);
        for ev in &track.events {
            last_t = last_t.max(ev.t_ns);
            match ev.phase {
                SpanPhase::Begin => {
                    stack.push(ev.name);
                    out.push(ChromeEvent {
                        name: ev.name,
                        ph: 'B',
                        ts_ns: ev.t_ns,
                        tid,
                    });
                }
                SpanPhase::End => {
                    if stack.last() == Some(&ev.name) {
                        stack.pop();
                        out.push(ChromeEvent {
                            name: ev.name,
                            ph: 'E',
                            ts_ns: ev.t_ns,
                            tid,
                        });
                    }
                }
            }
        }
        while let Some(name) = stack.pop() {
            out.push(ChromeEvent {
                name,
                ph: 'E',
                ts_ns: last_t,
                tid,
            });
        }
    }
    out
}

/// Serializes track snapshots as Chrome trace-event JSON (the
/// `{"traceEvents":[...]}` document Perfetto and `chrome://tracing`
/// open directly). Each thread becomes one track: a `thread_name`
/// metadata record plus its balanced begin/end events, timestamps in
/// microseconds.
pub fn chrome_trace_json(tracks: &[TrackSnapshot]) -> String {
    let mut parts: Vec<String> = Vec::new();
    for (tid, track) in tracks.iter().enumerate() {
        parts.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            crate::trace::escape(&track.label)
        ));
    }
    for ev in chrome_events(tracks) {
        parts.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"plf\",\"ph\":\"{}\",\"pid\":1,\
             \"tid\":{},\"ts\":{:.3}}}",
            crate::trace::escape(ev.name),
            ev.ph,
            ev.tid,
            ev.ts_ns as f64 / 1000.0
        ));
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
        parts.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn ev(name: &'static str, phase: SpanPhase, t_ns: u64) -> SpanEvent {
        SpanEvent { name, phase, t_ns }
    }

    // Tests that read or toggle the global enable flag must not
    // interleave with each other under the parallel test runner.
    static ENABLE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn ring_keeps_events_in_order() {
        let ring = SpanRing::with_capacity(8);
        ring.push(ev("a", SpanPhase::Begin, 1));
        ring.push(ev("b", SpanPhase::Begin, 2));
        ring.push(ev("b", SpanPhase::End, 3));
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0], ev("a", SpanPhase::Begin, 1));
        assert_eq!(snap[2], ev("b", SpanPhase::End, 3));
        assert_eq!(ring.recorded(), 3);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts_stay_consistent() {
        let ring = SpanRing::with_capacity(4);
        assert_eq!(ring.capacity(), 4);
        for i in 0..10u64 {
            ring.push(ev("x", SpanPhase::Begin, i));
        }
        let snap = ring.snapshot();
        // Only the newest `capacity` events survive, in order.
        assert_eq!(
            snap.iter().map(|e| e.t_ns).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 6);
        assert_eq!(
            ring.recorded(),
            ring.dropped() + snap.len() as u64,
            "recorded = dropped + surviving"
        );
    }

    #[test]
    fn snapshot_while_writing_from_another_thread_is_consistent() {
        let ring = std::sync::Arc::new(SpanRing::with_capacity(64));
        let writer = {
            let ring = std::sync::Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..50_000u64 {
                    let phase = if i % 2 == 0 {
                        SpanPhase::Begin
                    } else {
                        SpanPhase::End
                    };
                    ring.push(ev("w", phase, i));
                }
            })
        };
        for _ in 0..200 {
            for e in ring.snapshot() {
                assert_eq!(e.name, "w");
                assert_eq!(
                    matches!(e.phase, SpanPhase::End),
                    e.t_ns % 2 == 1,
                    "torn event: {e:?}"
                );
            }
        }
        writer.join().unwrap();
        assert_eq!(ring.recorded(), 50_000);
        let final_snap = ring.snapshot();
        assert_eq!(final_snap.len(), 64);
        assert_eq!(final_snap.last().unwrap().t_ns, 49_999);
    }

    #[test]
    fn pair_spans_reconstructs_nesting() {
        let events = [
            ev("outer", SpanPhase::Begin, 10),
            ev("inner", SpanPhase::Begin, 20),
            ev("inner", SpanPhase::End, 30),
            ev("outer", SpanPhase::End, 50),
        ];
        let spans = pair_spans(&events);
        assert_eq!(
            spans,
            vec![
                CompletedSpan {
                    name: "outer",
                    start_ns: 10,
                    dur_ns: 40,
                    depth: 0
                },
                CompletedSpan {
                    name: "inner",
                    start_ns: 20,
                    dur_ns: 10,
                    depth: 1
                },
            ]
        );
    }

    #[test]
    fn pair_spans_skips_orphan_ends_and_closes_open_spans() {
        // An overflow-truncated stream: the Begin of "lost" is gone,
        // and "open" never ended before the snapshot.
        let events = [
            ev("lost", SpanPhase::End, 5),
            ev("open", SpanPhase::Begin, 10),
            ev("kid", SpanPhase::Begin, 12),
            ev("kid", SpanPhase::End, 14),
        ];
        let spans = pair_spans(&events);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "open");
        assert_eq!(spans[0].dur_ns, 4); // auto-closed at t=14
        assert_eq!(spans[1].name, "kid");
    }

    #[test]
    fn guard_records_begin_end_through_thread_local() {
        let _lock = ENABLE_LOCK.lock().unwrap();
        if !is_enabled() {
            return; // feature off: nothing to observe
        }
        set_thread_label("span-unit-test");
        {
            let _outer = enter("unit_outer");
            let _inner = enter("unit_inner");
        }
        let tracks = snapshot_all();
        let mine = tracks
            .iter()
            .find(|t| t.label == "span-unit-test")
            .expect("own track registered");
        let names: Vec<_> = mine
            .events
            .iter()
            .filter(|e| e.name.starts_with("unit_"))
            .map(|e| (e.name, e.phase))
            .collect();
        assert_eq!(
            names,
            vec![
                ("unit_outer", SpanPhase::Begin),
                ("unit_inner", SpanPhase::Begin),
                ("unit_inner", SpanPhase::End),
                ("unit_outer", SpanPhase::End),
            ]
        );
    }

    #[test]
    fn chrome_export_is_balanced_and_labels_tracks() {
        let track = TrackSnapshot {
            label: "worker0".into(),
            events: vec![
                ev("lost", SpanPhase::End, 1),
                ev("a", SpanPhase::Begin, 2),
                ev("b", SpanPhase::Begin, 3),
                ev("b", SpanPhase::End, 4),
                // "a" left open → auto-closed
            ],
            recorded: 5,
            dropped: 1,
        };
        let evs = chrome_events(std::slice::from_ref(&track));
        let b = evs.iter().filter(|e| e.ph == 'B').count();
        let e = evs.iter().filter(|e| e.ph == 'E').count();
        assert_eq!(b, e, "begin/end balanced");
        let json = chrome_trace_json(&[track]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"worker0\""));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        const NAMES: [&str; 3] = ["alpha", "beta", "gamma"];

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            // Satellite guarantee: ANY sequence of open/close events —
            // including orphan closes, unclosed opens, and streams
            // truncated by ring overflow — exports to Chrome events
            // that are strictly stack-balanced per track.
            #[test]
            fn chrome_export_balances_arbitrary_streams(
                ops in proptest::collection::vec((0u8..2, 0usize..3), 0..120),
                cap in 2usize..33,
            ) {
                let ring = SpanRing::with_capacity(cap);
                for (t, (kind, name_idx)) in ops.iter().enumerate() {
                    ring.push(SpanEvent {
                        name: NAMES[*name_idx],
                        phase: if *kind == 0 {
                            SpanPhase::Begin
                        } else {
                            SpanPhase::End
                        },
                        t_ns: t as u64,
                    });
                }
                // Overflow bookkeeping stays consistent.
                prop_assert_eq!(ring.recorded(), ops.len() as u64);
                let events = ring.snapshot();
                prop_assert_eq!(
                    ring.dropped(),
                    (ops.len() as u64).saturating_sub(ring.capacity() as u64)
                );
                prop_assert_eq!(
                    events.len() as u64,
                    ring.recorded() - ring.dropped()
                );
                // Oldest events were the ones dropped: the survivors
                // are exactly the stream's suffix.
                for (i, e) in events.iter().enumerate() {
                    prop_assert_eq!(e.t_ns, ring.dropped() + i as u64);
                }

                let track = TrackSnapshot {
                    label: "prop".into(),
                    events: events.clone(),
                    recorded: ring.recorded(),
                    dropped: ring.dropped(),
                };
                let chrome = chrome_events(std::slice::from_ref(&track));
                let mut stack: Vec<&str> = Vec::new();
                let mut last_ts = 0u64;
                for ev in &chrome {
                    prop_assert!(ev.ts_ns >= last_ts, "timestamps regress");
                    last_ts = ev.ts_ns;
                    match ev.ph {
                        'B' => stack.push(ev.name),
                        'E' => prop_assert_eq!(stack.pop(), Some(ev.name)),
                        other => prop_assert!(false, "bad phase {}", other),
                    }
                }
                prop_assert!(stack.is_empty(), "unbalanced export");

                // pair_spans agrees: it never invents spans.
                let spans = pair_spans(&events);
                let begins = events
                    .iter()
                    .filter(|e| e.phase == SpanPhase::Begin)
                    .count();
                prop_assert!(spans.len() <= begins);
            }
        }
    }

    #[test]
    fn disabled_recording_emits_nothing() {
        let _lock = ENABLE_LOCK.lock().unwrap();
        if !is_enabled() {
            return;
        }
        set_thread_label("span-disable-test");
        set_enabled(false);
        {
            let _g = enter("should_not_appear");
        }
        set_enabled(true);
        let tracks = snapshot_all();
        let mine = tracks
            .iter()
            .find(|t| t.label == "span-disable-test")
            .expect("track exists");
        assert!(
            mine.events.iter().all(|e| e.name != "should_not_appear"),
            "no events while disabled"
        );
    }
}
