//! The CAT model of rate heterogeneity (§VII extension).
//!
//! Under CAT (Stamatakis 2006) every site evolves at a single rate
//! drawn from a small set of categories, instead of integrating over
//! four Γ categories. The per-site CLA stride shrinks from 16 to 4
//! doubles (32 bytes) — which is why §V-B2 warns that "under the CAT
//! model ... special care must be taken to keep accesses aligned": a
//! 4-double site no longer starts at a 64-byte boundary.
//!
//! This engine is the correctness-first implementation of that model:
//! per-branch transition matrices are precomputed per rate *category*
//! (as RAxML does), each site selects its category's matrix, and the
//! branch-length derivatives carry a per-site `e^{λ_j r_i t}` (the
//! exponential table can no longer be shared across sites, another
//! CAT cost the paper's Γ-only kernels avoid).

use crate::aligned::AlignedVec;
use crate::scaling::{LN_SCALE, SCALE_FACTOR, SCALE_THRESHOLD};
use crate::NUM_STATES;
use phylo_models::{CatRates, Eigensystem};
use phylo_tree::traverse::{children, full_schedule};
use phylo_tree::{EdgeId, NodeId, Tree};

/// CLA stride per site under CAT: 4 doubles (32 bytes).
pub const CAT_STRIDE: usize = NUM_STATES;

/// A likelihood engine under the CAT approximation.
pub struct CatEngine {
    eigen: Eigensystem,
    rates: CatRates,
    /// Per tree-tip-id rows of 4-bit codes over patterns.
    tips: Vec<Vec<u8>>,
    weights: Vec<u32>,
    num_patterns: usize,
    num_taxa: usize,
    clas: Vec<AlignedVec>,
    scales: Vec<Vec<u32>>,
    sumtable: AlignedVec,
    sum_ready: bool,
}

impl CatEngine {
    /// Builds a CAT engine. `rates` assigns every pattern a category.
    pub fn new(
        tree: &Tree,
        eigen: Eigensystem,
        rates: CatRates,
        tips: Vec<Vec<u8>>,
        weights: Vec<u32>,
    ) -> Self {
        let num_patterns = weights.len();
        assert_eq!(rates.num_sites(), num_patterns, "one rate per pattern");
        assert_eq!(tips.len(), tree.num_taxa(), "one tip row per taxon");
        for row in &tips {
            assert_eq!(row.len(), num_patterns);
            assert!(row.iter().all(|&c| (1..16).contains(&c)));
        }
        CatEngine {
            eigen,
            rates,
            tips,
            weights,
            num_patterns,
            num_taxa: tree.num_taxa(),
            clas: (0..tree.num_inner())
                .map(|_| AlignedVec::zeroed(num_patterns * CAT_STRIDE))
                .collect(),
            scales: vec![vec![0; num_patterns]; tree.num_inner()],
            sumtable: AlignedVec::zeroed(num_patterns * CAT_STRIDE),
            sum_ready: false,
        }
    }

    /// The per-site rate assignment.
    pub fn rates(&self) -> &CatRates {
        &self.rates
    }

    fn inner_idx(&self, node: NodeId) -> usize {
        node - self.num_taxa
    }

    /// Per-category transition matrices for one branch.
    fn pmats(&self, t: f64) -> Vec<[[f64; NUM_STATES]; NUM_STATES]> {
        self.rates
            .rates()
            .iter()
            .map(|&r| self.eigen.prob_matrix(t, r))
            .collect()
    }

    fn newview(&mut self, tree: &Tree, node: NodeId, toward: EdgeId) {
        let ch = children(tree, node, toward);
        let pm = [
            self.pmats(tree.length(ch[0].0)),
            self.pmats(tree.length(ch[1].0)),
        ];
        let idx = self.inner_idx(node);
        let mut out = std::mem::replace(&mut self.clas[idx], AlignedVec::zeroed(0));
        let mut scale = std::mem::take(&mut self.scales[idx]);

        for i in 0..self.num_patterns {
            let cat = self.rates.site_category(i);
            let site = &mut out[i * CAT_STRIDE..(i + 1) * CAT_STRIDE];
            let mut scale_in = 0u32;
            for (c, &(_, child)) in ch.iter().enumerate() {
                let p = &pm[c][cat];
                if tree.is_tip(child) {
                    let code = self.tips[child][i];
                    for a in 0..NUM_STATES {
                        let mut v = 0.0;
                        for b in 0..NUM_STATES {
                            if code & (1 << b) != 0 {
                                v += p[a][b];
                            }
                        }
                        if c == 0 {
                            site[a] = v;
                        } else {
                            site[a] *= v;
                        }
                    }
                } else {
                    let cidx = self.inner_idx(child);
                    scale_in += self.scales[cidx][i];
                    let cv = &self.clas[cidx][i * CAT_STRIDE..(i + 1) * CAT_STRIDE];
                    for a in 0..NUM_STATES {
                        let mut v = 0.0;
                        for b in 0..NUM_STATES {
                            v += p[a][b] * cv[b];
                        }
                        if c == 0 {
                            site[a] = v;
                        } else {
                            site[a] *= v;
                        }
                    }
                }
            }
            let max = site.iter().cloned().fold(0.0f64, f64::max);
            if max < SCALE_THRESHOLD {
                for v in site.iter_mut() {
                    *v *= SCALE_FACTOR;
                }
                scale_in += 1;
            }
            scale[i] = scale_in;
        }

        self.clas[idx] = out;
        self.scales[idx] = scale;
    }

    /// Recomputes all CLAs oriented toward `root_edge`.
    pub fn update_partials(&mut self, tree: &Tree, root_edge: EdgeId) {
        for d in full_schedule(tree, root_edge) {
            self.newview(tree, d.node, d.toward_edge);
        }
        self.sum_ready = false;
    }

    /// Log-likelihood with the virtual root on `root_edge`.
    pub fn log_likelihood(&mut self, tree: &Tree, root_edge: EdgeId) -> f64 {
        self.site_log_likelihoods(tree, root_edge)
            .iter()
            .zip(&self.weights)
            .map(|(l, &w)| w as f64 * l)
            .sum()
    }

    /// Per-pattern log-likelihoods (unweighted) — the quantity the CAT
    /// rate-estimation procedure maximizes site by site.
    pub fn site_log_likelihoods(&mut self, tree: &Tree, root_edge: EdgeId) -> Vec<f64> {
        self.update_partials(tree, root_edge);
        let (a, b) = tree.endpoints(root_edge);
        let (q, r) = if tree.is_tip(a) { (a, b) } else { (b, a) };
        let pm = self.pmats(tree.length(root_edge));
        let pi = self.eigen.freqs();
        let ridx = self.inner_idx(r);

        let mut out = Vec::with_capacity(self.num_patterns);
        for i in 0..self.num_patterns {
            let cat = self.rates.site_category(i);
            let p = &pm[cat];
            let rv = &self.clas[ridx][i * CAT_STRIDE..(i + 1) * CAT_STRIDE];
            let mut sc = self.scales[ridx][i] as f64;
            let mut site = 0.0;
            if tree.is_tip(q) {
                let code = self.tips[q][i];
                for a_state in 0..NUM_STATES {
                    if code & (1 << a_state) == 0 {
                        continue;
                    }
                    let mut x = 0.0;
                    for b_state in 0..NUM_STATES {
                        x += p[a_state][b_state] * rv[b_state];
                    }
                    site += pi[a_state] * x;
                }
            } else {
                let qidx = self.inner_idx(q);
                sc += self.scales[qidx][i] as f64;
                let qv = &self.clas[qidx][i * CAT_STRIDE..(i + 1) * CAT_STRIDE];
                for a_state in 0..NUM_STATES {
                    let mut x = 0.0;
                    for b_state in 0..NUM_STATES {
                        x += p[a_state][b_state] * rv[b_state];
                    }
                    site += pi[a_state] * qv[a_state] * x;
                }
            }
            out.push(site.max(f64::MIN_POSITIVE).ln() - sc * LN_SCALE);
        }
        out
    }

    /// Prepares the eigen-space sum table for `edge` (CAT
    /// `derivativeSum`).
    pub fn prepare_branch(&mut self, tree: &Tree, edge: EdgeId) {
        self.update_partials(tree, edge);
        let (a, b) = tree.endpoints(edge);
        let (q, r) = if tree.is_tip(a) { (a, b) } else { (b, a) };
        let pi = *self.eigen.freqs();
        let u = *self.eigen.u();
        let ui = *self.eigen.u_inv();
        let ridx = self.inner_idx(r);

        let mut sum = std::mem::replace(&mut self.sumtable, AlignedVec::zeroed(0));
        for i in 0..self.num_patterns {
            let rv = &self.clas[ridx][i * CAT_STRIDE..(i + 1) * CAT_STRIDE];
            let site = &mut sum[i * CAT_STRIDE..(i + 1) * CAT_STRIDE];
            for j in 0..NUM_STATES {
                let mut le = 0.0;
                if tree.is_tip(q) {
                    let code = self.tips[q][i];
                    for a_state in 0..NUM_STATES {
                        if code & (1 << a_state) != 0 {
                            le += pi[a_state] * u[a_state][j];
                        }
                    }
                } else {
                    let qidx = self.inner_idx(q);
                    let qv = &self.clas[qidx][i * CAT_STRIDE..(i + 1) * CAT_STRIDE];
                    for a_state in 0..NUM_STATES {
                        le += qv[a_state] * pi[a_state] * u[a_state][j];
                    }
                }
                let mut re = 0.0;
                for b_state in 0..NUM_STATES {
                    re += ui[j][b_state] * rv[b_state];
                }
                site[j] = le * re;
            }
        }
        self.sumtable = sum;
        self.sum_ready = true;
    }

    /// First and second derivatives at branch length `t` for the
    /// prepared branch. Unlike the Γ kernels, the exponentials carry a
    /// per-site rate.
    pub fn branch_derivatives(&self, t: f64) -> (f64, f64) {
        assert!(self.sum_ready, "prepare_branch must run first");
        let vals = self.eigen.values();
        // Per-category exponential tables (categories are few).
        let tables: Vec<[[f64; NUM_STATES]; 3]> = self
            .rates
            .rates()
            .iter()
            .map(|&r| {
                let mut e = [0.0; NUM_STATES];
                let mut d1 = [0.0; NUM_STATES];
                let mut d2 = [0.0; NUM_STATES];
                for j in 0..NUM_STATES {
                    let lr = vals[j] * r;
                    let ex = (lr * t).exp();
                    e[j] = ex;
                    d1[j] = lr * ex;
                    d2[j] = lr * lr * ex;
                }
                [e, d1, d2]
            })
            .collect();

        let mut dlnl = 0.0;
        let mut d2lnl = 0.0;
        for i in 0..self.num_patterns {
            let cat = self.rates.site_category(i);
            let [e, d1, d2] = &tables[cat];
            let s = &self.sumtable[i * CAT_STRIDE..(i + 1) * CAT_STRIDE];
            let mut l = 0.0;
            let mut l1 = 0.0;
            let mut l2 = 0.0;
            for j in 0..NUM_STATES {
                l += s[j] * e[j];
                l1 += s[j] * d1[j];
                l2 += s[j] * d2[j];
            }
            let l = l.max(f64::MIN_POSITIVE);
            let w = self.weights[i] as f64;
            let r1 = l1 / l;
            dlnl += w * r1;
            d2lnl += w * (l2 / l - r1 * r1);
        }
        (dlnl, d2lnl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use phylo_models::{Gtr, GtrParams};
    use phylo_tree::newick;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn fixture(seed: u64) -> (Tree, Vec<Vec<u8>>, Vec<u32>, CatRates, Gtr) {
        let tree = newick::parse("((a:0.2,b:0.35):0.1,c:0.15,(d:0.25,e:0.05):0.3);").unwrap();
        let gtr = Gtr::new(GtrParams {
            rates: [1.4, 2.2, 0.7, 1.3, 3.0, 1.0],
            freqs: [0.27, 0.23, 0.25, 0.25],
        });
        let mut rng = SmallRng::seed_from_u64(seed);
        let patterns = 30;
        let tips: Vec<Vec<u8>> = (0..5)
            .map(|_| {
                (0..patterns)
                    .map(|_| [1u8, 2, 4, 8, 15, 5][rng.random_range(0..6usize)])
                    .collect()
            })
            .collect();
        let cats = CatRates::new(
            vec![0.2, 0.7, 1.4, 3.1],
            (0..patterns).map(|_| rng.random_range(0..4)).collect(),
        );
        (tree, tips, vec![1; patterns as usize], cats, gtr)
    }

    /// Brute-force CAT oracle: each pattern is evaluated by the Γ
    /// brute-forcer with all four category rates pinned to the site's
    /// own rate (averaging identical categories is the identity).
    fn naive_cat(
        tree: &Tree,
        gtr: &Gtr,
        cats: &CatRates,
        tips: &[Vec<u8>],
        weights: &[u32],
    ) -> f64 {
        let mut total = 0.0;
        for i in 0..weights.len() {
            let r = cats.site_rate(i);
            let one_pattern: Vec<Vec<u8>> = tips.iter().map(|row| vec![row[i]]).collect();
            total += naive::log_likelihood(
                tree,
                gtr.eigen(),
                &[r, r, r, r],
                &one_pattern,
                &[weights[i]],
            );
        }
        total
    }

    #[test]
    fn matches_brute_force_every_root_edge() {
        let (tree, tips, weights, cats, gtr) = fixture(11);
        let reference = naive_cat(&tree, &gtr, &cats, &tips, &weights);
        let mut engine = CatEngine::new(&tree, gtr.eigen().clone(), cats, tips, weights);
        for e in tree.edge_ids() {
            let ll = engine.log_likelihood(&tree, e);
            assert!(
                (ll - reference).abs() < 1e-8,
                "edge {e}: {ll} vs {reference}"
            );
        }
    }

    #[test]
    fn homogeneous_cat_equals_single_rate() {
        // CAT with one rate-1 category: per-site likelihood is the
        // plain no-heterogeneity PLF; cross-check with brute force.
        let (tree, tips, weights, _, gtr) = fixture(13);
        let cats = CatRates::homogeneous(weights.len());
        let reference = naive_cat(&tree, &gtr, &cats, &tips, &weights);
        let mut engine = CatEngine::new(&tree, gtr.eigen().clone(), cats, tips, weights);
        let ll = engine.log_likelihood(&tree, 0);
        assert!((ll - reference).abs() < 1e-8, "{ll} vs {reference}");
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let (tree, tips, weights, cats, gtr) = fixture(17);
        let mut engine = CatEngine::new(&tree, gtr.eigen().clone(), cats, tips, weights);
        for edge in [0usize, 4] {
            engine.prepare_branch(&tree, edge);
            let t0 = tree.length(edge);
            let (d1, d2) = engine.branch_derivatives(t0);
            let h = 1e-5;
            let mut ll = |t: f64| {
                let mut tt = tree.clone();
                tt.set_length(edge, t).unwrap();
                engine.log_likelihood(&tt, edge)
            };
            let (lp, lm, l0) = (ll(t0 + h), ll(t0 - h), ll(t0));
            let fd1 = (lp - lm) / (2.0 * h);
            let fd2 = (lp - 2.0 * l0 + lm) / (h * h);
            assert!((d1 - fd1).abs() < 1e-3 * (1.0 + fd1.abs()), "edge {edge}");
            assert!((d2 - fd2).abs() < 1e-2 * (1.0 + fd2.abs()), "edge {edge}");
        }
    }

    #[test]
    fn rate_assignment_mismatch_rejected() {
        let (tree, tips, weights, _, gtr) = fixture(19);
        let bad = CatRates::homogeneous(weights.len() + 1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            CatEngine::new(&tree, gtr.eigen().clone(), bad, tips, weights)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn faster_sites_lose_more_likelihood_on_long_trees() {
        // Sanity: with identical data per site, high-rate sites are
        // "more evolved" and (for identical tip characters) less
        // likely.
        let tree = newick::parse("(a:0.5,b:0.5,c:0.5);").unwrap();
        let tips: Vec<Vec<u8>> = vec![vec![1, 1], vec![1, 1], vec![1, 1]]; // all 'A'
        let gtr = Gtr::new(GtrParams::jc69());
        let cats = CatRates::new(vec![0.1, 4.0], vec![0, 1]);
        let mut engine = CatEngine::new(&tree, gtr.eigen().clone(), cats, tips, vec![1, 1]);
        engine.update_partials(&tree, 0);
        // Compare per-site contributions by weighting tricks: weight
        // only site 0, then only site 1.
        let slow = {
            let (tree2, tips2) = (tree.clone(), vec![vec![1u8], vec![1], vec![1]]);
            let cats = CatRates::new(vec![0.1], vec![0]);
            let mut e = CatEngine::new(&tree2, gtr.eigen().clone(), cats, tips2, vec![1]);
            e.log_likelihood(&tree2, 0)
        };
        let fast = {
            let (tree2, tips2) = (tree.clone(), vec![vec![1u8], vec![1], vec![1]]);
            let cats = CatRates::new(vec![4.0], vec![0]);
            let mut e = CatEngine::new(&tree2, gtr.eigen().clone(), cats, tips2, vec![1]);
            e.log_likelihood(&tree2, 0)
        };
        assert!(slow > fast, "slow {slow} fast {fast}");
    }
}
