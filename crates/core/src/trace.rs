//! JSONL kernel-timing traces.
//!
//! A trace is a flat JSON-lines file: one event per line, each a small
//! flat object. Event kinds (schema version [`TRACE_VERSION`]):
//!
//! * `meta` — schema version marker, written first.
//! * `kernel` — one source's (a worker thread's or the serial
//!   engine's) accumulated invocations of one kernel: call count,
//!   total pattern-sites, total/min/max wall time, and p50/p95/p99
//!   latency estimates in nanoseconds.
//! * `op` — one source's accumulated invocations of one concrete
//!   kernel entry point ([`crate::cost::KernelOp`]) with its modeled
//!   roofline cost: calls, sites, wall time, flops, bytes read and
//!   written. Achieved GFLOP/s and GB/s are ratios of these fields.
//! * `region` — one source's parallel-region synchronization totals:
//!   region count plus total/max fork- and join-barrier latencies.
//! * `span` — one closed hierarchical span ([`crate::span`]) with its
//!   source track, start, duration and nesting depth.
//! * `metric` — a counter or gauge reading from the
//!   [`crate::metrics`] registry.
//! * `metric_hist` — a histogram metric's summary (count, total,
//!   min/max and quantile estimates).
//!
//! The format is deliberately trivial — flat objects, string and
//! integer values only — so it round-trips through the hand-rolled
//! writer/parser below without a serde dependency, and any external
//! tool (`jq`, pandas) reads it directly. Parsing is
//! forward-compatible: unknown keys are ignored and unknown event
//! types (or kernel names) parse to [`TraceEvent::Unknown`], which
//! [`parse_jsonl`] silently drops — a v1 reader of a v3 file keeps
//! every event it understands. `micsim::calibration` loads these
//! events to fit measured per-call and per-site kernel costs,
//! replacing its hardware-derived defaults with numbers observed on
//! the actual host (`phylomic --trace-out` writes them).

use crate::instrument::{KernelId, KernelStats};
use crate::metrics::{MetricSample, MetricValue};
use crate::span::TrackSnapshot;
use std::fmt::Write as _;

/// Current trace schema version, recorded in the leading `meta` event.
///
/// Version history: 1 = kernel + region events; 2 = meta/span/metric
/// events, kernel quantile fields; 3 = meta carries the resolved kernel
/// backend so reports attribute timings to an ISA; 4 = meta carries the
/// resolved site-repeat compression mode; 5 = `op` events with modeled
/// roofline cost, and meta carries `spans_dropped` plus the host
/// roofline (`roofline_mflops` / `roofline_mbps`, 0 = uncalibrated);
/// 6 = meta carries the resolved replicated-search transport and its
/// measured per-collective wire time (`transport`, `wire_ops`,
/// `wire_ns`), so `trace-report` can place the measured AllReduce
/// latency next to micsim's modeled interconnect cost.
pub const TRACE_VERSION: u64 = 6;

/// One line of a trace file.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// Schema version marker (first line of a trace document).
    Meta {
        /// Schema version the writer produced.
        version: u64,
        /// The resolved kernel backend the run used (`"scalar"`,
        /// `"vector"`, `"simd"`); empty when read from a pre-v3 trace.
        backend: String,
        /// The resolved site-repeat compression mode (`"on"`, `"off"`
        /// or `"auto"`); empty when read from a pre-v4 trace.
        site_repeats: String,
        /// Span events lost to per-thread ring overflow before export
        /// (summed over tracks); 0 when nothing was dropped or when
        /// read from a pre-v5 trace.
        spans_dropped: u64,
        /// Calibrated host peak in MFLOP/s (`plf-prof` FMA probe);
        /// 0 when the host was not calibrated or pre-v5. Integer
        /// milli-G units keep the flat integer trace grammar.
        roofline_mflops: u64,
        /// Calibrated host STREAM-triad bandwidth in MB/s; 0 when
        /// uncalibrated or pre-v5.
        roofline_mbps: u64,
        /// The replicated-search transport that ran the collectives
        /// (`"threads"`, `"uds"`, `"tcp"`); empty for non-replicated
        /// runs or pre-v6 traces.
        transport: String,
        /// Collectives measured at the communicator call boundary,
        /// summed over ranks; 0 for non-replicated runs or pre-v6.
        wire_ops: u64,
        /// Total wall time those collectives spent "on the wire",
        /// nanoseconds summed over ranks; 0 when `wire_ops` is 0.
        wire_ns: u64,
    },
    /// Accumulated timing of one kernel at one source.
    Kernel {
        /// Where the stats came from (e.g. `"serial"`, `"worker3"`).
        source: String,
        /// Which kernel.
        kernel: KernelId,
        /// Invocation count.
        calls: u64,
        /// Total pattern-sites across the invocations.
        sites: u64,
        /// Summed wall time of the invocations, nanoseconds.
        total_ns: u64,
        /// Fastest single invocation, nanoseconds.
        min_ns: u64,
        /// Slowest single invocation, nanoseconds.
        max_ns: u64,
        /// Median invocation latency estimate, ns (0 if unknown).
        p50_ns: u64,
        /// 95th-percentile latency estimate, ns (0 if unknown).
        p95_ns: u64,
        /// 99th-percentile latency estimate, ns (0 if unknown).
        p99_ns: u64,
    },
    /// Accumulated cost-model roofline numbers of one concrete kernel
    /// entry point at one source (schema v5).
    Op {
        /// Where the stats came from (e.g. `"serial"`, `"worker3"`).
        source: String,
        /// Which entry point.
        op: crate::cost::KernelOp,
        /// Invocation count.
        calls: u64,
        /// Total pattern-sites across the invocations.
        sites: u64,
        /// Summed wall time of the invocations, nanoseconds.
        total_ns: u64,
        /// Modeled floating-point operations.
        flops: u64,
        /// Modeled bytes read.
        bytes_read: u64,
        /// Modeled bytes written.
        bytes_written: u64,
    },
    /// Accumulated fork/join latency of one source's parallel regions.
    Region {
        /// Where the stats came from (usually `"master"`).
        source: String,
        /// Number of parallel regions.
        count: u64,
        /// Summed fork-barrier latency, nanoseconds.
        fork_total_ns: u64,
        /// Slowest fork, nanoseconds.
        fork_max_ns: u64,
        /// Summed join-barrier latency, nanoseconds.
        join_total_ns: u64,
        /// Slowest join, nanoseconds.
        join_max_ns: u64,
    },
    /// One closed hierarchical span from a worker/master timeline.
    Span {
        /// Track label (e.g. `"master"`, `"worker2"`).
        source: String,
        /// Span name (e.g. `"spr_round"`, `"newview"`).
        name: String,
        /// Begin timestamp, ns since the process trace epoch.
        start_ns: u64,
        /// Duration, nanoseconds.
        dur_ns: u64,
        /// Nesting depth (0 = outermost).
        depth: u64,
    },
    /// A counter or gauge reading.
    Metric {
        /// Where the snapshot was taken (usually `"process"`).
        source: String,
        /// Registered dotted metric name.
        name: String,
        /// `"counter"` or `"gauge"` (other kinds tolerated on parse).
        kind: String,
        /// Value at snapshot time.
        value: u64,
    },
    /// A histogram metric's summary.
    MetricHist {
        /// Where the snapshot was taken (usually `"process"`).
        source: String,
        /// Registered dotted metric name.
        name: String,
        /// Samples recorded.
        count: u64,
        /// Sum of samples, nanoseconds.
        total_ns: u64,
        /// Smallest sample, ns.
        min_ns: u64,
        /// Largest sample, ns.
        max_ns: u64,
        /// Median estimate, ns.
        p50_ns: u64,
        /// 95th-percentile estimate, ns.
        p95_ns: u64,
        /// 99th-percentile estimate, ns.
        p99_ns: u64,
    },
    /// An event this reader does not understand (future schema
    /// version). Preserved by [`TraceEvent::from_json`] so callers can
    /// count them; dropped by [`parse_jsonl`].
    Unknown {
        /// The unrecognized `type` field (or `"kernel"` for a kernel
        /// event naming an unknown kernel).
        event_type: String,
    },
}

impl TraceEvent {
    /// Serializes the event as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        match self {
            TraceEvent::Meta {
                version,
                backend,
                site_repeats,
                spans_dropped,
                roofline_mflops,
                roofline_mbps,
                transport,
                wire_ops,
                wire_ns,
            } => {
                let _ = write!(
                    s,
                    r#"{{"type":"meta","version":{version},"backend":"{}","site_repeats":"{}","spans_dropped":{spans_dropped},"roofline_mflops":{roofline_mflops},"roofline_mbps":{roofline_mbps},"transport":"{}","wire_ops":{wire_ops},"wire_ns":{wire_ns}}}"#,
                    escape(backend),
                    escape(site_repeats),
                    escape(transport)
                );
            }
            TraceEvent::Kernel {
                source,
                kernel,
                calls,
                sites,
                total_ns,
                min_ns,
                max_ns,
                p50_ns,
                p95_ns,
                p99_ns,
            } => {
                let _ = write!(
                    s,
                    r#"{{"type":"kernel","source":"{}","kernel":"{}","calls":{},"sites":{},"total_ns":{},"min_ns":{},"max_ns":{},"p50_ns":{},"p95_ns":{},"p99_ns":{}}}"#,
                    escape(source),
                    kernel.paper_name(),
                    calls,
                    sites,
                    total_ns,
                    min_ns,
                    max_ns,
                    p50_ns,
                    p95_ns,
                    p99_ns
                );
            }
            TraceEvent::Op {
                source,
                op,
                calls,
                sites,
                total_ns,
                flops,
                bytes_read,
                bytes_written,
            } => {
                let _ = write!(
                    s,
                    r#"{{"type":"op","source":"{}","op":"{}","calls":{},"sites":{},"total_ns":{},"flops":{},"bytes_read":{},"bytes_written":{}}}"#,
                    escape(source),
                    op.name(),
                    calls,
                    sites,
                    total_ns,
                    flops,
                    bytes_read,
                    bytes_written
                );
            }
            TraceEvent::Region {
                source,
                count,
                fork_total_ns,
                fork_max_ns,
                join_total_ns,
                join_max_ns,
            } => {
                let _ = write!(
                    s,
                    r#"{{"type":"region","source":"{}","count":{},"fork_total_ns":{},"fork_max_ns":{},"join_total_ns":{},"join_max_ns":{}}}"#,
                    escape(source),
                    count,
                    fork_total_ns,
                    fork_max_ns,
                    join_total_ns,
                    join_max_ns
                );
            }
            TraceEvent::Span {
                source,
                name,
                start_ns,
                dur_ns,
                depth,
            } => {
                let _ = write!(
                    s,
                    r#"{{"type":"span","source":"{}","name":"{}","start_ns":{},"dur_ns":{},"depth":{}}}"#,
                    escape(source),
                    escape(name),
                    start_ns,
                    dur_ns,
                    depth
                );
            }
            TraceEvent::Metric {
                source,
                name,
                kind,
                value,
            } => {
                let _ = write!(
                    s,
                    r#"{{"type":"metric","source":"{}","name":"{}","kind":"{}","value":{}}}"#,
                    escape(source),
                    escape(name),
                    escape(kind),
                    value
                );
            }
            TraceEvent::MetricHist {
                source,
                name,
                count,
                total_ns,
                min_ns,
                max_ns,
                p50_ns,
                p95_ns,
                p99_ns,
            } => {
                let _ = write!(
                    s,
                    r#"{{"type":"metric_hist","source":"{}","name":"{}","count":{},"total_ns":{},"min_ns":{},"max_ns":{},"p50_ns":{},"p95_ns":{},"p99_ns":{}}}"#,
                    escape(source),
                    escape(name),
                    count,
                    total_ns,
                    min_ns,
                    max_ns,
                    p50_ns,
                    p95_ns,
                    p99_ns
                );
            }
            TraceEvent::Unknown { event_type } => {
                let _ = write!(s, r#"{{"type":"{}"}}"#, escape(event_type));
            }
        }
        s
    }

    /// Parses one JSON line back into an event.
    pub fn from_json(line: &str) -> Result<TraceEvent, TraceError> {
        let fields = parse_flat_object(line)?;
        let get = |k: &str| -> Result<&JsonValue, TraceError> {
            fields
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v)
                .ok_or_else(|| TraceError(format!("missing field {k:?} in {line:?}")))
        };
        let get_u64 = |k: &str| -> Result<u64, TraceError> {
            match get(k)? {
                JsonValue::Int(n) => Ok(*n),
                JsonValue::Str(_) => Err(TraceError(format!("field {k:?} must be an integer"))),
            }
        };
        let get_str = |k: &str| -> Result<&str, TraceError> {
            match get(k)? {
                JsonValue::Str(s) => Ok(s),
                JsonValue::Int(_) => Err(TraceError(format!("field {k:?} must be a string"))),
            }
        };
        // Absent numeric fields default to 0 so a reader of this
        // version accepts events written before the field existed
        // (e.g. v1 kernel events without quantiles).
        let get_u64_or_0 = |k: &str| -> Result<u64, TraceError> {
            match fields.iter().find(|(key, _)| key == k) {
                None => Ok(0),
                Some((_, JsonValue::Int(n))) => Ok(*n),
                Some((_, JsonValue::Str(_))) => {
                    Err(TraceError(format!("field {k:?} must be an integer")))
                }
            }
        };
        // Absent string fields default to empty so meta events from
        // older schema versions still parse (backend is pre-v3,
        // site_repeats pre-v4).
        let get_str_or_empty = |k: &str| -> Result<String, TraceError> {
            match fields.iter().find(|(key, _)| key == k) {
                Some((_, JsonValue::Str(s))) => Ok(s.clone()),
                Some((_, JsonValue::Int(_))) => {
                    Err(TraceError(format!("field {k:?} must be a string")))
                }
                None => Ok(String::new()),
            }
        };
        match get_str("type")? {
            "meta" => Ok(TraceEvent::Meta {
                version: get_u64("version")?,
                backend: get_str_or_empty("backend")?,
                site_repeats: get_str_or_empty("site_repeats")?,
                // Pre-v5 metas carry none of these; default to 0.
                spans_dropped: get_u64_or_0("spans_dropped")?,
                roofline_mflops: get_u64_or_0("roofline_mflops")?,
                roofline_mbps: get_u64_or_0("roofline_mbps")?,
                // Pre-v6: no transport/wire fields.
                transport: get_str_or_empty("transport")?,
                wire_ops: get_u64_or_0("wire_ops")?,
                wire_ns: get_u64_or_0("wire_ns")?,
            }),
            "kernel" => {
                let name = get_str("kernel")?;
                let Some(kernel) = KernelId::ALL.into_iter().find(|k| k.paper_name() == name)
                else {
                    // A kernel this reader predates: skippable, not fatal.
                    return Ok(TraceEvent::Unknown {
                        event_type: format!("kernel:{name}"),
                    });
                };
                Ok(TraceEvent::Kernel {
                    source: get_str("source")?.to_string(),
                    kernel,
                    calls: get_u64("calls")?,
                    sites: get_u64("sites")?,
                    total_ns: get_u64("total_ns")?,
                    min_ns: get_u64("min_ns")?,
                    max_ns: get_u64("max_ns")?,
                    p50_ns: get_u64_or_0("p50_ns")?,
                    p95_ns: get_u64_or_0("p95_ns")?,
                    p99_ns: get_u64_or_0("p99_ns")?,
                })
            }
            "op" => {
                let name = get_str("op")?;
                let Some(op) = crate::cost::KernelOp::from_name(name) else {
                    // An entry point this reader predates.
                    return Ok(TraceEvent::Unknown {
                        event_type: format!("op:{name}"),
                    });
                };
                Ok(TraceEvent::Op {
                    source: get_str("source")?.to_string(),
                    op,
                    calls: get_u64("calls")?,
                    sites: get_u64("sites")?,
                    total_ns: get_u64("total_ns")?,
                    flops: get_u64_or_0("flops")?,
                    bytes_read: get_u64_or_0("bytes_read")?,
                    bytes_written: get_u64_or_0("bytes_written")?,
                })
            }
            "region" => Ok(TraceEvent::Region {
                source: get_str("source")?.to_string(),
                count: get_u64("count")?,
                fork_total_ns: get_u64("fork_total_ns")?,
                fork_max_ns: get_u64("fork_max_ns")?,
                join_total_ns: get_u64("join_total_ns")?,
                join_max_ns: get_u64("join_max_ns")?,
            }),
            "span" => Ok(TraceEvent::Span {
                source: get_str("source")?.to_string(),
                name: get_str("name")?.to_string(),
                start_ns: get_u64("start_ns")?,
                dur_ns: get_u64("dur_ns")?,
                depth: get_u64_or_0("depth")?,
            }),
            "metric" => Ok(TraceEvent::Metric {
                source: get_str("source")?.to_string(),
                name: get_str("name")?.to_string(),
                kind: get_str("kind")?.to_string(),
                value: get_u64("value")?,
            }),
            "metric_hist" => Ok(TraceEvent::MetricHist {
                source: get_str("source")?.to_string(),
                name: get_str("name")?.to_string(),
                count: get_u64("count")?,
                total_ns: get_u64("total_ns")?,
                min_ns: get_u64_or_0("min_ns")?,
                max_ns: get_u64_or_0("max_ns")?,
                p50_ns: get_u64_or_0("p50_ns")?,
                p95_ns: get_u64_or_0("p95_ns")?,
                p99_ns: get_u64_or_0("p99_ns")?,
            }),
            other => Ok(TraceEvent::Unknown {
                event_type: other.to_string(),
            }),
        }
    }
}

/// A malformed trace line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError(pub String);

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error: {}", self.0)
    }
}

impl std::error::Error for TraceError {}

/// Converts one source's [`KernelStats`] into trace events: one
/// `kernel` event per kernel with at least one call, one `op` event
/// per concrete entry point with at least one call (carrying the
/// modeled roofline cost), plus one `region` event if any parallel
/// regions were recorded.
pub fn events_from_stats(source: &str, stats: &KernelStats) -> Vec<TraceEvent> {
    let mut out = Vec::new();
    for kernel in KernelId::ALL {
        let c = stats.get(kernel);
        if c.calls == 0 {
            continue;
        }
        let h = stats.timing(kernel);
        out.push(TraceEvent::Kernel {
            source: source.to_string(),
            kernel,
            calls: c.calls,
            sites: c.sites,
            total_ns: h.total_ns(),
            min_ns: h.min_ns().unwrap_or(0),
            max_ns: h.max_ns().unwrap_or(0),
            p50_ns: h.p50_ns().unwrap_or(0),
            p95_ns: h.p95_ns().unwrap_or(0),
            p99_ns: h.p99_ns().unwrap_or(0),
        });
    }
    for op in crate::cost::KernelOp::ALL {
        let o = stats.op(op);
        if o.calls == 0 {
            continue;
        }
        out.push(TraceEvent::Op {
            source: source.to_string(),
            op,
            calls: o.calls,
            sites: o.sites,
            total_ns: o.total_ns,
            flops: o.flops,
            bytes_read: o.bytes_read,
            bytes_written: o.bytes_written,
        });
    }
    let r = stats.regions();
    if r.count > 0 {
        out.push(TraceEvent::Region {
            source: source.to_string(),
            count: r.count,
            fork_total_ns: r.fork.total_ns(),
            fork_max_ns: r.fork.max_ns().unwrap_or(0),
            join_total_ns: r.join.total_ns(),
            join_max_ns: r.join.max_ns().unwrap_or(0),
        });
    }
    out
}

/// Converts per-track span snapshots into `span` trace events (one per
/// closed or auto-closed span), sorted by start time within each
/// track. The track label becomes the event source.
pub fn events_from_spans(tracks: &[TrackSnapshot]) -> Vec<TraceEvent> {
    let mut out = Vec::new();
    for track in tracks {
        for s in crate::span::pair_spans(&track.events) {
            out.push(TraceEvent::Span {
                source: track.label.clone(),
                name: s.name.to_string(),
                start_ns: s.start_ns,
                dur_ns: s.dur_ns,
                depth: s.depth as u64,
            });
        }
    }
    out
}

/// Converts a metrics snapshot ([`crate::metrics::snapshot`]) into
/// `metric` / `metric_hist` trace events attributed to `source`.
pub fn events_from_metrics(source: &str, samples: &[MetricSample]) -> Vec<TraceEvent> {
    samples
        .iter()
        .map(|s| match &s.value {
            MetricValue::Counter(v) => TraceEvent::Metric {
                source: source.to_string(),
                name: s.name.clone(),
                kind: "counter".to_string(),
                value: *v,
            },
            MetricValue::Gauge(v) => TraceEvent::Metric {
                source: source.to_string(),
                name: s.name.clone(),
                kind: "gauge".to_string(),
                value: *v,
            },
            MetricValue::Histogram(h) => TraceEvent::MetricHist {
                source: source.to_string(),
                name: s.name.clone(),
                count: h.count(),
                total_ns: h.total_ns(),
                min_ns: h.min_ns().unwrap_or(0),
                max_ns: h.max_ns().unwrap_or(0),
                p50_ns: h.p50_ns().unwrap_or(0),
                p95_ns: h.p95_ns().unwrap_or(0),
                p99_ns: h.p99_ns().unwrap_or(0),
            },
        })
        .collect()
}

/// Serializes events as a JSONL document (one event per line, trailing
/// newline).
pub fn write_jsonl(events: &[TraceEvent]) -> String {
    let mut s = String::new();
    for e in events {
        s.push_str(&e.to_json());
        s.push('\n');
    }
    s
}

/// Parses a JSONL document; blank lines are skipped, and events of
/// unknown type (a newer schema version) are dropped rather than
/// rejected. Malformed lines still error.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, TraceError> {
    let parsed: Result<Vec<TraceEvent>, TraceError> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(TraceEvent::from_json)
        .collect();
    Ok(parsed?
        .into_iter()
        .filter(|e| !matches!(e, TraceEvent::Unknown { .. }))
        .collect())
}

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

enum JsonValue {
    Str(String),
    Int(u64),
}

/// Parses a single-level JSON object with string and non-negative
/// integer values — the full extent of the trace grammar.
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, TraceError> {
    let bytes = line.trim().as_bytes();
    let err = |msg: &str| TraceError(format!("{msg} in {line:?}"));
    if bytes.first() != Some(&b'{') || bytes.last() != Some(&b'}') {
        return Err(err("not an object"));
    }
    let mut fields = Vec::new();
    let mut i = 1usize;
    let end = bytes.len() - 1;
    loop {
        while i < end && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= end {
            break;
        }
        let (key, next) = parse_string(bytes, i).map_err(&err)?;
        i = next;
        while i < end && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= end || bytes[i] != b':' {
            return Err(err("expected ':'"));
        }
        i += 1;
        while i < end && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let value = if i < end && bytes[i] == b'"' {
            let (s, next) = parse_string(bytes, i).map_err(&err)?;
            i = next;
            JsonValue::Str(s)
        } else {
            let start = i;
            while i < end && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i == start {
                return Err(err("expected string or integer value"));
            }
            let n: u64 = std::str::from_utf8(&bytes[start..i])
                .map_err(|_| err("invalid utf-8 in integer"))?
                .parse()
                .map_err(|_| err("integer out of range"))?;
            JsonValue::Int(n)
        };
        fields.push((key, value));
        while i < end && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < end {
            if bytes[i] != b',' {
                return Err(err("expected ',' between fields"));
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Parses a JSON string starting at `bytes[i] == '"'`; returns the
/// unescaped contents and the index just past the closing quote.
fn parse_string(bytes: &[u8], i: usize) -> Result<(String, usize), &'static str> {
    if bytes.get(i) != Some(&b'"') {
        return Err("expected '\"'");
    }
    let mut out = String::new();
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'"' => return Ok((out, j + 1)),
            b'\\' => {
                j += 1;
                match bytes.get(j) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(j + 1..j + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        out.push(char::from_u32(hex).ok_or("bad \\u codepoint")?);
                        j += 4;
                    }
                    _ => return Err("bad escape"),
                }
                j += 1;
            }
            c => {
                // Multi-byte UTF-8 passes through unchanged.
                let ch_len = match c {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let chunk = bytes.get(j..j + ch_len).ok_or("truncated string")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid utf-8")?);
                j += ch_len;
            }
        }
    }
    Err("unterminated string")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_event_roundtrips() {
        let e = TraceEvent::Kernel {
            source: "worker3".into(),
            kernel: KernelId::Newview,
            calls: 42,
            sites: 7000,
            total_ns: 123_456,
            min_ns: 800,
            max_ns: 9_000,
            p50_ns: 2_000,
            p95_ns: 8_000,
            p99_ns: 8_900,
        };
        let line = e.to_json();
        assert!(line.starts_with(r#"{"type":"kernel""#), "{line}");
        assert!(line.contains(r#""p95_ns":8000"#), "{line}");
        assert_eq!(TraceEvent::from_json(&line).unwrap(), e);
    }

    #[test]
    fn meta_span_and_metric_events_roundtrip() {
        let events = vec![
            TraceEvent::Meta {
                version: TRACE_VERSION,
                backend: "simd".into(),
                site_repeats: "on".into(),
                spans_dropped: 3,
                roofline_mflops: 12_400,
                roofline_mbps: 21_000,
                transport: "uds".into(),
                wire_ops: 42,
                wire_ns: 9_000_000,
            },
            TraceEvent::Span {
                source: "worker1".into(),
                name: "spr_round".into(),
                start_ns: 1_000,
                dur_ns: 250_000,
                depth: 2,
            },
            TraceEvent::Metric {
                source: "process".into(),
                name: "spr.moves.accepted".into(),
                kind: "counter".into(),
                value: 17,
            },
            TraceEvent::MetricHist {
                source: "process".into(),
                name: "barrier.wait_ns".into(),
                count: 12,
                total_ns: 9_000,
                min_ns: 100,
                max_ns: 2_000,
                p50_ns: 600,
                p95_ns: 1_900,
                p99_ns: 2_000,
            },
        ];
        let doc = write_jsonl(&events);
        assert_eq!(parse_jsonl(&doc).unwrap(), events);
    }

    #[test]
    fn region_event_roundtrips() {
        let e = TraceEvent::Region {
            source: "master".into(),
            count: 9,
            fork_total_ns: 100,
            fork_max_ns: 40,
            join_total_ns: 5_000,
            join_max_ns: 900,
        };
        assert_eq!(TraceEvent::from_json(&e.to_json()).unwrap(), e);
    }

    #[test]
    fn jsonl_roundtrips_and_skips_blanks() {
        let events = vec![
            TraceEvent::Kernel {
                source: "serial".into(),
                kernel: KernelId::Evaluate,
                calls: 1,
                sites: 10,
                total_ns: 99,
                min_ns: 99,
                max_ns: 99,
                p50_ns: 99,
                p95_ns: 99,
                p99_ns: 99,
            },
            TraceEvent::Region {
                source: "master".into(),
                count: 2,
                fork_total_ns: 1,
                fork_max_ns: 1,
                join_total_ns: 2,
                join_max_ns: 1,
            },
        ];
        let mut doc = write_jsonl(&events);
        doc.push('\n'); // extra blank line
        assert_eq!(parse_jsonl(&doc).unwrap(), events);
    }

    #[test]
    fn stats_export_covers_active_kernels_and_regions() {
        let mut s = KernelStats::new();
        s.record_timed(KernelId::Newview, 100, 5_000);
        s.record_timed(KernelId::Newview, 100, 7_000);
        s.record_timed(KernelId::Evaluate, 100, 1_000);
        s.record_region(50, 2_000);
        let events = events_from_stats("w0", &s);
        assert_eq!(events.len(), 3); // 2 kernels + 1 region block
        match &events[0] {
            TraceEvent::Kernel {
                kernel,
                calls,
                sites,
                total_ns,
                min_ns,
                max_ns,
                ..
            } => {
                assert_eq!(*kernel, KernelId::Newview);
                assert_eq!((*calls, *sites), (2, 200));
                assert_eq!((*total_ns, *min_ns, *max_ns), (12_000, 5_000, 7_000));
            }
            other => panic!("expected kernel event, got {other:?}"),
        }
        assert!(matches!(
            events.last().unwrap(),
            TraceEvent::Region { count: 1, .. }
        ));
        // Idle kernels produce no events.
        assert!(!write_jsonl(&events).contains("derivativeSum"));
    }

    #[test]
    fn escaped_sources_roundtrip() {
        let e = TraceEvent::Kernel {
            source: "od\"d\\na\tme\u{1}".into(),
            kernel: KernelId::DerivativeCore,
            calls: 1,
            sites: 1,
            total_ns: 1,
            min_ns: 1,
            max_ns: 1,
            p50_ns: 1,
            p95_ns: 1,
            p99_ns: 1,
        };
        assert_eq!(TraceEvent::from_json(&e.to_json()).unwrap(), e);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "not json",
            "{}",
            r#"{"type":"kernel"}"#,
            r#"{"type":"kernel","source":"s","kernel":"newview","calls":"one","sites":1,"total_ns":1,"min_ns":1,"max_ns":1}"#,
        ] {
            assert!(TraceEvent::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn forward_compat_skips_unknown_types_keys_and_kernels() {
        // A "future" document: higher version, an event type we've
        // never heard of, an extra key on a known event, and a kernel
        // name this build doesn't implement.
        let doc = concat!(
            r#"{"type":"meta","version":99}"#,
            "\n",
            r#"{"type":"gpu_kernel","source":"cuda0","warp_ns":123}"#,
            "\n",
            r#"{"type":"kernel","source":"s","kernel":"newview","calls":1,"sites":10,"total_ns":50,"min_ns":50,"max_ns":50,"p50_ns":50,"p95_ns":50,"p99_ns":50,"future_field":7}"#,
            "\n",
            r#"{"type":"kernel","source":"s","kernel":"hyperview","calls":1,"sites":1,"total_ns":1,"min_ns":1,"max_ns":1}"#,
            "\n",
        );
        let events = parse_jsonl(doc).unwrap();
        // The unknown event type and unknown kernel were dropped; the
        // recognizable events survived, extra key ignored.
        assert_eq!(events.len(), 2);
        // Pre-v3/v4 meta without a backend or site_repeats parses with
        // empty strings.
        assert_eq!(
            events[0],
            TraceEvent::Meta {
                version: 99,
                backend: String::new(),
                site_repeats: String::new(),
                spans_dropped: 0,
                roofline_mflops: 0,
                roofline_mbps: 0,
                transport: String::new(),
                wire_ops: 0,
                wire_ns: 0,
            }
        );
        assert!(
            matches!(&events[1], TraceEvent::Kernel { kernel, calls: 1, .. }
                if *kernel == KernelId::Newview)
        );
        // from_json exposes the skipped ones as Unknown.
        assert_eq!(
            TraceEvent::from_json(r#"{"type":"gpu_kernel","source":"x"}"#).unwrap(),
            TraceEvent::Unknown {
                event_type: "gpu_kernel".into()
            }
        );
    }

    #[test]
    fn op_event_roundtrips_and_unknown_op_degrades() {
        let e = TraceEvent::Op {
            source: "worker0".into(),
            op: crate::cost::KernelOp::NewviewIi,
            calls: 12,
            sites: 12_000,
            total_ns: 3_264_000,
            flops: 3_264_000,
            bytes_read: 3_168_000,
            bytes_written: 1_584_000,
        };
        let line = e.to_json();
        assert!(line.contains(r#""op":"newview_ii""#), "{line}");
        assert_eq!(TraceEvent::from_json(&line).unwrap(), e);
        // An op name from a future schema degrades to Unknown instead
        // of failing the whole file.
        assert_eq!(
            TraceEvent::from_json(
                r#"{"type":"op","source":"s","op":"newview_quantum","calls":1,"sites":1,"total_ns":1,"flops":1,"bytes_read":1,"bytes_written":1}"#
            )
            .unwrap(),
            TraceEvent::Unknown {
                event_type: "op:newview_quantum".into()
            }
        );
    }

    #[test]
    fn v4_meta_lines_parse_under_v6_reader() {
        // Exactly what a v4 writer produced: no spans_dropped, no
        // roofline fields, no transport/wire fields.
        let line = r#"{"type":"meta","version":4,"backend":"vector","site_repeats":"off"}"#;
        assert_eq!(
            TraceEvent::from_json(line).unwrap(),
            TraceEvent::Meta {
                version: 4,
                backend: "vector".into(),
                site_repeats: "off".into(),
                spans_dropped: 0,
                roofline_mflops: 0,
                roofline_mbps: 0,
                transport: String::new(),
                wire_ops: 0,
                wire_ns: 0,
            }
        );
    }

    #[test]
    fn v1_kernel_lines_without_quantiles_still_parse() {
        let line = r#"{"type":"kernel","source":"s","kernel":"evaluate","calls":3,"sites":30,"total_ns":300,"min_ns":90,"max_ns":110}"#;
        match TraceEvent::from_json(line).unwrap() {
            TraceEvent::Kernel {
                p50_ns,
                p95_ns,
                p99_ns,
                calls,
                ..
            } => {
                assert_eq!((p50_ns, p95_ns, p99_ns), (0, 0, 0));
                assert_eq!(calls, 3);
            }
            other => panic!("expected kernel, got {other:?}"),
        }
    }

    #[test]
    fn span_and_metric_export_helpers() {
        use crate::span::{SpanEvent, SpanPhase, TrackSnapshot};
        let track = TrackSnapshot {
            label: "worker0".into(),
            events: vec![
                SpanEvent {
                    name: "outer",
                    phase: SpanPhase::Begin,
                    t_ns: 10,
                },
                SpanEvent {
                    name: "inner",
                    phase: SpanPhase::Begin,
                    t_ns: 20,
                },
                SpanEvent {
                    name: "inner",
                    phase: SpanPhase::End,
                    t_ns: 30,
                },
                SpanEvent {
                    name: "outer",
                    phase: SpanPhase::End,
                    t_ns: 40,
                },
            ],
            recorded: 4,
            dropped: 0,
        };
        let events = events_from_spans(&[track]);
        assert_eq!(events.len(), 2);
        assert!(matches!(&events[0],
            TraceEvent::Span { source, name, start_ns: 10, dur_ns: 30, depth: 0 }
                if source == "worker0" && name == "outer"));

        let samples = vec![
            MetricSample {
                name: "test.trace.counter".into(),
                value: MetricValue::Counter(5),
            },
            MetricSample {
                name: "test.trace.gauge".into(),
                value: MetricValue::Gauge(9),
            },
        ];
        let events = events_from_metrics("process", &samples);
        let doc = write_jsonl(&events);
        assert_eq!(parse_jsonl(&doc).unwrap(), events);
        assert!(doc.contains(r#""kind":"counter","value":5"#), "{doc}");
    }
}
