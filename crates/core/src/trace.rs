//! JSONL kernel-timing traces.
//!
//! A trace is a flat JSON-lines file: one event per line, each a small
//! flat object. Two event kinds exist:
//!
//! * `kernel` — one source's (a worker thread's or the serial
//!   engine's) accumulated invocations of one kernel: call count,
//!   total pattern-sites, and total/min/max wall time in nanoseconds.
//! * `region` — one source's parallel-region synchronization totals:
//!   region count plus total/max fork- and join-barrier latencies.
//!
//! The format is deliberately trivial — flat objects, string and
//! integer values only — so it round-trips through the hand-rolled
//! writer/parser below without a serde dependency, and any external
//! tool (`jq`, pandas) reads it directly. `micsim::calibration` loads
//! these events to fit measured per-call and per-site kernel costs,
//! replacing its hardware-derived defaults with numbers observed on
//! the actual host (`phylomic --trace-out` writes them).

use crate::instrument::{KernelId, KernelStats};
use std::fmt::Write as _;

/// One line of a trace file.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// Accumulated timing of one kernel at one source.
    Kernel {
        /// Where the stats came from (e.g. `"serial"`, `"worker3"`).
        source: String,
        /// Which kernel.
        kernel: KernelId,
        /// Invocation count.
        calls: u64,
        /// Total pattern-sites across the invocations.
        sites: u64,
        /// Summed wall time of the invocations, nanoseconds.
        total_ns: u64,
        /// Fastest single invocation, nanoseconds.
        min_ns: u64,
        /// Slowest single invocation, nanoseconds.
        max_ns: u64,
    },
    /// Accumulated fork/join latency of one source's parallel regions.
    Region {
        /// Where the stats came from (usually `"master"`).
        source: String,
        /// Number of parallel regions.
        count: u64,
        /// Summed fork-barrier latency, nanoseconds.
        fork_total_ns: u64,
        /// Slowest fork, nanoseconds.
        fork_max_ns: u64,
        /// Summed join-barrier latency, nanoseconds.
        join_total_ns: u64,
        /// Slowest join, nanoseconds.
        join_max_ns: u64,
    },
}

impl TraceEvent {
    /// Serializes the event as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        match self {
            TraceEvent::Kernel {
                source,
                kernel,
                calls,
                sites,
                total_ns,
                min_ns,
                max_ns,
            } => {
                let _ = write!(
                    s,
                    r#"{{"type":"kernel","source":"{}","kernel":"{}","calls":{},"sites":{},"total_ns":{},"min_ns":{},"max_ns":{}}}"#,
                    escape(source),
                    kernel.paper_name(),
                    calls,
                    sites,
                    total_ns,
                    min_ns,
                    max_ns
                );
            }
            TraceEvent::Region {
                source,
                count,
                fork_total_ns,
                fork_max_ns,
                join_total_ns,
                join_max_ns,
            } => {
                let _ = write!(
                    s,
                    r#"{{"type":"region","source":"{}","count":{},"fork_total_ns":{},"fork_max_ns":{},"join_total_ns":{},"join_max_ns":{}}}"#,
                    escape(source),
                    count,
                    fork_total_ns,
                    fork_max_ns,
                    join_total_ns,
                    join_max_ns
                );
            }
        }
        s
    }

    /// Parses one JSON line back into an event.
    pub fn from_json(line: &str) -> Result<TraceEvent, TraceError> {
        let fields = parse_flat_object(line)?;
        let get = |k: &str| -> Result<&JsonValue, TraceError> {
            fields
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v)
                .ok_or_else(|| TraceError(format!("missing field {k:?} in {line:?}")))
        };
        let get_u64 = |k: &str| -> Result<u64, TraceError> {
            match get(k)? {
                JsonValue::Int(n) => Ok(*n),
                JsonValue::Str(_) => Err(TraceError(format!("field {k:?} must be an integer"))),
            }
        };
        let get_str = |k: &str| -> Result<&str, TraceError> {
            match get(k)? {
                JsonValue::Str(s) => Ok(s),
                JsonValue::Int(_) => Err(TraceError(format!("field {k:?} must be a string"))),
            }
        };
        match get_str("type")? {
            "kernel" => {
                let name = get_str("kernel")?;
                let kernel = KernelId::ALL
                    .into_iter()
                    .find(|k| k.paper_name() == name)
                    .ok_or_else(|| TraceError(format!("unknown kernel {name:?}")))?;
                Ok(TraceEvent::Kernel {
                    source: get_str("source")?.to_string(),
                    kernel,
                    calls: get_u64("calls")?,
                    sites: get_u64("sites")?,
                    total_ns: get_u64("total_ns")?,
                    min_ns: get_u64("min_ns")?,
                    max_ns: get_u64("max_ns")?,
                })
            }
            "region" => Ok(TraceEvent::Region {
                source: get_str("source")?.to_string(),
                count: get_u64("count")?,
                fork_total_ns: get_u64("fork_total_ns")?,
                fork_max_ns: get_u64("fork_max_ns")?,
                join_total_ns: get_u64("join_total_ns")?,
                join_max_ns: get_u64("join_max_ns")?,
            }),
            other => Err(TraceError(format!("unknown event type {other:?}"))),
        }
    }
}

/// A malformed trace line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError(pub String);

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error: {}", self.0)
    }
}

impl std::error::Error for TraceError {}

/// Converts one source's [`KernelStats`] into trace events: one
/// `kernel` event per kernel with at least one call, plus one `region`
/// event if any parallel regions were recorded.
pub fn events_from_stats(source: &str, stats: &KernelStats) -> Vec<TraceEvent> {
    let mut out = Vec::new();
    for kernel in KernelId::ALL {
        let c = stats.get(kernel);
        if c.calls == 0 {
            continue;
        }
        let h = stats.timing(kernel);
        out.push(TraceEvent::Kernel {
            source: source.to_string(),
            kernel,
            calls: c.calls,
            sites: c.sites,
            total_ns: h.total_ns(),
            min_ns: h.min_ns().unwrap_or(0),
            max_ns: h.max_ns().unwrap_or(0),
        });
    }
    let r = stats.regions();
    if r.count > 0 {
        out.push(TraceEvent::Region {
            source: source.to_string(),
            count: r.count,
            fork_total_ns: r.fork.total_ns(),
            fork_max_ns: r.fork.max_ns().unwrap_or(0),
            join_total_ns: r.join.total_ns(),
            join_max_ns: r.join.max_ns().unwrap_or(0),
        });
    }
    out
}

/// Serializes events as a JSONL document (one event per line, trailing
/// newline).
pub fn write_jsonl(events: &[TraceEvent]) -> String {
    let mut s = String::new();
    for e in events {
        s.push_str(&e.to_json());
        s.push('\n');
    }
    s
}

/// Parses a JSONL document; blank lines are skipped.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, TraceError> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(TraceEvent::from_json)
        .collect()
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

enum JsonValue {
    Str(String),
    Int(u64),
}

/// Parses a single-level JSON object with string and non-negative
/// integer values — the full extent of the trace grammar.
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, TraceError> {
    let bytes = line.trim().as_bytes();
    let err = |msg: &str| TraceError(format!("{msg} in {line:?}"));
    if bytes.first() != Some(&b'{') || bytes.last() != Some(&b'}') {
        return Err(err("not an object"));
    }
    let mut fields = Vec::new();
    let mut i = 1usize;
    let end = bytes.len() - 1;
    loop {
        while i < end && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= end {
            break;
        }
        let (key, next) = parse_string(bytes, i).map_err(&err)?;
        i = next;
        while i < end && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= end || bytes[i] != b':' {
            return Err(err("expected ':'"));
        }
        i += 1;
        while i < end && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let value = if i < end && bytes[i] == b'"' {
            let (s, next) = parse_string(bytes, i).map_err(&err)?;
            i = next;
            JsonValue::Str(s)
        } else {
            let start = i;
            while i < end && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i == start {
                return Err(err("expected string or integer value"));
            }
            let n: u64 = std::str::from_utf8(&bytes[start..i])
                .unwrap()
                .parse()
                .map_err(|_| err("integer out of range"))?;
            JsonValue::Int(n)
        };
        fields.push((key, value));
        while i < end && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < end {
            if bytes[i] != b',' {
                return Err(err("expected ',' between fields"));
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Parses a JSON string starting at `bytes[i] == '"'`; returns the
/// unescaped contents and the index just past the closing quote.
fn parse_string(bytes: &[u8], i: usize) -> Result<(String, usize), &'static str> {
    if bytes.get(i) != Some(&b'"') {
        return Err("expected '\"'");
    }
    let mut out = String::new();
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'"' => return Ok((out, j + 1)),
            b'\\' => {
                j += 1;
                match bytes.get(j) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(j + 1..j + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        out.push(char::from_u32(hex).ok_or("bad \\u codepoint")?);
                        j += 4;
                    }
                    _ => return Err("bad escape"),
                }
                j += 1;
            }
            c => {
                // Multi-byte UTF-8 passes through unchanged.
                let ch_len = match c {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let chunk = bytes.get(j..j + ch_len).ok_or("truncated string")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid utf-8")?);
                j += ch_len;
            }
        }
    }
    Err("unterminated string")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_event_roundtrips() {
        let e = TraceEvent::Kernel {
            source: "worker3".into(),
            kernel: KernelId::Newview,
            calls: 42,
            sites: 7000,
            total_ns: 123_456,
            min_ns: 800,
            max_ns: 9_000,
        };
        let line = e.to_json();
        assert!(line.starts_with(r#"{"type":"kernel""#), "{line}");
        assert_eq!(TraceEvent::from_json(&line).unwrap(), e);
    }

    #[test]
    fn region_event_roundtrips() {
        let e = TraceEvent::Region {
            source: "master".into(),
            count: 9,
            fork_total_ns: 100,
            fork_max_ns: 40,
            join_total_ns: 5_000,
            join_max_ns: 900,
        };
        assert_eq!(TraceEvent::from_json(&e.to_json()).unwrap(), e);
    }

    #[test]
    fn jsonl_roundtrips_and_skips_blanks() {
        let events = vec![
            TraceEvent::Kernel {
                source: "serial".into(),
                kernel: KernelId::Evaluate,
                calls: 1,
                sites: 10,
                total_ns: 99,
                min_ns: 99,
                max_ns: 99,
            },
            TraceEvent::Region {
                source: "master".into(),
                count: 2,
                fork_total_ns: 1,
                fork_max_ns: 1,
                join_total_ns: 2,
                join_max_ns: 1,
            },
        ];
        let mut doc = write_jsonl(&events);
        doc.push('\n'); // extra blank line
        assert_eq!(parse_jsonl(&doc).unwrap(), events);
    }

    #[test]
    fn stats_export_covers_active_kernels_and_regions() {
        let mut s = KernelStats::new();
        s.record_timed(KernelId::Newview, 100, 5_000);
        s.record_timed(KernelId::Newview, 100, 7_000);
        s.record_timed(KernelId::Evaluate, 100, 1_000);
        s.record_region(50, 2_000);
        let events = events_from_stats("w0", &s);
        assert_eq!(events.len(), 3); // 2 kernels + 1 region block
        match &events[0] {
            TraceEvent::Kernel {
                kernel,
                calls,
                sites,
                total_ns,
                min_ns,
                max_ns,
                ..
            } => {
                assert_eq!(*kernel, KernelId::Newview);
                assert_eq!((*calls, *sites), (2, 200));
                assert_eq!((*total_ns, *min_ns, *max_ns), (12_000, 5_000, 7_000));
            }
            other => panic!("expected kernel event, got {other:?}"),
        }
        assert!(matches!(
            events.last().unwrap(),
            TraceEvent::Region { count: 1, .. }
        ));
        // Idle kernels produce no events.
        assert!(!write_jsonl(&events).contains("derivativeSum"));
    }

    #[test]
    fn escaped_sources_roundtrip() {
        let e = TraceEvent::Kernel {
            source: "od\"d\\na\tme\u{1}".into(),
            kernel: KernelId::DerivativeCore,
            calls: 1,
            sites: 1,
            total_ns: 1,
            min_ns: 1,
            max_ns: 1,
        };
        assert_eq!(TraceEvent::from_json(&e.to_json()).unwrap(), e);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "not json",
            "{}",
            r#"{"type":"kernel"}"#,
            r#"{"type":"mystery","source":"x"}"#,
            r#"{"type":"kernel","source":"s","kernel":"nope","calls":1,"sites":1,"total_ns":1,"min_ns":1,"max_ns":1}"#,
            r#"{"type":"kernel","source":"s","kernel":"newview","calls":"one","sites":1,"total_ns":1,"min_ns":1,"max_ns":1}"#,
        ] {
            assert!(TraceEvent::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }
}
