//! Conditional likelihood arrays (CLAs).

use crate::aligned::AlignedVec;
use crate::SITE_STRIDE;

/// One inner node's conditional likelihood array: `SITE_STRIDE` doubles
/// per pattern (4 Γ categories × 4 states, 128 bytes — two cache
/// lines), 64-byte aligned, plus a per-pattern underflow scaling
/// counter.
#[derive(Clone, Debug)]
pub struct Cla {
    values: AlignedVec,
    scale: Vec<u32>,
    num_patterns: usize,
}

impl Cla {
    /// Allocates a zeroed CLA over `num_patterns` patterns.
    pub fn new(num_patterns: usize) -> Self {
        Cla {
            values: AlignedVec::zeroed(num_patterns * SITE_STRIDE),
            scale: vec![0; num_patterns],
            num_patterns,
        }
    }

    /// Number of patterns covered.
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// The flat value buffer, `pattern-major`: entry `(i, k, a)` lives
    /// at `i * SITE_STRIDE + k * 4 + a`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable value buffer.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Per-pattern scaling counters.
    pub fn scale(&self) -> &[u32] {
        &self.scale
    }

    /// Mutable scaling counters.
    pub fn scale_mut(&mut self) -> &mut [u32] {
        &mut self.scale
    }

    /// Both buffers mutably (the kernels fill them together).
    pub fn buffers_mut(&mut self) -> (&mut [f64], &mut [u32]) {
        (&mut self.values, &mut self.scale)
    }

    /// One pattern's 16 values.
    pub fn site(&self, i: usize) -> &[f64] {
        &self.values[crate::layout::site_range(i)]
    }

    /// Resets values to zero and scaling to zero.
    pub fn clear(&mut self) {
        self.values.fill(0.0);
        self.scale.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_and_alignment() {
        let c = Cla::new(10);
        assert_eq!(c.values().len(), 10 * SITE_STRIDE);
        assert_eq!(c.scale().len(), 10);
        assert_eq!(c.values.as_ptr() as usize % 64, 0);
        // Per-site offset is 128 bytes, preserving 64-byte alignment of
        // every site start (§V-B2: "the offset is 16 DP numbers or 128
        // bytes").
        assert_eq!(SITE_STRIDE * std::mem::size_of::<f64>(), 128);
    }

    #[test]
    fn site_slicing() {
        let mut c = Cla::new(3);
        c.values_mut()[SITE_STRIDE + 5] = 42.0;
        assert_eq!(c.site(1)[5], 42.0);
        assert_eq!(c.site(0)[5], 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut c = Cla::new(2);
        c.values_mut()[0] = 1.0;
        c.scale_mut()[1] = 3;
        c.clear();
        assert!(c.values().iter().all(|&v| v == 0.0));
        assert!(c.scale().iter().all(|&s| s == 0));
    }
}
