//! Process-wide registry of named counters, gauges, and histograms.
//!
//! Instrumented code holds a cheap cloneable handle ([`Counter`],
//! [`Gauge`], [`Histogram`]) and updates it with relaxed atomics — the
//! registry mutex is touched only on first lookup, never on the hot
//! path. Metric names are dotted paths namespaced by layer
//! (`core.scaling.events`, `spr.moves.accepted`,
//! `forkjoin.worker.3.sites`, `micsim.reports`), which unifies the
//! counters the paper's evaluation cares about across `core`,
//! `parallel`, `search`, and `micsim` in one [`snapshot`].
//!
//! Unlike spans, metrics are always compiled in: a relaxed
//! `fetch_add` on an owned cache line is far below measurement noise
//! for every site instrumented here (all are per-call or colder, never
//! per-site).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::instrument::{LatencyHistogram, HIST_BUCKETS};

/// Monotonically increasing event count.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`, saturating at `u64::MAX` instead of wrapping.
    ///
    /// The roofline flop/byte accumulators make overflow reachable in
    /// principle (a month-long run counts ~10^18 flops); a counter
    /// that wrapped would silently report nonsense, while a pinned
    /// `u64::MAX` is unambiguous. The correction is a second relaxed
    /// store, so a concurrent `add` racing the saturation point may
    /// briefly observe the wrapped value — acceptable for
    /// observability counters, and the counter still settles at MAX.
    #[inline]
    pub fn add(&self, n: u64) {
        let prev = self.0.fetch_add(n, Ordering::Relaxed);
        if prev.checked_add(n).is_none() {
            self.0.store(u64::MAX, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value (non-negative).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Lock-free log₂-bucketed latency histogram sharing the bucket layout
/// (and therefore the quantile math) of
/// [`LatencyHistogram`](crate::instrument::LatencyHistogram).
struct AtomicHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl AtomicHistogram {
    fn new() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    fn record_ns(&self, ns: u64) {
        let bucket = (63 - (ns | 1).leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    fn load(&self) -> LatencyHistogram {
        let count = self.count.load(Ordering::Relaxed);
        LatencyHistogram::from_parts(
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count,
            self.total_ns.load(Ordering::Relaxed),
            if count == 0 {
                0
            } else {
                self.min_ns.load(Ordering::Relaxed)
            },
            self.max_ns.load(Ordering::Relaxed),
        )
    }
}

/// Handle to a registered latency histogram.
#[derive(Clone)]
pub struct Histogram(Arc<AtomicHistogram>);

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.0.record_ns(ns);
    }

    /// Copies the current state into a plain [`LatencyHistogram`].
    pub fn load(&self) -> LatencyHistogram {
        self.0.load()
    }
}

enum Entry {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

fn registry() -> std::sync::MutexGuard<'static, BTreeMap<String, Entry>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Entry>>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        // A kind-mismatch panic (below) can poison the mutex, but the
        // map itself is always left structurally consistent.
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Returns (registering on first use) the counter named `name`.
///
/// Panics if `name` is already registered as a different metric kind —
/// that is a programming error, not a runtime condition.
pub fn counter(name: &str) -> Counter {
    let mut reg = registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Entry::Counter(Counter(Arc::new(AtomicU64::new(0)))))
    {
        Entry::Counter(c) => c.clone(),
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Returns (registering on first use) the gauge named `name`.
pub fn gauge(name: &str) -> Gauge {
    let mut reg = registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Entry::Gauge(Gauge(Arc::new(AtomicU64::new(0)))))
    {
        Entry::Gauge(g) => g.clone(),
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Returns (registering on first use) the histogram named `name`.
pub fn histogram(name: &str) -> Histogram {
    let mut reg = registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Entry::Histogram(Histogram(Arc::new(AtomicHistogram::new()))))
    {
        Entry::Histogram(h) => h.clone(),
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// A metric's value at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(u64),
    /// Histogram copy (boxed: a histogram is ~300 bytes of buckets).
    Histogram(Box<LatencyHistogram>),
}

/// One named metric captured by [`snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSample {
    /// Registered dotted name.
    pub name: String,
    /// Value at snapshot time.
    pub value: MetricValue,
}

/// Captures every registered metric, sorted by name.
pub fn snapshot() -> Vec<MetricSample> {
    let reg = registry();
    reg.iter()
        .map(|(name, entry)| MetricSample {
            name: name.clone(),
            value: match entry {
                Entry::Counter(c) => MetricValue::Counter(c.get()),
                Entry::Gauge(g) => MetricValue::Gauge(g.get()),
                Entry::Histogram(h) => MetricValue::Histogram(Box::new(h.load())),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = counter("test.metrics.counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // A second lookup shares the same cell.
        assert_eq!(counter("test.metrics.counter").get(), 5);

        let g = gauge("test.metrics.gauge");
        g.set(17);
        g.set(3);
        assert_eq!(gauge("test.metrics.gauge").get(), 3);
    }

    #[test]
    fn histogram_matches_plain_latency_histogram() {
        let h = histogram("test.metrics.hist");
        let mut reference = LatencyHistogram::default();
        for ns in [1u64, 7, 100, 100, 5_000, 1 << 20] {
            h.record_ns(ns);
            reference.record_ns(ns);
        }
        let copy = h.load();
        assert_eq!(copy.count(), reference.count());
        assert_eq!(copy.total_ns(), reference.total_ns());
        assert_eq!(copy.min_ns(), reference.min_ns());
        assert_eq!(copy.max_ns(), reference.max_ns());
        assert_eq!(copy.buckets(), reference.buckets());
    }

    #[test]
    fn snapshot_lists_metrics_sorted() {
        counter("test.snap.b").inc();
        counter("test.snap.a").add(2);
        let snap = snapshot();
        let names: Vec<_> = snap
            .iter()
            .filter(|s| s.name.starts_with("test.snap."))
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(names, vec!["test.snap.a", "test.snap.b"]);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        counter("test.metrics.mismatch");
        gauge("test.metrics.mismatch");
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = counter("test.metrics.saturate");
        c.add(u64::MAX - 1);
        c.add(10); // would wrap to 8
        assert_eq!(c.get(), u64::MAX);
        c.inc(); // stays pinned
        assert_eq!(c.get(), u64::MAX);
        // Exact fill without overflow is untouched.
        let c2 = counter("test.metrics.saturate.exact");
        c2.add(u64::MAX);
        assert_eq!(c2.get(), u64::MAX);
    }

    #[test]
    fn registered_histogram_quantiles_on_empty_and_single_sample() {
        // Empty: every quantile is None, extremes absent.
        let h = histogram("test.metrics.hist.empty");
        let copy = h.load();
        assert_eq!(copy.count(), 0);
        assert_eq!(copy.quantile_ns(0.5), None);
        assert_eq!(copy.quantile_ns(0.0), None);
        assert_eq!(copy.quantile_ns(1.0), None);
        assert_eq!(copy.min_ns(), None);
        assert_eq!(copy.max_ns(), None);

        // Single sample: every quantile collapses to the sample.
        let h = histogram("test.metrics.hist.single");
        h.record_ns(777);
        let copy = h.load();
        assert_eq!(copy.count(), 1);
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(copy.quantile_ns(q), Some(777), "q = {q}");
        }
        assert_eq!(copy.min_ns(), Some(777));
        assert_eq!(copy.max_ns(), Some(777));
    }
}
