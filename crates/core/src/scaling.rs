//! Numerical underflow scaling for conditional likelihoods.
//!
//! Per-site conditional likelihoods shrink geometrically with tree
//! depth; on large trees they underflow `f64`. Following RAxML, when
//! all 16 entries of a site fall below 2⁻²⁵⁶ after a `newview`, the
//! site is multiplied by 2²⁵⁶ and a per-site scaling counter is
//! incremented. `evaluate` subtracts `count · 256 · ln 2` from the
//! site's log-likelihood; branch-length derivatives need no correction
//! because the constant factor cancels in `L'/L`.

/// Threshold below which a site gets rescaled (2⁻²⁵⁶).
pub const SCALE_THRESHOLD: f64 = 8.636168555094445e-78;

/// The rescaling multiplier (2²⁵⁶).
pub const SCALE_FACTOR: f64 = 1.157920892373162e77;

/// Natural log of the rescaling multiplier (256 · ln 2), subtracted per
/// scaling event in `evaluate`.
pub const LN_SCALE: f64 = 177.445_678_223_346;

/// Applies the scaling rule to one site's 16 CLA entries in place.
/// Returns 1 when the site was rescaled (to add to its counter), else
/// 0.
///
/// # Panics
/// Panics when the site contains a non-finite or negative entry.
/// Conditional likelihoods are probabilities scaled by a positive
/// power of two — NaN, ±∞ and negatives can only come from a model or
/// kernel defect, and multiplying such a site by 2²⁵⁶ would launder
/// the corruption into finite-looking downstream likelihoods (the
/// all-NaN site leaves `max == 0.0` because every NaN comparison is
/// false). The failure-injection contract demands a loud error
/// instead.
#[inline]
pub fn scale_site(site: &mut [f64]) -> u32 {
    debug_assert_eq!(site.len(), crate::SITE_STRIDE);
    let mut max = 0.0f64;
    for &v in site.iter() {
        if v > max {
            max = v;
        }
    }
    if max < SCALE_THRESHOLD {
        // Cold path: validate before touching anything. A corrupted
        // entry must never be rescaled into a plausible value.
        for &v in site.iter() {
            assert!(
                v.is_finite() && v >= 0.0,
                "non-finite or negative conditional likelihood {v} in site {site:?}; \
                 refusing to rescale corrupted data"
            );
        }
        if max == 0.0 {
            // A genuinely all-zero site: scaling cannot resurrect it,
            // and 0 · 2²⁵⁶ = 0 would just burn a scaling counter.
            // Leave it; `evaluate` turns it into -inf, which is loud.
            return 0;
        }
        for v in site.iter_mut() {
            *v *= SCALE_FACTOR;
        }
        scaling_events().inc();
        1
    } else {
        0
    }
}

/// Adds `n` synthetic events to the `core.scaling.events` counter.
/// Used by the site-repeat compression layer: the kernel's
/// [`scale_site`] fires once per repeat *class*, so the engine
/// re-weights each class's rescale bump by its multiplicity to keep the
/// process-wide total identical to an uncompressed run.
pub(crate) fn add_scaling_events(n: u64) {
    scaling_events().add(n);
}

/// Cached handle for the `core.scaling.events` counter. Only the cold
/// rescale branch pays for it (one `OnceLock` load + relaxed add).
fn scaling_events() -> &'static crate::metrics::Counter {
    static C: std::sync::OnceLock<crate::metrics::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| crate::metrics::counter("core.scaling.events"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_counter_tracks_rescales() {
        let before = scaling_events().get();
        let mut site = vec![1e-100; 16];
        scale_site(&mut site);
        let mut normal = vec![1e-5; 16];
        scale_site(&mut normal);
        // >= rather than ==: concurrently running engine tests may
        // also rescale sites through the same global counter.
        assert!(scaling_events().get() > before);
    }

    #[test]
    fn constants_consistent() {
        assert!((SCALE_THRESHOLD - 2f64.powi(-256)).abs() < 1e-90);
        assert!((SCALE_FACTOR - 2f64.powi(256)).abs() / SCALE_FACTOR < 1e-15);
        assert!((LN_SCALE - 256.0 * std::f64::consts::LN_2).abs() < 1e-12);
        assert!((SCALE_THRESHOLD * SCALE_FACTOR - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_site_rescaled() {
        let mut site = vec![1e-100; 16];
        let bumps = scale_site(&mut site);
        assert_eq!(bumps, 1);
        for &v in &site {
            assert!((v - 1e-100 * SCALE_FACTOR).abs() / v < 1e-12);
        }
    }

    #[test]
    fn normal_site_untouched() {
        let mut site = vec![1e-5; 16];
        site[3] = 0.5;
        let orig = site.clone();
        assert_eq!(scale_site(&mut site), 0);
        assert_eq!(site, orig);
    }

    #[test]
    fn one_large_entry_prevents_scaling() {
        let mut site = vec![1e-300; 16];
        site[7] = 1e-10;
        assert_eq!(scale_site(&mut site), 0);
    }

    #[test]
    #[should_panic(expected = "non-finite or negative")]
    fn all_nan_site_errors_instead_of_rescaling() {
        let mut site = vec![f64::NAN; 16];
        scale_site(&mut site);
    }

    #[test]
    #[should_panic(expected = "non-finite or negative")]
    fn negative_only_site_errors_instead_of_rescaling() {
        let mut site = vec![-1e-100; 16];
        scale_site(&mut site);
    }

    #[test]
    #[should_panic(expected = "non-finite or negative")]
    fn nan_mixed_into_tiny_site_errors() {
        let mut site = vec![1e-300; 16];
        site[3] = f64::NAN;
        scale_site(&mut site);
    }

    #[test]
    fn all_zero_site_left_untouched() {
        let mut site = vec![0.0; 16];
        assert_eq!(scale_site(&mut site), 0);
        assert!(site.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn nan_in_normal_range_site_is_not_scalings_problem() {
        // A NaN next to a healthy entry above the threshold never
        // reaches the rescale path; the evaluate kernel surfaces it as
        // a NaN log-likelihood instead.
        let mut site = vec![0.5; 16];
        site[2] = f64::NAN;
        assert_eq!(scale_site(&mut site), 0);
    }
}
