//! The four PLF kernels, in scalar and vectorized variants.
//!
//! All kernels operate on pattern-major buffers with
//! [`crate::SITE_STRIDE`] doubles per pattern. Tip sides are always
//! canonicalized to the *left* operand by the engine (legal under
//! time-reversibility, where the likelihood of a branch is symmetric in
//! its endpoints).

pub mod auto;
pub mod scalar;
pub mod simd;
pub mod vector;

use crate::layout::{EigenBasis, FusedPmat, Lut16x16};
use crate::SITE_STRIDE;

/// Which kernel implementation an engine uses.
///
/// `Scalar`, `Vector` and `Simd` name concrete backends; `Auto` is the
/// runtime dispatcher (the engine default): on AVX2+FMA hosts it routes
/// each kernel call to the backend measured fastest for that kernel and
/// input size ([`auto::AutoKernels`]), and on other hosts it runs the
/// portable vector backend. All
/// parsing and rendering of kernel names goes through the single
/// [`std::str::FromStr`]/[`std::fmt::Display`] pair below — `match`
/// sites over user-facing names must not be duplicated elsewhere, so
/// adding a variant cannot silently miss a site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Straightforward nested-loop reference implementation.
    Scalar,
    /// MIC-style fused-loop, site-blocked implementation (§V-B),
    /// written so LLVM auto-vectorizes.
    Vector,
    /// Explicit AVX2+FMA intrinsics with streaming stores and
    /// prefetching (§V-B1–B5 on commodity x86). Resolves to `Vector`
    /// on hosts without AVX2+FMA (and on non-x86 targets).
    Simd,
    /// Runtime dispatch: on SIMD-capable hosts, size/kernel-aware
    /// routing between `Simd` and the portable backends
    /// ([`auto::AutoKernels`]); else `Vector`.
    Auto,
}

impl KernelKind {
    /// Every variant, in parse/display order (for round-trip tests and
    /// CLI help).
    pub const ALL: [KernelKind; 4] = [
        KernelKind::Scalar,
        KernelKind::Vector,
        KernelKind::Simd,
        KernelKind::Auto,
    ];

    /// Whether the explicit-SIMD backend can run on this host (x86-64
    /// with AVX2 and FMA detected at runtime).
    pub fn simd_available() -> bool {
        simd::simd_available()
    }

    /// Resolves runtime dispatch to a concrete backend for *reporting*:
    /// `Auto` names `Simd` when the host supports it and `Vector`
    /// otherwise; `Simd` likewise degrades to `Vector` on hosts without
    /// AVX2+FMA. The resolved kind is what engines record in trace
    /// metadata. Note that dispatch itself goes through [`Self::kernels`],
    /// where `Auto` keeps its size/kernel-aware routing
    /// ([`auto::AutoKernels`]) rather than pinning one backend.
    pub fn resolve(self) -> KernelKind {
        match self {
            KernelKind::Scalar | KernelKind::Vector => self,
            KernelKind::Simd | KernelKind::Auto => {
                if Self::simd_available() {
                    KernelKind::Simd
                } else {
                    KernelKind::Vector
                }
            }
        }
    }

    /// The `PHYLOMIC_KERNELS` environment override, parsed once per
    /// process. Returns `None` when the variable is unset or empty.
    ///
    /// # Panics
    /// Panics on an unparseable value: a mistyped backend name must
    /// not silently fall back to the default.
    pub fn env_override() -> Option<KernelKind> {
        static OVERRIDE: std::sync::OnceLock<Option<KernelKind>> = std::sync::OnceLock::new();
        *OVERRIDE.get_or_init(|| {
            let v = std::env::var("PHYLOMIC_KERNELS").ok()?;
            let v = v.trim();
            if v.is_empty() {
                return None;
            }
            Some(
                v.parse()
                    .unwrap_or_else(|e: KernelKindParseError| panic!("PHYLOMIC_KERNELS: {e}")),
            )
        })
    }

    /// The backend an engine configured with `self` actually runs:
    /// `PHYLOMIC_KERNELS` (when set) overrides the configured kind,
    /// then runtime dispatch resolves to a concrete backend.
    pub fn effective(self) -> KernelKind {
        Self::env_override().unwrap_or(self).resolve()
    }

    /// The implementation behind this kind. `Scalar`/`Vector` name
    /// their backends directly; `Simd` degrades to the portable vector
    /// backend on hosts without AVX2+FMA; `Auto` dispatches through
    /// [`auto::AutoKernels`], which routes each call to the backend
    /// measured fastest for that kernel and input size (falling back to
    /// `Vector` outright on hosts where SIMD can never win).
    pub fn kernels(self) -> &'static dyn Kernels {
        match self {
            KernelKind::Scalar => &scalar::ScalarKernels,
            KernelKind::Vector => &vector::VectorKernels,
            KernelKind::Simd | KernelKind::Auto if !Self::simd_available() => {
                &vector::VectorKernels
            }
            KernelKind::Simd => &simd::SimdKernels,
            KernelKind::Auto => &auto::AutoKernels,
        }
    }
}

/// An unrecognized kernel-backend name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelKindParseError(String);

impl std::fmt::Display for KernelKindParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown kernel backend {:?} (expected scalar, vector, simd or auto)",
            self.0
        )
    }
}

impl std::error::Error for KernelKindParseError {}

impl std::str::FromStr for KernelKind {
    type Err = KernelKindParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(KernelKind::Scalar),
            "vector" => Ok(KernelKind::Vector),
            "simd" => Ok(KernelKind::Simd),
            "auto" => Ok(KernelKind::Auto),
            other => Err(KernelKindParseError(other.to_string())),
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Vector => "vector",
            KernelKind::Simd => "simd",
            KernelKind::Auto => "auto",
        })
    }
}

/// The kernel interface (paper §IV).
///
/// Buffer conventions: `v_*` are CLA value buffers (`n·16` doubles),
/// `scale_*` are per-pattern scaling counters (`n` entries), `codes_*`
/// are 4-bit tip codes (`n` entries), `out` buffers follow the same
/// shapes, and `weights` are pattern multiplicities.
pub trait Kernels: Send + Sync {
    /// `newview`, both children tips.
    fn newview_tt(
        &self,
        lut_l: &Lut16x16,
        lut_r: &Lut16x16,
        codes_l: &[u8],
        codes_r: &[u8],
        out: &mut [f64],
        scale_out: &mut [u32],
    );

    /// `newview`, left child tip, right child inner.
    #[allow(clippy::too_many_arguments)]
    fn newview_ti(
        &self,
        lut_l: &Lut16x16,
        codes_l: &[u8],
        p_r: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        out: &mut [f64],
        scale_out: &mut [u32],
    );

    /// `newview`, both children inner.
    #[allow(clippy::too_many_arguments)]
    fn newview_ii(
        &self,
        p_l: &FusedPmat,
        v_l: &[f64],
        scale_l: &[u32],
        p_r: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        out: &mut [f64],
        scale_out: &mut [u32],
    );

    /// `evaluate` with a tip at the virtual root's left end. Returns
    /// the log-likelihood over all patterns.
    fn evaluate_ti(
        &self,
        pi_tip: &Lut16x16,
        codes_q: &[u8],
        p: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        weights: &[u32],
    ) -> f64;

    /// `evaluate` between two inner nodes. `pi_w[m] = w_k · π_a`.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_ii(
        &self,
        pi_w: &[f64; SITE_STRIDE],
        v_q: &[f64],
        scale_q: &[u32],
        p: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        weights: &[u32],
    ) -> f64;

    /// `derivativeSum` with a tip on the left: writes the
    /// branch-invariant site table `out[i][m] = left̂[m] · right̂[m]`
    /// in eigen coordinates.
    fn derivative_sum_ti(&self, basis: &EigenBasis, codes_q: &[u8], v_r: &[f64], out: &mut [f64]);

    /// `derivativeSum` between two inner nodes.
    fn derivative_sum_ii(&self, basis: &EigenBasis, v_q: &[f64], v_r: &[f64], out: &mut [f64]);

    /// `derivativeCore`: first and second derivative of the
    /// log-likelihood with respect to the branch length, evaluated at
    /// `t`, from a `derivativeSum` table.
    fn derivative_core(
        &self,
        sumtable: &[f64],
        lambda_rate: &[f64; SITE_STRIDE],
        t: f64,
        weights: &[u32],
    ) -> (f64, f64);
}

/// Shared helper: the per-branch exponential tables of
/// `derivativeCore` — `e^{λ_j r_k t}`, `λ_j r_k e^{…}`, and
/// `(λ_j r_k)² e^{…}` — computed once per call, shared by all sites.
#[inline]
pub(crate) fn derivative_exp_tables(
    lambda_rate: &[f64; SITE_STRIDE],
    t: f64,
) -> ([f64; SITE_STRIDE], [f64; SITE_STRIDE], [f64; SITE_STRIDE]) {
    let mut e = [0.0; SITE_STRIDE];
    let mut d1 = [0.0; SITE_STRIDE];
    let mut d2 = [0.0; SITE_STRIDE];
    for m in 0..SITE_STRIDE {
        let lr = lambda_rate[m];
        let ex = (lr * t).exp();
        e[m] = ex;
        d1[m] = lr * ex;
        d2[m] = lr * lr * ex;
    }
    (e, d1, d2)
}

/// Guard against a zero site likelihood (possible only when scaling has
/// been defeated by pathological inputs); keeps `ln` finite.
#[inline]
pub(crate) fn positive(l: f64) -> f64 {
    debug_assert!(l >= 0.0, "negative site likelihood {l}");
    l.max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_kind_display_parse_round_trips_all_variants() {
        for kind in KernelKind::ALL {
            let name = kind.to_string();
            let back: KernelKind = name.parse().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(back, kind, "{name} did not round-trip");
        }
    }

    #[test]
    fn unknown_names_are_rejected_with_the_full_menu() {
        let err = "avx512".parse::<KernelKind>().unwrap_err();
        let msg = err.to_string();
        for kind in KernelKind::ALL {
            assert!(msg.contains(&kind.to_string()), "{msg} missing {kind}");
        }
    }

    #[test]
    fn resolve_returns_concrete_backends_only() {
        for kind in KernelKind::ALL {
            let r = kind.resolve();
            assert_ne!(r, KernelKind::Auto, "{kind} resolved to Auto");
            assert_eq!(r, r.resolve(), "resolve must be idempotent");
        }
        // Scalar and Vector are never redirected.
        assert_eq!(KernelKind::Scalar.resolve(), KernelKind::Scalar);
        assert_eq!(KernelKind::Vector.resolve(), KernelKind::Vector);
    }

    #[test]
    fn auto_dispatch_follows_host_features() {
        let expect = if KernelKind::simd_available() {
            KernelKind::Simd
        } else {
            KernelKind::Vector
        };
        assert_eq!(KernelKind::Auto.resolve(), expect);
        assert_eq!(KernelKind::Simd.resolve(), expect);
    }

    #[test]
    fn every_kind_yields_a_kernel_set() {
        // Dispatch must not panic for any variant; exercise one cheap
        // kernel call through each to prove the vtable is live.
        let lut = Lut16x16 {
            rows: [[0.5; SITE_STRIDE]; 16],
        };
        for kind in KernelKind::ALL {
            let mut out = crate::AlignedVec::zeroed(SITE_STRIDE);
            let mut scale = [0u32; 1];
            kind.kernels()
                .newview_tt(&lut, &lut, &[1], &[2], &mut out, &mut scale);
            assert!((out[0] - 0.25).abs() < 1e-15, "{kind}");
        }
    }
}
