//! The four PLF kernels, in scalar and vectorized variants.
//!
//! All kernels operate on pattern-major buffers with
//! [`crate::SITE_STRIDE`] doubles per pattern. Tip sides are always
//! canonicalized to the *left* operand by the engine (legal under
//! time-reversibility, where the likelihood of a branch is symmetric in
//! its endpoints).

pub mod scalar;
pub mod vector;

use crate::layout::{EigenBasis, FusedPmat, Lut16x16};
use crate::SITE_STRIDE;

/// Which kernel implementation an engine uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Straightforward nested-loop reference implementation.
    Scalar,
    /// MIC-style fused-loop, site-blocked implementation (§V-B).
    Vector,
}

impl KernelKind {
    /// The implementation behind this kind.
    pub fn kernels(self) -> &'static dyn Kernels {
        match self {
            KernelKind::Scalar => &scalar::ScalarKernels,
            KernelKind::Vector => &vector::VectorKernels,
        }
    }
}

/// The kernel interface (paper §IV).
///
/// Buffer conventions: `v_*` are CLA value buffers (`n·16` doubles),
/// `scale_*` are per-pattern scaling counters (`n` entries), `codes_*`
/// are 4-bit tip codes (`n` entries), `out` buffers follow the same
/// shapes, and `weights` are pattern multiplicities.
pub trait Kernels: Send + Sync {
    /// `newview`, both children tips.
    fn newview_tt(
        &self,
        lut_l: &Lut16x16,
        lut_r: &Lut16x16,
        codes_l: &[u8],
        codes_r: &[u8],
        out: &mut [f64],
        scale_out: &mut [u32],
    );

    /// `newview`, left child tip, right child inner.
    #[allow(clippy::too_many_arguments)]
    fn newview_ti(
        &self,
        lut_l: &Lut16x16,
        codes_l: &[u8],
        p_r: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        out: &mut [f64],
        scale_out: &mut [u32],
    );

    /// `newview`, both children inner.
    #[allow(clippy::too_many_arguments)]
    fn newview_ii(
        &self,
        p_l: &FusedPmat,
        v_l: &[f64],
        scale_l: &[u32],
        p_r: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        out: &mut [f64],
        scale_out: &mut [u32],
    );

    /// `evaluate` with a tip at the virtual root's left end. Returns
    /// the log-likelihood over all patterns.
    fn evaluate_ti(
        &self,
        pi_tip: &Lut16x16,
        codes_q: &[u8],
        p: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        weights: &[u32],
    ) -> f64;

    /// `evaluate` between two inner nodes. `pi_w[m] = w_k · π_a`.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_ii(
        &self,
        pi_w: &[f64; SITE_STRIDE],
        v_q: &[f64],
        scale_q: &[u32],
        p: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        weights: &[u32],
    ) -> f64;

    /// `derivativeSum` with a tip on the left: writes the
    /// branch-invariant site table `out[i][m] = left̂[m] · right̂[m]`
    /// in eigen coordinates.
    fn derivative_sum_ti(&self, basis: &EigenBasis, codes_q: &[u8], v_r: &[f64], out: &mut [f64]);

    /// `derivativeSum` between two inner nodes.
    fn derivative_sum_ii(&self, basis: &EigenBasis, v_q: &[f64], v_r: &[f64], out: &mut [f64]);

    /// `derivativeCore`: first and second derivative of the
    /// log-likelihood with respect to the branch length, evaluated at
    /// `t`, from a `derivativeSum` table.
    fn derivative_core(
        &self,
        sumtable: &[f64],
        lambda_rate: &[f64; SITE_STRIDE],
        t: f64,
        weights: &[u32],
    ) -> (f64, f64);
}

/// Shared helper: the per-branch exponential tables of
/// `derivativeCore` — `e^{λ_j r_k t}`, `λ_j r_k e^{…}`, and
/// `(λ_j r_k)² e^{…}` — computed once per call, shared by all sites.
#[inline]
pub(crate) fn derivative_exp_tables(
    lambda_rate: &[f64; SITE_STRIDE],
    t: f64,
) -> ([f64; SITE_STRIDE], [f64; SITE_STRIDE], [f64; SITE_STRIDE]) {
    let mut e = [0.0; SITE_STRIDE];
    let mut d1 = [0.0; SITE_STRIDE];
    let mut d2 = [0.0; SITE_STRIDE];
    for m in 0..SITE_STRIDE {
        let lr = lambda_rate[m];
        let ex = (lr * t).exp();
        e[m] = ex;
        d1[m] = lr * ex;
        d2[m] = lr * lr * ex;
    }
    (e, d1, d2)
}

/// Guard against a zero site likelihood (possible only when scaling has
/// been defeated by pathological inputs); keeps `ln` finite.
#[inline]
pub(crate) fn positive(l: f64) -> f64 {
    debug_assert!(l >= 0.0, "negative site likelihood {l}");
    l.max(f64::MIN_POSITIVE)
}
