//! Site-repeat compression for the PLF kernels.
//!
//! Distinct alignment *patterns* (global column dedup, done in
//! `phylo-bio`) are not the end of redundancy: below any given inner
//! node, many sites induce the *same* character pattern over just the
//! subtree's tips, so their conditional likelihoods at that node are
//! identical. BEAGLE and libpll exploit this as "site repeats": compute
//! each unique per-node repeat class once in `newview`, then expand the
//! result to all member sites.
//!
//! The classes are built incrementally bottom-up, which is what makes
//! detection cheap: a site's class at a node is determined entirely by
//! the pair of its children's class ids — a tip child contributes its
//! 4-bit character code, an inner child the site's class id in that
//! child's own [`RepeatTable`]. One hash pass per node over `(left
//! class, right class)` pairs assigns dense ids in first-occurrence
//! order.
//!
//! # Bit-identity contract
//!
//! Compression must be invisible to every downstream consumer:
//!
//! * **Values**: sites of one class have bit-identical child inputs
//!   (induction over the tree; base case tips), and every kernel is a
//!   deterministic per-site function of its inputs, so computing the
//!   class once and copying the 128-byte site to each member yields the
//!   exact bytes the uncompressed kernel would have produced.
//! * **Per-site scaling counters**: a site's output counter is `(own
//!   rescale bump) + (sum of child counters)`; both are class
//!   functions, so the expanded counter array is bit-identical too.
//! * **The global `core.scaling.events` metric**: the kernel's
//!   [`crate::scaling::scale_site`] fires once per *class*, so the
//!   engine re-weights it by multiplicity — adding `own_bump_c ·
//!   (mult_c − 1)` per class — keeping the process-wide total equal to
//!   the uncompressed run's. See
//!   [`RepeatTable::extra_scaling_events`].
//!
//! Because expansion materializes the full per-site CLA, `evaluate_*`
//! and `derivative_sum_*` run unchanged over identical inputs: the
//! whole likelihood, not just the CLA, is bit-identical with
//! compression on or off.

use crate::kernels::Kernels;
use crate::layout::{site_range, FusedPmat, Lut16x16};
use crate::{AlignedVec, SITE_STRIDE};
use phylo_tree::{EdgeId, NodeId};
use std::collections::HashMap;

/// Whether engines compress repeated sites, gated per
/// [`crate::EngineConfig`] and overridable process-wide through the
/// `PHYLOMIC_SITE_REPEATS` environment variable (mirroring
/// `PHYLOMIC_KERNELS`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SiteRepeats {
    /// Never compress: the uncompressed reference path.
    Off,
    /// Compress whenever a node has any repeated site at all.
    On,
    /// Compress only where profitable: the kernel saving must clear the
    /// gather/expand overhead (see [`RepeatTable::profitable`]).
    Auto,
}

impl SiteRepeats {
    /// Every variant, in parse/display order.
    pub const ALL: [SiteRepeats; 3] = [SiteRepeats::Off, SiteRepeats::On, SiteRepeats::Auto];

    /// The `PHYLOMIC_SITE_REPEATS` environment override, parsed once
    /// per process. Returns `None` when the variable is unset or empty.
    ///
    /// # Panics
    /// Panics on an unparseable value: a mistyped mode must not
    /// silently fall back to the default.
    pub fn env_override() -> Option<SiteRepeats> {
        static OVERRIDE: std::sync::OnceLock<Option<SiteRepeats>> = std::sync::OnceLock::new();
        *OVERRIDE.get_or_init(|| {
            let v = std::env::var("PHYLOMIC_SITE_REPEATS").ok()?;
            let v = v.trim();
            if v.is_empty() {
                return None;
            }
            Some(
                v.parse().unwrap_or_else(|e: SiteRepeatsParseError| {
                    panic!("PHYLOMIC_SITE_REPEATS: {e}")
                }),
            )
        })
    }

    /// The mode an engine configured with `self` actually runs:
    /// `PHYLOMIC_SITE_REPEATS` (when set) wins.
    pub fn effective(self) -> SiteRepeats {
        Self::env_override().unwrap_or(self)
    }

    /// Whether this mode builds repeat tables at all.
    pub fn enabled(self) -> bool {
        self != SiteRepeats::Off
    }
}

/// An unrecognized site-repeats mode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteRepeatsParseError(String);

impl std::fmt::Display for SiteRepeatsParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown site-repeats mode {:?} (expected off, on or auto)",
            self.0
        )
    }
}

impl std::error::Error for SiteRepeatsParseError {}

impl std::str::FromStr for SiteRepeats {
    type Err = SiteRepeatsParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(SiteRepeats::Off),
            "on" => Ok(SiteRepeats::On),
            "auto" => Ok(SiteRepeats::Auto),
            other => Err(SiteRepeatsParseError(other.to_string())),
        }
    }
}

impl std::fmt::Display for SiteRepeats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SiteRepeats::Off => "off",
            SiteRepeats::On => "on",
            SiteRepeats::Auto => "auto",
        })
    }
}

/// One child's per-site class ids for repeat-class construction: a tip
/// contributes its 4-bit character codes, an inner node the site→class
/// map of its own table.
#[derive(Clone, Copy)]
pub enum ClassSource<'a> {
    /// Tip child: 4-bit ambiguity codes, one per site.
    Tip(&'a [u8]),
    /// Inner child: the child's repeat table (must cover the same
    /// sites).
    Inner(&'a RepeatTable),
}

impl ClassSource<'_> {
    #[inline]
    fn class(&self, site: usize) -> u32 {
        match self {
            ClassSource::Tip(codes) => codes[site] as u32,
            ClassSource::Inner(table) => table.site2class[site],
        }
    }

    fn len(&self) -> usize {
        match self {
            ClassSource::Tip(codes) => codes.len(),
            ClassSource::Inner(table) => table.num_sites(),
        }
    }
}

/// Per-node repeat index table: the partition of this engine slice's
/// sites into classes with identical induced subtree patterns at one
/// inner node (for its current orientation).
#[derive(Clone, Debug, PartialEq)]
pub struct RepeatTable {
    /// Dense class id per site, ids assigned in first-occurrence order.
    site2class: Vec<u32>,
    /// Representative (first-occurrence) site per class.
    repr: Vec<u32>,
    /// Number of member sites per class.
    mult: Vec<u32>,
}

impl RepeatTable {
    /// Builds the table for a node from its two children's class
    /// sources, in one hash pass over the `(left, right)` class pairs.
    pub fn build(left: ClassSource<'_>, right: ClassSource<'_>) -> Self {
        let n = left.len();
        debug_assert_eq!(n, right.len(), "children cover different site ranges");
        let mut site2class = Vec::with_capacity(n);
        let mut repr = Vec::new();
        let mut mult: Vec<u32> = Vec::new();
        let mut ids: HashMap<u64, u32> = HashMap::with_capacity(n.min(1 << 16));
        for i in 0..n {
            let key = (u64::from(left.class(i)) << 32) | u64::from(right.class(i));
            let next = repr.len() as u32;
            let id = *ids.entry(key).or_insert(next);
            if id == next {
                repr.push(i as u32);
                mult.push(0);
            }
            mult[id as usize] += 1;
            site2class.push(id);
        }
        RepeatTable {
            site2class,
            repr,
            mult,
        }
    }

    /// Number of sites covered.
    pub fn num_sites(&self) -> usize {
        self.site2class.len()
    }

    /// Number of distinct repeat classes.
    pub fn num_classes(&self) -> usize {
        self.repr.len()
    }

    /// Dense class id per site.
    pub fn site2class(&self) -> &[u32] {
        &self.site2class
    }

    /// Representative (first-occurrence) site per class.
    pub fn repr_sites(&self) -> &[u32] {
        &self.repr
    }

    /// Member count per class.
    pub fn multiplicities(&self) -> &[u32] {
        &self.mult
    }

    /// `classes / sites`: 1.0 means no repeats, small means highly
    /// compressible.
    pub fn ratio(&self) -> f64 {
        if self.num_sites() == 0 {
            1.0
        } else {
            self.num_classes() as f64 / self.num_sites() as f64
        }
    }

    /// Whether compressing this node pays for the gather/expand copies:
    /// requires at least a 20% site reduction (`classes ≤ 0.8 · sites`).
    /// Each skipped class saves a full kernel site (~2 fused matvecs)
    /// against one extra 128-byte copy per site, so the break-even
    /// sits well above this threshold; 20% keeps marginal nodes on the
    /// reference path.
    pub fn profitable(&self) -> bool {
        self.num_classes() * 5 <= self.num_sites() * 4
    }

    /// Whether a node with this table runs compressed under `mode`.
    pub fn compresses(&self, mode: SiteRepeats) -> bool {
        match mode {
            SiteRepeats::Off => false,
            SiteRepeats::On => self.num_classes() < self.num_sites(),
            SiteRepeats::Auto => self.profitable(),
        }
    }

    /// Gathers tip codes at the class representatives into `out`
    /// (resized to `num_classes`).
    pub fn gather_codes(&self, codes: &[u8], out: &mut Vec<u8>) {
        out.clear();
        out.extend(self.repr.iter().map(|&s| codes[s as usize]));
    }

    /// Gathers CLA sites and scaling counters at the class
    /// representatives into the leading `num_classes` entries of
    /// `out_v`/`out_s`.
    pub fn gather_sites(
        &self,
        values: &[f64],
        scale: &[u32],
        out_v: &mut [f64],
        out_s: &mut [u32],
    ) {
        for (c, &s) in self.repr.iter().enumerate() {
            let s = s as usize;
            out_v[site_range(c)].copy_from_slice(&values[site_range(s)]);
            out_s[c] = scale[s];
        }
    }

    /// Expands class-indexed kernel output (`num_classes` sites in
    /// `comp_v`/`comp_s`) to the full per-site buffers. Pure 128-byte
    /// copies: expanded CLAs are bit-identical to the uncompressed
    /// kernel's output (see the module docs for why).
    pub fn expand(&self, comp_v: &[f64], comp_s: &[u32], out_v: &mut [f64], out_s: &mut [u32]) {
        for (i, &c) in self.site2class.iter().enumerate() {
            let c = c as usize;
            out_v[site_range(i)].copy_from_slice(&comp_v[site_range(c)]);
            out_s[i] = comp_s[c];
        }
    }

    /// The multiplicity-weighted correction for the global
    /// `core.scaling.events` metric: the kernel rescaled each class at
    /// most once, so the engine adds `own_bump_c · (mult_c − 1)` per
    /// class, where `own_bump_c = comp_s[c] − input_scale_sum[c]` (the
    /// class's own rescale bump net of the child counters it inherited,
    /// always 0 or 1). `input_scale_sum` is the per-class sum of the
    /// gathered child counters (all zeros for tip-tip nodes).
    pub fn extra_scaling_events(&self, comp_s: &[u32], input_scale_sum: &[u32]) -> u64 {
        let mut extra = 0u64;
        for (c, &m) in self.mult.iter().enumerate() {
            let own = comp_s[c] - input_scale_sum[c];
            debug_assert!(own <= 1, "per-class rescale bump must be 0 or 1");
            extra += u64::from(own) * u64::from(m - 1);
        }
        extra
    }
}

/// Cache key describing the state a node's repeat table was built in.
/// Deliberately smaller than the CLA cache key: tables depend only on
/// topology and tip bindings — never on branch lengths or the model —
/// so Newton branch smoothing (the search hot path) reuses them across
/// every CLA recomputation.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct RepeatKey {
    /// Orientation the table's children were taken for.
    pub toward_edge: EdgeId,
    /// The two children, canonicalized tip-first.
    pub child_nodes: [NodeId; 2],
    /// Children's own table stamps (0 for tips); a rebuilt child table
    /// cascades invalidation upward.
    pub child_table_stamps: [u64; 2],
    /// Tip-binding epoch: re-binding alignment rows to tree tips
    /// invalidates every table.
    pub tip_epoch: u64,
}

/// Reusable class-indexed staging buffers for compressed `newview`
/// calls: gathered child inputs and the kernel's per-class output,
/// all sized for the engine's full pattern count (classes ≤ sites).
/// Kernel-facing slices stay whole-site and 64-byte-base aligned, so
/// the explicit-SIMD backend's buffer contract holds for the
/// compressed views too.
pub(crate) struct RepeatScratch {
    v_l: AlignedVec,
    v_r: AlignedVec,
    s_l: Vec<u32>,
    s_r: Vec<u32>,
    /// Per-class sum of gathered child counters (the inherited part of
    /// the output counter), for the multiplicity correction.
    in_s: Vec<u32>,
    codes_l: Vec<u8>,
    codes_r: Vec<u8>,
    out_v: AlignedVec,
    out_s: Vec<u32>,
}

impl RepeatScratch {
    /// Allocates scratch for up to `num_patterns` classes.
    pub(crate) fn new(num_patterns: usize) -> Self {
        RepeatScratch {
            v_l: AlignedVec::zeroed(num_patterns * SITE_STRIDE),
            v_r: AlignedVec::zeroed(num_patterns * SITE_STRIDE),
            s_l: vec![0; num_patterns],
            s_r: vec![0; num_patterns],
            in_s: vec![0; num_patterns],
            codes_l: Vec::with_capacity(num_patterns),
            codes_r: Vec::with_capacity(num_patterns),
            out_v: AlignedVec::zeroed(num_patterns * SITE_STRIDE),
            out_s: vec![0; num_patterns],
        }
    }

    /// Expands the per-class kernel output into the full per-site CLA
    /// buffers and re-weights the global scaling-events metric by class
    /// multiplicity (see the module docs' bit-identity contract).
    fn finish(&mut self, table: &RepeatTable, nc: usize, out_v: &mut [f64], out_s: &mut [u32]) {
        table.expand(
            &self.out_v[..nc * SITE_STRIDE],
            &self.out_s[..nc],
            out_v,
            out_s,
        );
        let extra = table.extra_scaling_events(&self.out_s[..nc], &self.in_s[..nc]);
        if extra > 0 {
            crate::scaling::add_scaling_events(extra);
        }
    }

    /// Compressed tip-tip `newview`: gathers representative codes, runs
    /// the kernel over `num_classes` sites, expands.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn newview_tt(
        &mut self,
        kernel: &dyn Kernels,
        table: &RepeatTable,
        lut_l: &Lut16x16,
        lut_r: &Lut16x16,
        codes_l: &[u8],
        codes_r: &[u8],
        out_v: &mut [f64],
        out_s: &mut [u32],
    ) {
        let nc = table.num_classes();
        table.gather_codes(codes_l, &mut self.codes_l);
        table.gather_codes(codes_r, &mut self.codes_r);
        kernel.newview_tt(
            lut_l,
            lut_r,
            &self.codes_l,
            &self.codes_r,
            &mut self.out_v[..nc * SITE_STRIDE],
            &mut self.out_s[..nc],
        );
        self.in_s[..nc].fill(0);
        self.finish(table, nc, out_v, out_s);
    }

    /// Compressed tip-inner `newview`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn newview_ti(
        &mut self,
        kernel: &dyn Kernels,
        table: &RepeatTable,
        lut_l: &Lut16x16,
        codes_l: &[u8],
        p_r: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        out_v: &mut [f64],
        out_s: &mut [u32],
    ) {
        let nc = table.num_classes();
        table.gather_codes(codes_l, &mut self.codes_l);
        table.gather_sites(v_r, scale_r, &mut self.v_r, &mut self.s_r);
        kernel.newview_ti(
            lut_l,
            &self.codes_l,
            p_r,
            &self.v_r[..nc * SITE_STRIDE],
            &self.s_r[..nc],
            &mut self.out_v[..nc * SITE_STRIDE],
            &mut self.out_s[..nc],
        );
        self.in_s[..nc].copy_from_slice(&self.s_r[..nc]);
        self.finish(table, nc, out_v, out_s);
    }

    /// Compressed inner-inner `newview`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn newview_ii(
        &mut self,
        kernel: &dyn Kernels,
        table: &RepeatTable,
        p_l: &FusedPmat,
        v_l: &[f64],
        scale_l: &[u32],
        p_r: &FusedPmat,
        v_r: &[f64],
        scale_r: &[u32],
        out_v: &mut [f64],
        out_s: &mut [u32],
    ) {
        let nc = table.num_classes();
        table.gather_sites(v_l, scale_l, &mut self.v_l, &mut self.s_l);
        table.gather_sites(v_r, scale_r, &mut self.v_r, &mut self.s_r);
        kernel.newview_ii(
            p_l,
            &self.v_l[..nc * SITE_STRIDE],
            &self.s_l[..nc],
            p_r,
            &self.v_r[..nc * SITE_STRIDE],
            &self.s_r[..nc],
            &mut self.out_v[..nc * SITE_STRIDE],
            &mut self.out_s[..nc],
        );
        for c in 0..nc {
            self.in_s[c] = self.s_l[c] + self.s_r[c];
        }
        self.finish(table, nc, out_v, out_s);
    }
}

/// Cumulative per-engine compression effectiveness, surfaced through
/// trace metadata and the CLI summary.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RepeatStats {
    /// Total `newview` calls (compressed or not).
    pub newview_calls: u64,
    /// Calls that ran over repeat classes instead of all sites.
    pub compressed_calls: u64,
    /// Sites covered by compressed calls.
    pub sites: u64,
    /// Classes actually computed by compressed calls.
    pub classes: u64,
}

impl RepeatStats {
    /// `classes / sites` over all compressed calls — the achieved
    /// kernel-work ratio (1.0 = nothing saved; `None` before any
    /// compressed call).
    pub fn ratio(&self) -> Option<f64> {
        (self.sites > 0).then(|| self.classes as f64 / self.sites as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_display_parse_round_trips_all_variants() {
        for mode in SiteRepeats::ALL {
            let name = mode.to_string();
            let back: SiteRepeats = name.parse().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(back, mode, "{name} did not round-trip");
        }
    }

    #[test]
    fn unknown_mode_names_are_rejected_with_the_full_menu() {
        let err = "maybe".parse::<SiteRepeats>().unwrap_err();
        let msg = err.to_string();
        for mode in SiteRepeats::ALL {
            assert!(msg.contains(&mode.to_string()), "{msg} missing {mode}");
        }
    }

    #[test]
    fn tip_tip_classes_follow_code_pairs() {
        let l = [1u8, 2, 1, 1, 2];
        let r = [4u8, 8, 4, 8, 8];
        let t = RepeatTable::build(ClassSource::Tip(&l), ClassSource::Tip(&r));
        // Pairs: (1,4) (2,8) (1,4) (1,8) (2,8) → classes 0 1 0 2 1.
        assert_eq!(t.site2class(), &[0, 1, 0, 2, 1]);
        assert_eq!(t.repr_sites(), &[0, 1, 3]);
        assert_eq!(t.multiplicities(), &[2, 2, 1]);
        assert_eq!(t.num_classes(), 3);
    }

    #[test]
    fn all_distinct_sites_yield_no_compression() {
        let l: Vec<u8> = (0..8).map(|i| 1 << (i % 4)).collect();
        let r: Vec<u8> = (0..8).map(|i| 1 << ((i / 4) % 4)).collect();
        let t = RepeatTable::build(ClassSource::Tip(&l), ClassSource::Tip(&r));
        // (l, r) pairs cycle with period 8 here, all distinct.
        assert_eq!(t.num_classes(), 8);
        assert!(!t.compresses(SiteRepeats::On));
        assert!(!t.compresses(SiteRepeats::Auto));
        assert_eq!(t.ratio(), 1.0);
    }

    #[test]
    fn fully_repeated_sites_collapse_to_one_class() {
        let codes = [5u8; 32];
        let t = RepeatTable::build(ClassSource::Tip(&codes), ClassSource::Tip(&codes));
        assert_eq!(t.num_classes(), 1);
        assert_eq!(t.multiplicities(), &[32]);
        assert!(t.compresses(SiteRepeats::On));
        assert!(t.compresses(SiteRepeats::Auto));
    }

    #[test]
    fn bottom_up_composition_distinguishes_subtree_patterns() {
        // Two tips glued into a cherry, then paired with a third tip:
        // sites 0 and 3 repeat at the cherry AND with tip c equal, so
        // they share a class at the parent; site 2 shares the cherry
        // class but differs at c.
        let a = [1u8, 2, 1, 1];
        let b = [4u8, 4, 4, 4];
        let cherry = RepeatTable::build(ClassSource::Tip(&a), ClassSource::Tip(&b));
        assert_eq!(cherry.site2class(), &[0, 1, 0, 0]);
        let c = [8u8, 8, 2, 8];
        let parent = RepeatTable::build(ClassSource::Tip(&c), ClassSource::Inner(&cherry));
        assert_eq!(parent.site2class(), &[0, 1, 2, 0]);
        assert_eq!(parent.multiplicities(), &[2, 1, 1]);
    }

    #[test]
    fn gather_and_expand_round_trip_bit_identically() {
        let l = [1u8, 2, 1, 2, 1];
        let r = [4u8, 4, 4, 4, 4];
        let t = RepeatTable::build(ClassSource::Tip(&l), ClassSource::Tip(&r));
        assert_eq!(t.num_classes(), 2);
        let n = t.num_sites();
        // A fake per-class kernel result.
        let comp_v: Vec<f64> = (0..t.num_classes() * SITE_STRIDE)
            .map(|i| i as f64 + 0.25)
            .collect();
        let comp_s = [3u32, 7];
        let mut out_v = vec![0.0; n * SITE_STRIDE];
        let mut out_s = vec![0u32; n];
        t.expand(&comp_v, &comp_s, &mut out_v, &mut out_s);
        assert_eq!(out_s, [3, 7, 3, 7, 3]);
        for (i, &c) in t.site2class().iter().enumerate() {
            assert_eq!(
                out_v[i * SITE_STRIDE..(i + 1) * SITE_STRIDE],
                comp_v[c as usize * SITE_STRIDE..(c as usize + 1) * SITE_STRIDE]
            );
        }
        // Gathering the expansion back at the representatives recovers
        // the compressed buffers exactly.
        let mut back_v = vec![0.0; t.num_classes() * SITE_STRIDE];
        let mut back_s = vec![0u32; t.num_classes()];
        t.gather_sites(&out_v, &out_s, &mut back_v, &mut back_s);
        assert_eq!(back_v, comp_v);
        assert_eq!(back_s, &comp_s[..]);
    }

    #[test]
    fn extra_scaling_events_weights_own_bumps_by_multiplicity() {
        let l = [1u8, 1, 2, 1, 2, 2];
        let r = [4u8; 6];
        let t = RepeatTable::build(ClassSource::Tip(&l), ClassSource::Tip(&r));
        assert_eq!(t.multiplicities(), &[3, 3]);
        // Class 0: inherited 2, bumped (3 = 2 + 1). Class 1: inherited
        // 5, no bump.
        let comp_s = [3u32, 5];
        let inherited = [2u32, 5];
        // Only class 0 bumped; its 2 non-representative members were
        // skipped by the kernel.
        assert_eq!(t.extra_scaling_events(&comp_s, &inherited), 2);
    }

    #[test]
    fn profitability_threshold_sits_at_twenty_percent() {
        // 10 sites / 8 classes: exactly at the threshold.
        let l: Vec<u8> = (0..10).map(|i| 1 << (i.min(7) % 4)).collect();
        let r: Vec<u8> = (0..10).map(|i| 1 << ((i.min(7) / 4) % 4)).collect();
        let t = RepeatTable::build(ClassSource::Tip(&l), ClassSource::Tip(&r));
        assert_eq!(t.num_classes(), 8);
        assert!(t.profitable());
        assert!(t.compresses(SiteRepeats::Auto));
    }
}
