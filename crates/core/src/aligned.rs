//! 64-byte aligned `f64` buffers.
//!
//! §V-B2 of the paper: "Vectorized instructions can only operate on
//! memory addresses which are aligned to 64-byte boundaries." Rust's
//! `Vec<f64>` only guarantees 8-byte alignment, so CLAs and summation
//! buffers use this type instead. Alignment also matters on the host:
//! AVX loads are fastest when they never straddle a cache line.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};

/// Cache-line alignment in bytes (one MIC/AVX-512 vector register).
pub const ALIGNMENT: usize = 64;

/// A heap buffer of `f64` whose base address is 64-byte aligned.
///
/// The length is fixed at construction (CLAs never grow); contents are
/// zero-initialized. Dereferences to `[f64]`.
pub struct AlignedVec {
    ptr: std::ptr::NonNull<f64>,
    len: usize,
}

// SAFETY: AlignedVec owns its allocation exclusively, like Vec<f64>.
unsafe impl Send for AlignedVec {}
unsafe impl Sync for AlignedVec {}

impl AlignedVec {
    /// Allocates a zeroed, 64-byte aligned buffer of `len` doubles.
    ///
    /// A `len` of zero is allowed and performs no allocation.
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return AlignedVec {
                ptr: std::ptr::NonNull::dangling(),
                len: 0,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > 0 checked above).
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = std::ptr::NonNull::new(raw as *mut f64) else {
            handle_alloc_error(layout);
        };
        AlignedVec { ptr, len }
    }

    fn layout(len: usize) -> Layout {
        // The multiply must be checked: in release builds a wrapping
        // `len * 8` would silently produce a tiny layout and the
        // subsequent writes would run off the allocation. Drop calls
        // this again with the same len, so alloc/dealloc layouts agree.
        let bytes = len
            .checked_mul(std::mem::size_of::<f64>())
            .expect("allocation size overflow");
        Layout::from_size_align(bytes, ALIGNMENT).expect("allocation size overflow")
    }

    /// Number of doubles.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw base address (for alignment assertions in tests).
    pub fn as_ptr(&self) -> *const f64 {
        self.ptr.as_ptr()
    }

    /// Overwrites every element with `value`.
    pub fn fill(&mut self, value: f64) {
        self.as_mut().fill(value);
    }
}

/// Debug-asserts the SIMD-kernel buffer contract (§V-B2, documented in
/// [`crate::layout`]): `buf` holds exactly `sites` whole
/// [`crate::SITE_STRIDE`]-double blocks and its base address is 64-byte
/// aligned — both guaranteed by [`AlignedVec`] for engine-owned CLAs
/// and sumtables. The explicit-SIMD backend calls this at every kernel
/// entry so a mis-padded or under-aligned buffer fails loudly in debug
/// builds instead of silently degrading (unaligned loads) or faulting a
/// streaming store.
#[inline]
pub fn debug_assert_site_buffer(buf: &[f64], sites: usize, what: &str) {
    debug_assert_eq!(
        buf.len(),
        sites * crate::SITE_STRIDE,
        "{what}: buffer not padded to whole SITE_STRIDE blocks"
    );
    // Empty buffers may be dangling (AlignedVec allocates nothing for
    // len 0); no site is ever loaded from them, so alignment is moot.
    debug_assert!(
        buf.is_empty() || (buf.as_ptr() as usize).is_multiple_of(ALIGNMENT),
        "{what}: buffer base not 64-byte aligned"
    );
}

impl Deref for AlignedVec {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        // SAFETY: ptr/len describe our exclusive allocation (or a
        // dangling ptr with len 0, for which from_raw_parts is fine).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl DerefMut for AlignedVec {
    fn deref_mut(&mut self) -> &mut [f64] {
        // SAFETY: as above, and &mut self guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl Drop for AlignedVec {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: allocated with the identical layout in `zeroed`.
            unsafe { dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.len)) };
        }
    }
}

impl Clone for AlignedVec {
    fn clone(&self) -> Self {
        let mut out = AlignedVec::zeroed(self.len);
        out.copy_from_slice(self);
        out
    }
}

impl std::fmt::Debug for AlignedVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedVec(len={})", self.len)
    }
}

impl PartialEq for AlignedVec {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_address_is_64_byte_aligned() {
        for len in [1usize, 7, 16, 1000, 4096] {
            let v = AlignedVec::zeroed(len);
            assert_eq!(v.as_ptr() as usize % ALIGNMENT, 0, "len={len}");
        }
    }

    #[test]
    fn zero_initialized() {
        let v = AlignedVec::zeroed(123);
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(v.len(), 123);
    }

    #[test]
    fn empty_buffer() {
        let v = AlignedVec::zeroed(0);
        assert!(v.is_empty());
        assert_eq!(&v[..], &[] as &[f64]);
        let _ = v.clone();
    }

    #[test]
    fn zero_length_drop_does_not_dealloc_dangling() {
        // A len-0 buffer holds NonNull::dangling() with no allocation;
        // Drop must not pass that pointer to dealloc. Running many
        // create/clone/drop cycles makes a bad free fail loudly under
        // Miri and the allocator's debug assertions.
        for _ in 0..64 {
            let v = AlignedVec::zeroed(0);
            let w = v.clone();
            assert!(w.is_empty());
            drop(v);
            drop(w);
        }
    }

    #[test]
    #[should_panic(expected = "allocation size overflow")]
    fn oversized_request_panics_before_allocating() {
        // len * 8 overflows usize: the checked multiply must panic
        // rather than wrap to a tiny allocation.
        let _ = AlignedVec::zeroed(usize::MAX / 2);
    }

    #[test]
    fn mutation_and_clone() {
        let mut v = AlignedVec::zeroed(16);
        for (i, x) in v.iter_mut().enumerate() {
            *x = i as f64;
        }
        let w = v.clone();
        assert_eq!(v, w);
        assert_eq!(w[15], 15.0);
        assert_eq!(w.as_ptr() as usize % ALIGNMENT, 0);
    }

    #[test]
    fn fill_overwrites() {
        let mut v = AlignedVec::zeroed(8);
        v.fill(2.5);
        assert!(v.iter().all(|&x| x == 2.5));
    }

    #[test]
    fn kernel_buffer_contract_accepts_aligned_whole_site_buffers() {
        for sites in [0usize, 1, 7, 31] {
            let v = AlignedVec::zeroed(sites * crate::SITE_STRIDE);
            debug_assert_site_buffer(&v, sites, "test");
        }
    }

    #[test]
    #[should_panic(expected = "whole SITE_STRIDE blocks")]
    fn kernel_buffer_contract_rejects_partial_site_padding() {
        let v = AlignedVec::zeroed(crate::SITE_STRIDE - 1);
        debug_assert_site_buffer(&v, 1, "test");
        // Release builds compile the check out; fail the same way so
        // the should_panic expectation holds in every profile.
        #[cfg(not(debug_assertions))]
        panic!("whole SITE_STRIDE blocks");
    }

    #[test]
    #[should_panic(expected = "not 64-byte aligned")]
    fn kernel_buffer_contract_rejects_misaligned_base() {
        // Offset by 4 doubles = 32 bytes: still a whole-site length,
        // but the base is only 32-byte aligned.
        let v = AlignedVec::zeroed(3 * crate::SITE_STRIDE);
        debug_assert_site_buffer(&v[4..4 + 2 * crate::SITE_STRIDE], 2, "test");
        #[cfg(not(debug_assertions))]
        panic!("not 64-byte aligned");
    }

    #[test]
    fn many_allocations_stay_aligned() {
        let all: Vec<AlignedVec> = (1..200).map(AlignedVec::zeroed).collect();
        for v in &all {
            assert_eq!(v.as_ptr() as usize % ALIGNMENT, 0);
        }
    }
}
