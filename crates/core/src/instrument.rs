//! Kernel-level instrumentation.
//!
//! The paper's Figure 3 and Table III are driven by how much work each
//! kernel performs. [`KernelStats`] counts invocations and
//! pattern-sites processed per kernel during a real run — and, since
//! the measured-timing calibration work, also *measures* each
//! invocation's wall time into per-kernel [`LatencyHistogram`]s and
//! records per-parallel-region fork/join latencies ([`RegionStats`]).
//! The `micsim` crate fits its machine model against these measured
//! timings (exported as a JSONL trace by [`crate::trace`]) instead of
//! operation counts alone.

use crate::cost::{KernelCost, KernelOp};

/// The four PLF kernels of §IV.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelId {
    /// Conditional likelihood array update.
    Newview,
    /// Log-likelihood at the virtual root.
    Evaluate,
    /// Derivative precomputation (element-wise products).
    DerivativeSum,
    /// First/second derivative accumulation per Newton step.
    DerivativeCore,
}

impl KernelId {
    /// All kernels, in paper order.
    pub const ALL: [KernelId; 4] = [
        KernelId::Newview,
        KernelId::Evaluate,
        KernelId::DerivativeSum,
        KernelId::DerivativeCore,
    ];

    /// The paper's name for the kernel.
    pub fn paper_name(self) -> &'static str {
        match self {
            KernelId::Newview => "newview",
            KernelId::Evaluate => "evaluate",
            KernelId::DerivativeSum => "derivativeSum",
            KernelId::DerivativeCore => "derivativeCore",
        }
    }

    fn index(self) -> usize {
        match self {
            KernelId::Newview => 0,
            KernelId::Evaluate => 1,
            KernelId::DerivativeSum => 2,
            KernelId::DerivativeCore => 3,
        }
    }
}

/// Counter for one kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCount {
    /// Number of kernel invocations.
    pub calls: u64,
    /// Total pattern-sites processed across all invocations.
    pub sites: u64,
}

/// Number of log₂ buckets in a [`LatencyHistogram`] (bucket `i` counts
/// samples in `[2^i, 2^(i+1))` ns; the last bucket absorbs the tail).
pub const HIST_BUCKETS: usize = 32;

/// A log₂-bucketed wall-clock latency histogram in nanoseconds.
///
/// Bucket `i` counts samples whose duration lies in `[2^i, 2^(i+1))`
/// ns (zero-duration samples land in bucket 0; everything beyond
/// ~4.3 s in the last bucket). Alongside the buckets it tracks count,
/// sum, min and max, which is what the `micsim` calibration fit and
/// the region-overhead ablation consume.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample of `ns` nanoseconds.
    #[inline]
    pub fn record_ns(&mut self, ns: u64) {
        let bucket = (63 - (ns | 1).leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// Smallest sample, if any was recorded.
    pub fn min_ns(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min_ns)
    }

    /// Largest sample, if any was recorded.
    pub fn max_ns(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max_ns)
    }

    /// Mean sample in nanoseconds (0.0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// The raw log₂ buckets.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Reassembles a histogram from raw parts (used by the atomic
    /// metrics histogram to hand out plain copies).
    pub(crate) fn from_parts(
        buckets: [u64; HIST_BUCKETS],
        count: u64,
        total_ns: u64,
        min_ns: u64,
        max_ns: u64,
    ) -> Self {
        LatencyHistogram {
            buckets,
            count,
            total_ns,
            min_ns: if count == 0 { u64::MAX } else { min_ns },
            max_ns,
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) in nanoseconds by
    /// linear interpolation inside the log₂ bucket containing the
    /// target rank. Bucket `i` spans `[2^i, 2^(i+1))` (bucket 0 spans
    /// `[0, 2)`), so the estimate is exact to within a factor of 2 and
    /// is additionally clamped to the recorded min/max. Returns `None`
    /// on an empty histogram or out-of-range `q`.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // 1-based rank of the sample that sits at quantile q.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = if i == 0 { 0u64 } else { 1u64 << i };
                let hi = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
                let frac = (rank - seen) as f64 / n as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return Some((est as u64).clamp(self.min_ns, self.max_ns));
            }
            seen += n;
        }
        self.max_ns() // unreachable: bucket counts always cover `count`
    }

    /// Median (p50) estimate in nanoseconds.
    pub fn p50_ns(&self) -> Option<u64> {
        self.quantile_ns(0.50)
    }

    /// 95th-percentile estimate in nanoseconds.
    pub fn p95_ns(&self) -> Option<u64> {
        self.quantile_ns(0.95)
    }

    /// 99th-percentile estimate in nanoseconds.
    pub fn p99_ns(&self) -> Option<u64> {
        self.quantile_ns(0.99)
    }

    /// Adds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Fork/join synchronization latencies of parallel regions, as seen by
/// the master thread: `fork` is the time to release the workers into a
/// region (the fork barrier), `join` the time until the slowest worker
/// deposits its partial result (the join barrier). "Master and worker
/// processes have to communicate at least twice per parallel region"
/// (§V-D) — these histograms measure exactly those two points.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegionStats {
    /// Number of parallel regions dispatched.
    pub count: u64,
    /// Fork-barrier latency per region.
    pub fork: LatencyHistogram,
    /// Join-barrier latency per region.
    pub join: LatencyHistogram,
}

impl RegionStats {
    /// Records one region's fork and join latencies.
    #[inline]
    pub fn record(&mut self, fork_ns: u64, join_ns: u64) {
        self.count += 1;
        self.fork.record_ns(fork_ns);
        self.join.record_ns(join_ns);
    }

    /// Adds another block of region stats into this one.
    pub fn merge(&mut self, other: &RegionStats) {
        self.count += other.count;
        self.fork.merge(&other.fork);
        self.join.merge(&other.join);
    }
}

/// Work, wall time and analytical roofline cost of one concrete
/// kernel entry point ([`KernelOp`]), aggregated over invocations.
///
/// `flops`/`bytes_*` come from the cost model ([`crate::cost`]), not
/// measurement: the engine knows analytically how much arithmetic and
/// traffic each call performs, so achieved GFLOP/s and GB/s are
/// `flops / total_ns` and `bytes / total_ns` with no hot-path hooks
/// beyond the existing timing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCost {
    /// Number of invocations.
    pub calls: u64,
    /// Pattern-sites processed (full width; compression does not
    /// shrink this — it shrinks the cost fields instead).
    pub sites: u64,
    /// Total wall time across invocations.
    pub total_ns: u64,
    /// Modeled floating-point operations.
    pub flops: u64,
    /// Modeled bytes read.
    pub bytes_read: u64,
    /// Modeled bytes written.
    pub bytes_written: u64,
}

impl OpCost {
    /// Achieved GFLOP/s over the recorded wall time (0.0 when untimed).
    pub fn gflops(&self) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            self.flops as f64 / self.total_ns as f64
        }
    }

    /// Achieved GB/s (read + write) over the recorded wall time.
    pub fn gbps(&self) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            (self.bytes_read + self.bytes_written) as f64 / self.total_ns as f64
        }
    }

    /// Arithmetic intensity in flops per byte (0.0 when no traffic).
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.bytes_read + self.bytes_written;
        if bytes == 0 {
            0.0
        } else {
            self.flops as f64 / bytes as f64
        }
    }
}

/// Per-kernel work counters and wall-clock timings for one engine
/// (single-threaded; workers merge their stats after a parallel
/// region).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    counts: [KernelCount; 4],
    timing: [LatencyHistogram; 4],
    ops: [OpCost; 8],
    regions: RegionStats,
}

impl KernelStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one invocation over `sites` pattern-sites (no timing
    /// sample; use [`KernelStats::record_timed`] when the wall time is
    /// known).
    #[inline]
    pub fn record(&mut self, kernel: KernelId, sites: usize) {
        let c = &mut self.counts[kernel.index()];
        c.calls += 1;
        c.sites += sites as u64;
    }

    /// Records one invocation over `sites` pattern-sites that took
    /// `ns` nanoseconds of wall time.
    #[inline]
    pub fn record_timed(&mut self, kernel: KernelId, sites: usize, ns: u64) {
        self.record(kernel, sites);
        self.timing[kernel.index()].record_ns(ns);
    }

    /// Records one timed invocation of a concrete kernel entry point:
    /// updates the paper-kernel counters/timing *and* the per-op
    /// roofline aggregate using the analytical cost model.
    #[inline]
    pub fn record_op_timed(&mut self, op: KernelOp, sites: usize, ns: u64) {
        self.record_op_cost(op, sites, ns, op.cost(sites as u64));
    }

    /// Like [`KernelStats::record_op_timed`] but with an explicit cost
    /// (the site-repeat-compressed paths run the kernel over classes,
    /// so their cost differs from `op.cost(sites)`).
    #[inline]
    pub fn record_op_cost(&mut self, op: KernelOp, sites: usize, ns: u64, cost: KernelCost) {
        self.record_timed(op.kernel_id(), sites, ns);
        let o = &mut self.ops[op.index()];
        o.calls += 1;
        o.sites += sites as u64;
        o.total_ns = o.total_ns.saturating_add(ns);
        o.flops = o.flops.saturating_add(cost.flops);
        o.bytes_read = o.bytes_read.saturating_add(cost.bytes_read);
        o.bytes_written = o.bytes_written.saturating_add(cost.bytes_written);
        crate::cost::record_global(&cost);
    }

    /// Records one parallel region's fork/join latencies.
    #[inline]
    pub fn record_region(&mut self, fork_ns: u64, join_ns: u64) {
        self.regions.record(fork_ns, join_ns);
    }

    /// Counter for one kernel.
    pub fn get(&self, kernel: KernelId) -> KernelCount {
        self.counts[kernel.index()]
    }

    /// Wall-clock histogram of one kernel's invocations.
    pub fn timing(&self, kernel: KernelId) -> &LatencyHistogram {
        &self.timing[kernel.index()]
    }

    /// Aggregated roofline cost of one concrete kernel entry point.
    pub fn op(&self, op: KernelOp) -> OpCost {
        self.ops[op.index()]
    }

    /// Fork/join latency statistics of the parallel regions this
    /// stats block has seen (all zero for serial engines).
    pub fn regions(&self) -> &RegionStats {
        &self.regions
    }

    /// Adds another stats block into this one.
    pub fn merge(&mut self, other: &KernelStats) {
        for i in 0..4 {
            self.counts[i].calls += other.counts[i].calls;
            self.counts[i].sites += other.counts[i].sites;
            self.timing[i].merge(&other.timing[i]);
        }
        for i in 0..8 {
            let (a, b) = (&mut self.ops[i], &other.ops[i]);
            a.calls += b.calls;
            a.sites += b.sites;
            a.total_ns = a.total_ns.saturating_add(b.total_ns);
            a.flops = a.flops.saturating_add(b.flops);
            a.bytes_read = a.bytes_read.saturating_add(b.bytes_read);
            a.bytes_written = a.bytes_written.saturating_add(b.bytes_written);
        }
        self.regions.merge(&other.regions);
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = KernelStats::default();
    }

    /// Total invocations across all kernels (the offload-latency
    /// multiplier in the paper's §V-C analysis).
    pub fn total_calls(&self) -> u64 {
        self.counts.iter().map(|c| c.calls).sum()
    }

    /// Total pattern-sites across all kernels.
    pub fn total_sites(&self) -> u64 {
        self.counts.iter().map(|c| c.sites).sum()
    }

    /// Returns a copy with every `sites` count scaled by `factor`,
    /// keeping `calls` unchanged. This is how a trace measured on a
    /// small alignment is extrapolated to a larger one (same search,
    /// proportionally more sites per invocation).
    pub fn scale_sites(&self, factor: f64) -> KernelStats {
        assert!(factor.is_finite() && factor > 0.0);
        let mut out = self.clone();
        for c in out.counts.iter_mut() {
            c.sites = (c.sites as f64 * factor).round() as u64;
        }
        // The modeled cost is linear in sites, so it scales with them.
        for o in out.ops.iter_mut() {
            let scale = |v: u64| (v as f64 * factor).round() as u64;
            o.sites = scale(o.sites);
            o.flops = scale(o.flops);
            o.bytes_read = scale(o.bytes_read);
            o.bytes_written = scale(o.bytes_written);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_get() {
        let mut s = KernelStats::new();
        s.record(KernelId::Newview, 100);
        s.record(KernelId::Newview, 50);
        s.record(KernelId::Evaluate, 10);
        assert_eq!(s.get(KernelId::Newview).calls, 2);
        assert_eq!(s.get(KernelId::Newview).sites, 150);
        assert_eq!(s.get(KernelId::Evaluate).sites, 10);
        assert_eq!(s.get(KernelId::DerivativeSum).calls, 0);
        assert_eq!(s.total_calls(), 3);
        assert_eq!(s.total_sites(), 160);
    }

    #[test]
    fn merge_adds() {
        let mut a = KernelStats::new();
        a.record(KernelId::DerivativeCore, 7);
        let mut b = KernelStats::new();
        b.record(KernelId::DerivativeCore, 3);
        b.record(KernelId::Newview, 1);
        a.merge(&b);
        assert_eq!(a.get(KernelId::DerivativeCore).sites, 10);
        assert_eq!(a.get(KernelId::DerivativeCore).calls, 2);
        assert_eq!(a.get(KernelId::Newview).calls, 1);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = KernelStats::new();
        s.record(KernelId::Evaluate, 5);
        s.reset();
        assert_eq!(s, KernelStats::new());
    }

    #[test]
    fn scale_sites_preserves_calls() {
        let mut s = KernelStats::new();
        s.record(KernelId::Newview, 100);
        s.record(KernelId::Newview, 100);
        let scaled = s.scale_sites(10.0);
        assert_eq!(scaled.get(KernelId::Newview).calls, 2);
        assert_eq!(scaled.get(KernelId::Newview).sites, 2000);
    }

    #[test]
    fn paper_names() {
        assert_eq!(KernelId::DerivativeSum.paper_name(), "derivativeSum");
        assert_eq!(KernelId::ALL.len(), 4);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = LatencyHistogram::new();
        h.record_ns(0); // bucket 0
        h.record_ns(1); // bucket 0
        h.record_ns(2); // bucket 1
        h.record_ns(3); // bucket 1
        h.record_ns(1024); // bucket 10
        assert_eq!(h.count(), 5);
        assert_eq!(h.total_ns(), 1030);
        assert_eq!(h.min_ns(), Some(0));
        assert_eq!(h.max_ns(), Some(1024));
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[10], 1);
        assert!((h.mean_ns() - 206.0).abs() < 1e-9);
        // The tail bucket absorbs out-of-range samples.
        h.record_ns(u64::MAX);
        assert_eq!(h.buckets()[HIST_BUCKETS - 1], 1);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = LatencyHistogram::new();
        // 100 samples all equal: every quantile collapses to the value
        // (interpolation is clamped to [min, max]).
        for _ in 0..100 {
            h.record_ns(4096);
        }
        assert_eq!(h.p50_ns(), Some(4096));
        assert_eq!(h.p95_ns(), Some(4096));
        assert_eq!(h.p99_ns(), Some(4096));

        // A spread: 90 fast samples (bucket 1: [2,4)), 10 slow
        // (bucket 10: [1024,2048)). p50 sits in the fast bucket, p95
        // and p99 in the slow bucket.
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record_ns(3);
        }
        for _ in 0..10 {
            h.record_ns(1500);
        }
        let p50 = h.p50_ns().unwrap();
        assert!((2..4).contains(&p50), "p50 = {p50}");
        let p95 = h.p95_ns().unwrap();
        assert!((1024..2048).contains(&p95), "p95 = {p95}");
        let p99 = h.p99_ns().unwrap();
        assert!(p99 >= p95, "p99 = {p99} < p95 = {p95}");
        // Quantiles never exceed the recorded extremes.
        assert!(p99 <= h.max_ns().unwrap());
        assert!(h.quantile_ns(0.0).unwrap() >= h.min_ns().unwrap());
        assert_eq!(h.quantile_ns(1.0), Some(h.max_ns().unwrap()));

        // Degenerate inputs.
        assert_eq!(LatencyHistogram::new().p50_ns(), None);
        assert_eq!(h.quantile_ns(1.5), None);
        assert_eq!(h.quantile_ns(-0.1), None);
    }

    #[test]
    fn empty_histogram_has_no_extremes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.min_ns(), None);
        assert_eq!(h.max_ns(), None);
        assert_eq!(h.mean_ns(), 0.0);
    }

    #[test]
    fn op_records_feed_both_levels() {
        let mut s = KernelStats::new();
        s.record_op_timed(KernelOp::NewviewIi, 1000, 272_000);
        s.record_op_timed(KernelOp::EvaluateIi, 1000, 500);
        // Paper-kernel level sees the grouped calls.
        assert_eq!(s.get(KernelId::Newview).calls, 1);
        assert_eq!(s.get(KernelId::Evaluate).sites, 1000);
        assert_eq!(s.timing(KernelId::Newview).count(), 1);
        // Op level carries the modeled cost: 272 flops/site over
        // 272 ns/1000 sites is exactly 1 GFLOP/s.
        let nv = s.op(KernelOp::NewviewIi);
        assert_eq!(nv.calls, 1);
        assert_eq!(nv.flops, 272_000);
        assert_eq!(nv.bytes_read, 264_000);
        assert!((nv.gflops() - 1.0).abs() < 1e-12);
        assert!(nv.arithmetic_intensity() > 0.0);
        // Merge and scale preserve the op aggregates.
        let mut t = KernelStats::new();
        t.record_op_timed(KernelOp::NewviewIi, 500, 100);
        s.merge(&t);
        assert_eq!(s.op(KernelOp::NewviewIi).calls, 2);
        assert_eq!(s.op(KernelOp::NewviewIi).sites, 1500);
        let scaled = s.scale_sites(2.0);
        assert_eq!(scaled.op(KernelOp::NewviewIi).sites, 3000);
        assert_eq!(
            scaled.op(KernelOp::NewviewIi).flops,
            2 * s.op(KernelOp::NewviewIi).flops
        );
        // Untimed ops report zero rates rather than dividing by zero.
        assert_eq!(KernelStats::new().op(KernelOp::NewviewTt).gflops(), 0.0);
        assert_eq!(KernelStats::new().op(KernelOp::NewviewTt).gbps(), 0.0);
    }

    #[test]
    fn timed_records_fill_histograms_and_merge() {
        let mut a = KernelStats::new();
        a.record_timed(KernelId::Newview, 100, 500);
        a.record_timed(KernelId::Newview, 100, 700);
        a.record_region(50, 3000);
        let mut b = KernelStats::new();
        b.record_timed(KernelId::Newview, 10, 900);
        b.record_region(70, 1000);
        a.merge(&b);
        assert_eq!(a.get(KernelId::Newview).calls, 3);
        assert_eq!(a.timing(KernelId::Newview).count(), 3);
        assert_eq!(a.timing(KernelId::Newview).total_ns(), 2100);
        assert_eq!(a.regions().count, 2);
        assert_eq!(a.regions().fork.total_ns(), 120);
        assert_eq!(a.regions().join.max_ns(), Some(3000));
        a.reset();
        assert_eq!(a, KernelStats::new());
    }
}
