//! Kernel-level instrumentation.
//!
//! The paper's Figure 3 and Table III are driven by how much work each
//! kernel performs. [`KernelStats`] counts invocations and
//! pattern-sites processed per kernel during a real run; the `micsim`
//! crate turns those counts into platform time predictions using
//! per-site operation models.

/// The four PLF kernels of §IV.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelId {
    /// Conditional likelihood array update.
    Newview,
    /// Log-likelihood at the virtual root.
    Evaluate,
    /// Derivative precomputation (element-wise products).
    DerivativeSum,
    /// First/second derivative accumulation per Newton step.
    DerivativeCore,
}

impl KernelId {
    /// All kernels, in paper order.
    pub const ALL: [KernelId; 4] = [
        KernelId::Newview,
        KernelId::Evaluate,
        KernelId::DerivativeSum,
        KernelId::DerivativeCore,
    ];

    /// The paper's name for the kernel.
    pub fn paper_name(self) -> &'static str {
        match self {
            KernelId::Newview => "newview",
            KernelId::Evaluate => "evaluate",
            KernelId::DerivativeSum => "derivativeSum",
            KernelId::DerivativeCore => "derivativeCore",
        }
    }

    fn index(self) -> usize {
        match self {
            KernelId::Newview => 0,
            KernelId::Evaluate => 1,
            KernelId::DerivativeSum => 2,
            KernelId::DerivativeCore => 3,
        }
    }
}

/// Counter for one kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCount {
    /// Number of kernel invocations.
    pub calls: u64,
    /// Total pattern-sites processed across all invocations.
    pub sites: u64,
}

/// Per-kernel work counters for one engine (single-threaded; workers
/// merge their stats after a parallel region).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    counts: [KernelCount; 4],
}

impl KernelStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one invocation over `sites` pattern-sites.
    #[inline]
    pub fn record(&mut self, kernel: KernelId, sites: usize) {
        let c = &mut self.counts[kernel.index()];
        c.calls += 1;
        c.sites += sites as u64;
    }

    /// Counter for one kernel.
    pub fn get(&self, kernel: KernelId) -> KernelCount {
        self.counts[kernel.index()]
    }

    /// Adds another stats block into this one.
    pub fn merge(&mut self, other: &KernelStats) {
        for i in 0..4 {
            self.counts[i].calls += other.counts[i].calls;
            self.counts[i].sites += other.counts[i].sites;
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        self.counts = [KernelCount::default(); 4];
    }

    /// Total invocations across all kernels (the offload-latency
    /// multiplier in the paper's §V-C analysis).
    pub fn total_calls(&self) -> u64 {
        self.counts.iter().map(|c| c.calls).sum()
    }

    /// Total pattern-sites across all kernels.
    pub fn total_sites(&self) -> u64 {
        self.counts.iter().map(|c| c.sites).sum()
    }

    /// Returns a copy with every `sites` count scaled by `factor`,
    /// keeping `calls` unchanged. This is how a trace measured on a
    /// small alignment is extrapolated to a larger one (same search,
    /// proportionally more sites per invocation).
    pub fn scale_sites(&self, factor: f64) -> KernelStats {
        assert!(factor.is_finite() && factor > 0.0);
        let mut out = self.clone();
        for c in out.counts.iter_mut() {
            c.sites = (c.sites as f64 * factor).round() as u64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_get() {
        let mut s = KernelStats::new();
        s.record(KernelId::Newview, 100);
        s.record(KernelId::Newview, 50);
        s.record(KernelId::Evaluate, 10);
        assert_eq!(s.get(KernelId::Newview).calls, 2);
        assert_eq!(s.get(KernelId::Newview).sites, 150);
        assert_eq!(s.get(KernelId::Evaluate).sites, 10);
        assert_eq!(s.get(KernelId::DerivativeSum).calls, 0);
        assert_eq!(s.total_calls(), 3);
        assert_eq!(s.total_sites(), 160);
    }

    #[test]
    fn merge_adds() {
        let mut a = KernelStats::new();
        a.record(KernelId::DerivativeCore, 7);
        let mut b = KernelStats::new();
        b.record(KernelId::DerivativeCore, 3);
        b.record(KernelId::Newview, 1);
        a.merge(&b);
        assert_eq!(a.get(KernelId::DerivativeCore).sites, 10);
        assert_eq!(a.get(KernelId::DerivativeCore).calls, 2);
        assert_eq!(a.get(KernelId::Newview).calls, 1);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = KernelStats::new();
        s.record(KernelId::Evaluate, 5);
        s.reset();
        assert_eq!(s, KernelStats::new());
    }

    #[test]
    fn scale_sites_preserves_calls() {
        let mut s = KernelStats::new();
        s.record(KernelId::Newview, 100);
        s.record(KernelId::Newview, 100);
        let scaled = s.scale_sites(10.0);
        assert_eq!(scaled.get(KernelId::Newview).calls, 2);
        assert_eq!(scaled.get(KernelId::Newview).sites, 2000);
    }

    #[test]
    fn paper_names() {
        assert_eq!(KernelId::DerivativeSum.paper_name(), "derivativeSum");
        assert_eq!(KernelId::ALL.len(), 4);
    }
}
