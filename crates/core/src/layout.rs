//! Fused data layouts for the vector kernels (§V-B3 of the paper).
//!
//! Under Γ with four rates, each site carries 16 conditional values
//! indexed by `m = 4·k + a` (rate category `k`, state `a`). The paper's
//! key loop transformation executes the four per-category 1×4 · 4×4
//! vector-matrix products *simultaneously*, giving an innermost loop of
//! 16 contiguous iterations — enough to fill a 512-bit vector unit
//! twice. That requires the transition matrices to be laid out "fused":
//! for each input state `b`, a 16-vector over `m` of `P_k[a][b]`.
//!
//! Tips never store CLAs; their contribution is a table lookup by the
//! 4-bit ambiguity code. [`Lut16x16`] holds one 16-wide row per code.
//!
//! # Buffer padding invariant (§V-B2)
//!
//! Every pattern-major buffer the kernels touch — CLA value buffers,
//! `derivativeSum` tables — holds exactly `n · SITE_STRIDE` doubles:
//! whole 128-byte site blocks with a 64-byte-aligned base.
//! [`crate::AlignedVec`] guarantees both for engine-owned buffers, and
//! [`crate::aligned::debug_assert_site_buffer`] re-checks the contract
//! at every explicit-SIMD kernel entry. The SIMD backend depends on it
//! twice over: each site is processed as four full 4×f64 vectors with
//! no scalar remainder tail (so a short final block would read past
//! the allocation), and the 128-byte site stride keeps every site
//! offset 32-byte aligned, which `_mm256_stream_pd` requires. The
//! lookup tables below carry `#[repr(align(64))]` for the same reason:
//! their 16-wide rows are loaded four lanes at a time.

use crate::{NUM_RATES, NUM_STATES, SITE_STRIDE};
use phylo_models::{Eigensystem, ProbMatrix};

/// The index range of pattern `i`'s 16 doubles in a pattern-major
/// buffer — the one place the `i · SITE_STRIDE` arithmetic for
/// site-indexed and class-indexed CLA views lives.
#[inline]
pub fn site_range(i: usize) -> std::ops::Range<usize> {
    i * SITE_STRIDE..(i + 1) * SITE_STRIDE
}

/// A transition-probability matrix in fused `(rate, state)` layout:
/// `cols[b][4k + a] = P_k[a][b]`.
#[derive(Clone, Debug, PartialEq)]
#[repr(align(64))]
pub struct FusedPmat {
    /// One 16-wide column per input state `b`.
    pub cols: [[f64; SITE_STRIDE]; NUM_STATES],
}

impl FusedPmat {
    /// Reorganizes a per-category matrix set into fused layout.
    pub fn from_prob(p: &ProbMatrix) -> Self {
        let mut cols = [[0.0; SITE_STRIDE]; NUM_STATES];
        for b in 0..NUM_STATES {
            for k in 0..NUM_RATES {
                for a in 0..NUM_STATES {
                    cols[b][4 * k + a] = p.per_rate[k][a][b];
                }
            }
        }
        FusedPmat { cols }
    }
}

/// A 16-row × 16-wide lookup table indexed by a tip's 4-bit ambiguity
/// code. Row 0 corresponds to the invalid code and stays zeroed.
#[derive(Clone, Debug, PartialEq)]
#[repr(align(64))]
pub struct Lut16x16 {
    /// `rows[code][m]`.
    pub rows: [[f64; SITE_STRIDE]; 16],
}

impl Lut16x16 {
    /// Tip-side `newview` table: `rows[code][m] = Σ_{b ∈ code}
    /// P_k[a][b]` — the conditional likelihood of an ambiguous tip
    /// character across the branch.
    pub fn tip_prob(p: &FusedPmat) -> Self {
        let mut rows = [[0.0; SITE_STRIDE]; 16];
        for code in 1u8..16 {
            for b in 0..NUM_STATES {
                if code & (1 << b) != 0 {
                    for m in 0..SITE_STRIDE {
                        rows[code as usize][m] += p.cols[b][m];
                    }
                }
            }
        }
        Lut16x16 { rows }
    }

    /// Tip-side `evaluate` table: `rows[code][m] = w_k · π_a ·
    /// ind(a ∈ code)` with the uniform category weight `w_k = 1/4`
    /// folded in.
    pub fn tip_pi(freqs: &[f64; NUM_STATES]) -> Self {
        let w = 1.0 / NUM_RATES as f64;
        let mut rows = [[0.0; SITE_STRIDE]; 16];
        for code in 1u8..16 {
            for a in 0..NUM_STATES {
                if code & (1 << a) != 0 {
                    for k in 0..NUM_RATES {
                        rows[code as usize][4 * k + a] = w * freqs[a];
                    }
                }
            }
        }
        Lut16x16 { rows }
    }

    /// Tip-side derivative table: `rows[code][4k + j] = Σ_{a ∈ code}
    /// π_a U[a][j]` — the eigen-basis projection of an ambiguous tip,
    /// replicated across rate categories.
    pub fn tip_eigen(eigen: &Eigensystem) -> Self {
        let pi = eigen.freqs();
        let u = eigen.u();
        let mut rows = [[0.0; SITE_STRIDE]; 16];
        for code in 1u8..16 {
            for j in 0..NUM_STATES {
                let mut sum = 0.0;
                for a in 0..NUM_STATES {
                    if code & (1 << a) != 0 {
                        sum += pi[a] * u[a][j];
                    }
                }
                for k in 0..NUM_RATES {
                    rows[code as usize][4 * k + j] = sum;
                }
            }
        }
        Lut16x16 { rows }
    }
}

/// Everything `derivativeSum` and `derivativeCore` need from the model:
/// eigen-basis projection tables in fused layout plus the `λ_j · r_k`
/// factors of the exponentials.
#[derive(Clone, Debug)]
#[repr(align(64))]
pub struct EigenBasis {
    /// `piu[a][4k + j] = π_a · U[a][j]` (left/root-side projection).
    pub piu: [[f64; SITE_STRIDE]; NUM_STATES],
    /// `uinv[b][4k + j] = U⁻¹[j][b]` (right-side projection).
    pub uinv: [[f64; SITE_STRIDE]; NUM_STATES],
    /// Tip projection table (tip on the left of the branch).
    pub tip_left: Lut16x16,
    /// `λ_j · r_k` at `m = 4k + j`; `exp(lambda_rate[m] · t)` is the
    /// per-branch exponential of `derivativeCore`.
    pub lambda_rate: [f64; SITE_STRIDE],
}

impl EigenBasis {
    /// Builds the fused eigen-basis tables for a model and Γ rates.
    pub fn new(eigen: &Eigensystem, rates: &[f64; NUM_RATES]) -> Self {
        let pi = eigen.freqs();
        let u = eigen.u();
        let ui = eigen.u_inv();
        let vals = eigen.values();
        let mut piu = [[0.0; SITE_STRIDE]; NUM_STATES];
        let mut uinv = [[0.0; SITE_STRIDE]; NUM_STATES];
        let mut lambda_rate = [0.0; SITE_STRIDE];
        for k in 0..NUM_RATES {
            for j in 0..NUM_STATES {
                let m = 4 * k + j;
                lambda_rate[m] = vals[j] * rates[k];
                for a in 0..NUM_STATES {
                    piu[a][m] = pi[a] * u[a][j];
                    uinv[a][m] = ui[j][a];
                }
            }
        }
        EigenBasis {
            piu,
            uinv,
            tip_left: Lut16x16::tip_eigen(eigen),
            lambda_rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_models::{DiscreteGamma, Gtr, GtrParams};

    fn model() -> Gtr {
        Gtr::new(GtrParams {
            rates: [1.2, 2.9, 0.8, 1.1, 3.5, 1.0],
            freqs: [0.28, 0.22, 0.21, 0.29],
        })
    }

    #[test]
    fn fused_layout_matches_source() {
        let g = model();
        let rates = *DiscreteGamma::new(0.7).rates();
        let pm = ProbMatrix::new(g.eigen(), &rates, 0.23);
        let f = FusedPmat::from_prob(&pm);
        for k in 0..NUM_RATES {
            for a in 0..NUM_STATES {
                for b in 0..NUM_STATES {
                    assert_eq!(f.cols[b][4 * k + a], pm.per_rate[k][a][b]);
                }
            }
        }
    }

    #[test]
    fn tip_prob_unambiguous_is_column() {
        let g = model();
        let rates = *DiscreteGamma::new(0.7).rates();
        let pm = ProbMatrix::new(g.eigen(), &rates, 0.23);
        let f = FusedPmat::from_prob(&pm);
        let lut = Lut16x16::tip_prob(&f);
        // Code 0b0100 = G (state 2).
        for m in 0..SITE_STRIDE {
            assert_eq!(lut.rows[0b0100][m], f.cols[2][m]);
        }
    }

    #[test]
    fn tip_prob_gap_rows_sum_to_one() {
        // A fully undetermined tip contributes Σ_b P[a][b] = 1 per
        // (k, a).
        let g = model();
        let rates = *DiscreteGamma::new(0.7).rates();
        let pm = ProbMatrix::new(g.eigen(), &rates, 0.42);
        let lut = Lut16x16::tip_prob(&FusedPmat::from_prob(&pm));
        for m in 0..SITE_STRIDE {
            assert!((lut.rows[0b1111][m] - 1.0).abs() < 1e-9, "m={m}");
        }
    }

    #[test]
    fn tip_prob_ambiguity_is_union() {
        let g = model();
        let rates = *DiscreteGamma::new(0.7).rates();
        let pm = ProbMatrix::new(g.eigen(), &rates, 0.1);
        let lut = Lut16x16::tip_prob(&FusedPmat::from_prob(&pm));
        for m in 0..SITE_STRIDE {
            let r = lut.rows[0b0101][m]; // A|G
            assert!((r - (lut.rows[0b0001][m] + lut.rows[0b0100][m])).abs() < 1e-12);
        }
    }

    #[test]
    fn tip_pi_weights_fold_quarter() {
        let g = model();
        let lut = Lut16x16::tip_pi(&g.freqs());
        // Unambiguous A: entries w·π_A at positions 4k+0, zero at other
        // states.
        for k in 0..NUM_RATES {
            assert!((lut.rows[0b0001][4 * k] - 0.25 * g.freqs()[0]).abs() < 1e-15);
            assert_eq!(lut.rows[0b0001][4 * k + 1], 0.0);
        }
    }

    #[test]
    fn eigen_basis_inner_product_reproduces_evaluate() {
        // Σ_j (π_a U[a][j]) e^{λ_j r t} (U⁻¹[j][b]) = π_a P_ab(rt):
        // the eigen-basis factorization must agree with the direct
        // P-matrix for every (a, b, k).
        let g = model();
        let gamma = DiscreteGamma::new(0.7);
        let rates = *gamma.rates();
        let t = 0.37;
        let basis = EigenBasis::new(g.eigen(), &rates);
        let pm = ProbMatrix::new(g.eigen(), &rates, t);
        for k in 0..NUM_RATES {
            for a in 0..NUM_STATES {
                for b in 0..NUM_STATES {
                    let mut sum = 0.0;
                    for j in 0..NUM_STATES {
                        let m = 4 * k + j;
                        sum +=
                            basis.piu[a][m] * (basis.lambda_rate[m] * t).exp() * basis.uinv[b][m];
                    }
                    let direct = g.freqs()[a] * pm.per_rate[k][a][b];
                    assert!((sum - direct).abs() < 1e-10, "k={k} a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn kernel_tables_are_cache_line_aligned() {
        assert_eq!(std::mem::align_of::<FusedPmat>(), 64);
        assert_eq!(std::mem::align_of::<Lut16x16>(), 64);
        assert_eq!(std::mem::align_of::<EigenBasis>(), 64);
    }

    #[test]
    fn invalid_code_rows_zero() {
        let g = model();
        let rates = *DiscreteGamma::new(1.0).rates();
        let pm = ProbMatrix::new(g.eigen(), &rates, 0.2);
        let lut = Lut16x16::tip_prob(&FusedPmat::from_prob(&pm));
        assert!(lut.rows[0].iter().all(|&v| v == 0.0));
    }
}
