//! The likelihood engine: kernels wired to a tree.
//!
//! [`LikelihoodEngine`] owns one CLA per inner node and re-computes
//! CLAs lazily, RAxML-traversal-descriptor style: before evaluating at
//! a virtual root, it walks the directed post-order and re-runs
//! `newview` only for nodes whose cached orientation, child identity,
//! child branch lengths, child CLA stamps, or model version changed.
//! This is what makes thousands of `evaluate`/`newview` calls per
//! second affordable during tree search (§V-C).
//!
//! An engine may cover a sub-range of the alignment's patterns; worker
//! threads in `phylo-parallel` each own an engine over their slice and
//! reduce the returned partial log-likelihoods/derivatives.

use crate::cla::Cla;
use crate::cost::KernelOp;
use crate::instrument::KernelStats;
use crate::kernels::{KernelKind, Kernels};
use crate::layout::{EigenBasis, FusedPmat, Lut16x16};
use crate::repeats::{
    ClassSource, RepeatKey, RepeatScratch, RepeatStats, RepeatTable, SiteRepeats,
};
use crate::{AlignedVec, NUM_RATES, SITE_STRIDE};
use phylo_bio::CompressedAlignment;
use phylo_models::{DiscreteGamma, Eigensystem, Gtr, GtrParams, ProbMatrix};
use phylo_tree::traverse::{children, full_schedule};
use phylo_tree::{EdgeId, NodeId, Tree};

/// Engine construction options.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Which kernel implementation to run. Resolved through
    /// [`KernelKind::effective`] at construction: the
    /// `PHYLOMIC_KERNELS` environment variable (when set) overrides
    /// this field, and `Auto`/unavailable-`Simd` resolve to a concrete
    /// backend for the host.
    pub kernel: KernelKind,
    /// Γ shape parameter α.
    pub alpha: f64,
    /// Site-repeat compression mode. Resolved through
    /// [`SiteRepeats::effective`] at construction: the
    /// `PHYLOMIC_SITE_REPEATS` environment variable (when set)
    /// overrides this field. `Off` is the uncompressed reference path;
    /// results are bit-identical either way (see [`crate::repeats`]).
    pub site_repeats: SiteRepeats,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            kernel: KernelKind::Auto,
            alpha: 1.0,
            site_repeats: SiteRepeats::Auto,
        }
    }
}

/// Cache record describing the state a CLA was computed in.
#[derive(Clone, Debug, PartialEq)]
struct CacheKey {
    toward_edge: EdgeId,
    child_edges: [EdgeId; 2],
    child_nodes: [NodeId; 2],
    child_lengths: [f64; 2],
    child_stamps: [u64; 2],
    model_version: u64,
}

/// A PLF evaluator bound to one alignment slice and one model.
pub struct LikelihoodEngine {
    kind: KernelKind,
    kernel: &'static dyn Kernels,
    params: GtrParams,
    eigen: Eigensystem,
    gamma: DiscreteGamma,
    basis: EigenBasis,
    pi_w: [f64; SITE_STRIDE],
    tip_pi: Lut16x16,
    /// Tip codes by *alignment row*, restricted to this engine's
    /// pattern range.
    tips: Vec<Vec<u8>>,
    /// Alignment row names, in row order (for re-binding).
    row_names: Vec<String>,
    /// Tree-tip-id → alignment row, rebuilt whenever a tree with a
    /// different tip naming is supplied (e.g. after a checkpoint
    /// restore re-parsed the topology).
    tip_row: Vec<usize>,
    /// The tip naming the current `tip_row` was built for.
    bound_names: Vec<String>,
    weights: Vec<u32>,
    num_patterns: usize,
    num_taxa: usize,
    clas: Vec<Cla>,
    valid: Vec<Option<CacheKey>>,
    stamps: Vec<u64>,
    next_stamp: u64,
    model_version: u64,
    sumtable: AlignedVec,
    sum_edge: Option<(EdgeId, u64)>,
    stats: KernelStats,
    /// Effective site-repeat compression mode (env override applied).
    repeats_mode: SiteRepeats,
    /// Per-inner-node repeat tables (None until first built).
    repeat_tables: Vec<Option<RepeatTable>>,
    /// The state each table was built in (topology + tip binding only;
    /// branch-length and model changes keep tables valid).
    repeat_valid: Vec<Option<RepeatKey>>,
    /// Monotonic table build stamps, used in children's `RepeatKey`s to
    /// cascade invalidation upward.
    repeat_stamps: Vec<u64>,
    next_repeat_stamp: u64,
    /// Bumped whenever the alignment-row → tree-tip binding changes.
    tip_epoch: u64,
    /// Class-indexed staging buffers, allocated on first compressed
    /// `newview` (None also flags "taken" during a compressed call).
    repeat_scratch: Option<Box<RepeatScratch>>,
    repeat_stats: RepeatStats,
}

impl LikelihoodEngine {
    /// Builds an engine over the full pattern range of `aln`, with tip
    /// rows matched to `tree`'s tip ids by taxon name.
    pub fn new(tree: &Tree, aln: &CompressedAlignment, config: EngineConfig) -> Self {
        Self::with_range(tree, aln, config, 0..aln.num_patterns())
    }

    /// Builds an engine over the pattern sub-range `range` (the unit of
    /// data parallelism: each worker owns one slice).
    pub fn with_range(
        tree: &Tree,
        aln: &CompressedAlignment,
        config: EngineConfig,
        range: std::ops::Range<usize>,
    ) -> Self {
        assert!(range.end <= aln.num_patterns(), "range outside alignment");
        assert_eq!(
            tree.num_taxa(),
            aln.num_taxa(),
            "tree and alignment disagree on taxon count"
        );
        let num_taxa = tree.num_taxa();
        // Tip data is stored per alignment row and bound to tree tip
        // ids by name, so trees with a different internal numbering
        // (checkpoint restores, re-parsed Newick) can be evaluated.
        let tips: Vec<Vec<u8>> = (0..num_taxa)
            .map(|row| {
                aln.row(row)[range.clone()]
                    .iter()
                    .map(|c| c.bits())
                    .collect()
            })
            .collect();
        let row_names: Vec<String> = aln.names().to_vec();
        let tip_row = Self::bind_tips(tree, &row_names);
        let weights: Vec<u32> = aln.weights()[range.clone()].to_vec();
        let num_patterns = weights.len();

        let params = GtrParams {
            rates: [1.0; 6],
            freqs: aln.empirical_frequencies(),
        };
        let kind = config.kernel.effective();
        let mut engine = LikelihoodEngine {
            kind,
            kernel: kind.kernels(),
            params,
            eigen: Gtr::new(params).eigen().clone(),
            gamma: DiscreteGamma::new(config.alpha),
            basis: EigenBasis::new(
                Gtr::new(params).eigen(),
                DiscreteGamma::new(config.alpha).rates(),
            ),
            pi_w: [0.0; SITE_STRIDE],
            tip_pi: Lut16x16::tip_pi(&params.freqs),
            tips,
            row_names,
            tip_row,
            bound_names: tree.tip_names().to_vec(),
            weights,
            num_patterns,
            num_taxa,
            clas: (0..tree.num_inner())
                .map(|_| Cla::new(num_patterns))
                .collect(),
            valid: vec![None; tree.num_inner()],
            stamps: vec![0; tree.num_inner()],
            next_stamp: 1,
            model_version: 1,
            sumtable: AlignedVec::zeroed(num_patterns * SITE_STRIDE),
            sum_edge: None,
            stats: KernelStats::new(),
            repeats_mode: config.site_repeats.effective(),
            repeat_tables: vec![None; tree.num_inner()],
            repeat_valid: vec![None; tree.num_inner()],
            repeat_stamps: vec![0; tree.num_inner()],
            next_repeat_stamp: 1,
            tip_epoch: 1,
            repeat_scratch: None,
            repeat_stats: RepeatStats::default(),
        };
        engine.rebuild_model_tables();
        engine
    }

    fn rebuild_model_tables(&mut self) {
        let gtr = Gtr::new(self.params);
        self.eigen = gtr.eigen().clone();
        self.basis = EigenBasis::new(&self.eigen, self.gamma.rates());
        self.tip_pi = Lut16x16::tip_pi(&self.params.freqs);
        let w = 1.0 / NUM_RATES as f64;
        for k in 0..NUM_RATES {
            for a in 0..crate::NUM_STATES {
                self.pi_w[4 * k + a] = w * self.params.freqs[a];
            }
        }
        self.model_version += 1;
        self.sum_edge = None;
    }

    /// Replaces the substitution model parameters (invalidates CLAs).
    ///
    /// Callers must pass validated parameters — checkpoint restore and
    /// the optimizer proposals run [`GtrParams::validate`] at their
    /// boundaries. The re-check here is debug-only so the fork-join
    /// model-broadcast path stays panic-free in release builds.
    pub fn set_model(&mut self, params: GtrParams) {
        debug_assert!(
            params.validate().is_ok(),
            "invalid GTR parameters: {:?}",
            params.validate().err()
        );
        self.params = params;
        self.rebuild_model_tables();
    }

    /// Replaces the Γ shape parameter α (invalidates CLAs).
    pub fn set_alpha(&mut self, alpha: f64) {
        self.gamma = DiscreteGamma::new(alpha);
        self.rebuild_model_tables();
    }

    /// Current GTR parameters.
    pub fn model(&self) -> &GtrParams {
        &self.params
    }

    /// Current Γ shape.
    pub fn alpha(&self) -> f64 {
        self.gamma.alpha()
    }

    /// Γ category rates in use.
    pub fn gamma_rates(&self) -> &[f64; NUM_RATES] {
        self.gamma.rates()
    }

    /// The model eigensystem in use.
    pub fn eigen(&self) -> &Eigensystem {
        &self.eigen
    }

    /// Number of patterns this engine covers.
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// Pattern multiplicities of this engine's slice.
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// The concrete kernel backend this engine runs (env override and
    /// runtime dispatch already resolved; never `Auto`). This is the
    /// kind recorded in trace metadata.
    pub fn kernel_kind(&self) -> KernelKind {
        self.kind
    }

    /// The effective site-repeat compression mode (env override
    /// applied at construction).
    pub fn site_repeats(&self) -> SiteRepeats {
        self.repeats_mode
    }

    /// Cumulative site-repeat compression effectiveness.
    pub fn repeat_stats(&self) -> RepeatStats {
        self.repeat_stats
    }

    /// Per-pattern scaling counters of inner node `inner` (0-based
    /// inner-node index). Diagnostic/test accessor: the cross-backend
    /// and compression equivalence suites compare these arrays
    /// bit-for-bit.
    #[doc(hidden)]
    pub fn cla_scale(&self, inner: usize) -> &[u32] {
        self.clas[inner].scale()
    }

    /// Number of inner nodes (CLAs) this engine owns.
    pub fn num_inner(&self) -> usize {
        self.clas.len()
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// Clears work counters.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Drops all cached CLAs (mainly for tests and benchmarks; normal
    /// invalidation is automatic via cache keys).
    pub fn invalidate_all(&mut self) {
        self.valid.iter_mut().for_each(|v| *v = None);
        self.sum_edge = None;
    }

    #[inline]
    fn inner_idx(&self, node: NodeId) -> usize {
        debug_assert!(node >= self.num_taxa);
        node - self.num_taxa
    }

    /// Tip codes for tree tip `node` under the current binding.
    #[inline]
    fn tip(&self, node: NodeId) -> &[u8] {
        &self.tips[self.tip_row[node]]
    }

    fn bind_tips(tree: &Tree, row_names: &[String]) -> Vec<usize> {
        (0..tree.num_taxa())
            .map(|tip_id| {
                let name = tree.tip_name(tip_id);
                row_names
                    .iter()
                    .position(|n| n == name)
                    .unwrap_or_else(|| panic!("taxon {name:?} missing from alignment"))
            })
            .collect()
    }

    /// Re-binds tip rows when the supplied tree's tip naming differs
    /// from the one the cache was built for (e.g. a checkpoint-restored
    /// topology), invalidating all CLAs.
    fn ensure_tip_binding(&mut self, tree: &Tree) {
        if tree.tip_names() != self.bound_names.as_slice() {
            self.tip_row = Self::bind_tips(tree, &self.row_names);
            self.bound_names = tree.tip_names().to_vec();
            self.invalidate_all();
            // Node-id meanings changed wholesale: cached keys must not
            // survive even by coincidence.
            self.model_version += 1;
            // Repeat tables were built over the old tip rows.
            self.tip_epoch += 1;
        }
    }

    fn fused_pmat(&self, t: f64) -> FusedPmat {
        FusedPmat::from_prob(&ProbMatrix::new(&self.eigen, self.gamma.rates(), t))
    }

    /// Ensures every CLA needed to evaluate at `root_edge` is valid,
    /// running `newview` for stale nodes only.
    pub fn update_partials(&mut self, tree: &Tree, root_edge: EdgeId) {
        debug_assert_eq!(tree.num_inner(), self.clas.len(), "tree shape changed");
        self.ensure_tip_binding(tree);
        for d in full_schedule(tree, root_edge) {
            let ch = children(tree, d.node, d.toward_edge);
            // Canonical child order: tip first, then by node id.
            let mut ch = ch;
            let tipness = |n: NodeId| usize::from(!tree.is_tip(n));
            if (tipness(ch[0].1), ch[0].1) > (tipness(ch[1].1), ch[1].1) {
                ch.swap(0, 1);
            }
            // Repeat tables are ensured for every scheduled node, even
            // when its CLA is cache-valid: parents build their classes
            // from the children's tables.
            if self.repeats_mode.enabled() {
                self.ensure_repeat_table(tree, d.node, d.toward_edge, ch);
            }
            let key = CacheKey {
                toward_edge: d.toward_edge,
                child_edges: [ch[0].0, ch[1].0],
                child_nodes: [ch[0].1, ch[1].1],
                child_lengths: [tree.length(ch[0].0), tree.length(ch[1].0)],
                child_stamps: [self.stamp_of(tree, ch[0].1), self.stamp_of(tree, ch[1].1)],
                model_version: self.model_version,
            };
            let idx = self.inner_idx(d.node);
            if self.valid[idx].as_ref() == Some(&key) {
                continue;
            }
            self.run_newview(tree, d.node, ch, &key);
        }
    }

    fn stamp_of(&self, tree: &Tree, node: NodeId) -> u64 {
        if tree.is_tip(node) {
            0
        } else {
            self.stamps[self.inner_idx(node)]
        }
    }

    fn repeat_stamp_of(&self, tree: &Tree, node: NodeId) -> u64 {
        if tree.is_tip(node) {
            0
        } else {
            self.repeat_stamps[self.inner_idx(node)]
        }
    }

    /// Builds (or revalidates) `node`'s repeat table bottom-up from its
    /// children's class sources. Children's tables are guaranteed built
    /// because `update_partials` walks the post-order schedule.
    fn ensure_repeat_table(
        &mut self,
        tree: &Tree,
        node: NodeId,
        toward_edge: EdgeId,
        ch: [(EdgeId, NodeId); 2],
    ) {
        let idx = self.inner_idx(node);
        let key = RepeatKey {
            toward_edge,
            child_nodes: [ch[0].1, ch[1].1],
            child_table_stamps: [
                self.repeat_stamp_of(tree, ch[0].1),
                self.repeat_stamp_of(tree, ch[1].1),
            ],
            tip_epoch: self.tip_epoch,
        };
        if self.repeat_valid[idx].as_ref() == Some(&key) {
            return;
        }
        let source = |n: NodeId| -> ClassSource<'_> {
            if tree.is_tip(n) {
                ClassSource::Tip(self.tip(n))
            } else {
                ClassSource::Inner(
                    self.repeat_tables[self.inner_idx(n)]
                        .as_ref()
                        .expect("child repeat table built before parent (post-order)"),
                )
            }
        };
        let table = RepeatTable::build(source(ch[0].1), source(ch[1].1));
        self.repeat_tables[idx] = Some(table);
        self.repeat_valid[idx] = Some(key);
        self.repeat_stamps[idx] = self.next_repeat_stamp;
        self.next_repeat_stamp += 1;
    }

    fn run_newview(
        &mut self,
        tree: &Tree,
        node: NodeId,
        ch: [(EdgeId, NodeId); 2],
        key: &CacheKey,
    ) {
        let _span = crate::span::enter("newview");
        let t0 = std::time::Instant::now();
        let idx = self.inner_idx(node);
        let compress = self.repeats_mode.enabled()
            && self.repeat_tables[idx]
                .as_ref()
                .is_some_and(|t| t.compresses(self.repeats_mode));
        let mut out = std::mem::replace(&mut self.clas[idx], Cla::new(0));
        let (out_v, out_s) = out.buffers_mut();
        self.repeat_stats.newview_calls += 1;
        if compress {
            let (op, classes) = self.run_newview_compressed(tree, ch, idx, out_v, out_s);
            self.clas[idx] = out;
            self.stamps[idx] = self.next_stamp;
            self.next_stamp += 1;
            self.valid[idx] = Some(key.clone());
            let cost = crate::cost::newview_compressed(op, self.num_patterns as u64, classes);
            self.stats
                .record_op_cost(op, self.num_patterns, elapsed_ns(t0), cost);
            return;
        }
        let [(e_l, n_l), (e_r, n_r)] = ch;
        let t_l = tree.length(e_l);
        let t_r = tree.length(e_r);
        let op = match (tree.is_tip(n_l), tree.is_tip(n_r)) {
            (true, true) => {
                let lut_l = Lut16x16::tip_prob(&self.fused_pmat(t_l));
                let lut_r = Lut16x16::tip_prob(&self.fused_pmat(t_r));
                self.kernel
                    .newview_tt(&lut_l, &lut_r, self.tip(n_l), self.tip(n_r), out_v, out_s);
                KernelOp::NewviewTt
            }
            (true, false) => {
                let lut_l = Lut16x16::tip_prob(&self.fused_pmat(t_l));
                let p_r = self.fused_pmat(t_r);
                let cla_r = &self.clas[self.inner_idx(n_r)];
                self.kernel.newview_ti(
                    &lut_l,
                    self.tip(n_l),
                    &p_r,
                    cla_r.values(),
                    cla_r.scale(),
                    out_v,
                    out_s,
                );
                KernelOp::NewviewTi
            }
            (false, false) => {
                let p_l = self.fused_pmat(t_l);
                let p_r = self.fused_pmat(t_r);
                let cla_l = &self.clas[self.inner_idx(n_l)];
                let cla_r = &self.clas[self.inner_idx(n_r)];
                self.kernel.newview_ii(
                    &p_l,
                    cla_l.values(),
                    cla_l.scale(),
                    &p_r,
                    cla_r.values(),
                    cla_r.scale(),
                    out_v,
                    out_s,
                );
                KernelOp::NewviewIi
            }
            (false, true) => unreachable!("children are canonicalized tip-first"),
        };
        self.clas[idx] = out;
        self.stamps[idx] = self.next_stamp;
        self.next_stamp += 1;
        self.valid[idx] = Some(key.clone());
        self.stats
            .record_op_timed(op, self.num_patterns, elapsed_ns(t0));
    }

    /// The compressed `newview` path: gather the children's buffers at
    /// the class representatives, run the kernel over `num_classes`
    /// "sites", expand back to the full per-site CLA. Bit-identical to
    /// the uncompressed path (see [`crate::repeats`]).
    fn run_newview_compressed(
        &mut self,
        tree: &Tree,
        ch: [(EdgeId, NodeId); 2],
        idx: usize,
        out_v: &mut [f64],
        out_s: &mut [u32],
    ) -> (KernelOp, u64) {
        let mut scratch = self
            .repeat_scratch
            .take()
            .unwrap_or_else(|| Box::new(RepeatScratch::new(self.num_patterns)));
        let (op, sites, classes) = {
            let table = self.repeat_tables[idx]
                .as_ref()
                .expect("repeat table built");
            let [(e_l, n_l), (e_r, n_r)] = ch;
            let t_l = tree.length(e_l);
            let t_r = tree.length(e_r);
            let op = match (tree.is_tip(n_l), tree.is_tip(n_r)) {
                (true, true) => {
                    let lut_l = Lut16x16::tip_prob(&self.fused_pmat(t_l));
                    let lut_r = Lut16x16::tip_prob(&self.fused_pmat(t_r));
                    scratch.newview_tt(
                        self.kernel,
                        table,
                        &lut_l,
                        &lut_r,
                        self.tip(n_l),
                        self.tip(n_r),
                        out_v,
                        out_s,
                    );
                    KernelOp::NewviewTt
                }
                (true, false) => {
                    let lut_l = Lut16x16::tip_prob(&self.fused_pmat(t_l));
                    let p_r = self.fused_pmat(t_r);
                    let cla_r = &self.clas[self.inner_idx(n_r)];
                    scratch.newview_ti(
                        self.kernel,
                        table,
                        &lut_l,
                        self.tip(n_l),
                        &p_r,
                        cla_r.values(),
                        cla_r.scale(),
                        out_v,
                        out_s,
                    );
                    KernelOp::NewviewTi
                }
                (false, false) => {
                    let p_l = self.fused_pmat(t_l);
                    let p_r = self.fused_pmat(t_r);
                    let cla_l = &self.clas[self.inner_idx(n_l)];
                    let cla_r = &self.clas[self.inner_idx(n_r)];
                    scratch.newview_ii(
                        self.kernel,
                        table,
                        &p_l,
                        cla_l.values(),
                        cla_l.scale(),
                        &p_r,
                        cla_r.values(),
                        cla_r.scale(),
                        out_v,
                        out_s,
                    );
                    KernelOp::NewviewIi
                }
                (false, true) => unreachable!("children are canonicalized tip-first"),
            };
            (op, table.num_sites() as u64, table.num_classes() as u64)
        };
        self.repeat_scratch = Some(scratch);
        self.repeat_stats.compressed_calls += 1;
        self.repeat_stats.sites += sites;
        self.repeat_stats.classes += classes;
        repeat_sites_counter().add(sites);
        repeat_classes_counter().add(classes);
        (op, classes)
    }

    /// Log-likelihood (partial, over this engine's pattern slice) with
    /// the virtual root on `root_edge`.
    pub fn log_likelihood(&mut self, tree: &Tree, root_edge: EdgeId) -> f64 {
        if self.num_patterns == 0 {
            // An empty pattern slice (a fork-join worker whose range is
            // empty) contributes the additive identity.
            return 0.0;
        }
        self.update_partials(tree, root_edge);
        let _span = crate::span::enter("evaluate");
        patterns_evaluated().add(self.num_patterns as u64);
        let t0 = std::time::Instant::now();
        let (a, b) = tree.endpoints(root_edge);
        let t = tree.length(root_edge);
        let p = self.fused_pmat(t);
        // Canonicalize: tip on the q (left) side.
        let (q, r) = if tree.is_tip(a) { (a, b) } else { (b, a) };
        let (ll, op) = if tree.is_tip(q) {
            let cla_r = &self.clas[self.inner_idx(r)];
            let ll = self.kernel.evaluate_ti(
                &self.tip_pi,
                self.tip(q),
                &p,
                cla_r.values(),
                cla_r.scale(),
                &self.weights,
            );
            (ll, KernelOp::EvaluateTi)
        } else {
            let cla_q = &self.clas[self.inner_idx(q)];
            let cla_r = &self.clas[self.inner_idx(r)];
            let ll = self.kernel.evaluate_ii(
                &self.pi_w,
                cla_q.values(),
                cla_q.scale(),
                &p,
                cla_r.values(),
                cla_r.scale(),
                &self.weights,
            );
            (ll, KernelOp::EvaluateIi)
        };
        self.stats
            .record_op_timed(op, self.num_patterns, elapsed_ns(t0));
        ll
    }

    /// Prepares Newton-Raphson optimization of `edge`: updates the
    /// partials oriented toward it and fills the branch-invariant
    /// `derivativeSum` table.
    pub fn prepare_branch(&mut self, tree: &Tree, edge: EdgeId) {
        if self.num_patterns == 0 {
            // Nothing to precompute, but the edge still counts as
            // prepared so `branch_derivatives` keeps its contract.
            self.sum_edge = Some((edge, self.model_version));
            return;
        }
        self.update_partials(tree, edge);
        let _span = crate::span::enter("derivativeSum");
        let t0 = std::time::Instant::now();
        let (a, b) = tree.endpoints(edge);
        let (q, r) = if tree.is_tip(a) { (a, b) } else { (b, a) };
        // Re-borrow pieces to satisfy the borrow checker: the sumtable
        // is disjoint from the CLAs.
        let sumtable = std::mem::replace(&mut self.sumtable, AlignedVec::zeroed(0));
        let mut sumtable = sumtable;
        let op = if tree.is_tip(q) {
            let cla_r = &self.clas[self.inner_idx(r)];
            self.kernel
                .derivative_sum_ti(&self.basis, self.tip(q), cla_r.values(), &mut sumtable);
            KernelOp::DerivativeSumTi
        } else {
            let cla_q = &self.clas[self.inner_idx(q)];
            let cla_r = &self.clas[self.inner_idx(r)];
            self.kernel.derivative_sum_ii(
                &self.basis,
                cla_q.values(),
                cla_r.values(),
                &mut sumtable,
            );
            KernelOp::DerivativeSumIi
        };
        self.sumtable = sumtable;
        self.sum_edge = Some((edge, self.model_version));
        self.stats
            .record_op_timed(op, self.num_patterns, elapsed_ns(t0));
    }

    /// First and second derivative of the (partial) log-likelihood with
    /// respect to the length of the branch prepared by
    /// [`LikelihoodEngine::prepare_branch`], evaluated at length `t`.
    ///
    /// # Panics
    /// Panics when no branch is prepared or the model changed since.
    pub fn branch_derivatives(&mut self, t: f64) -> (f64, f64) {
        let (_, mv) = self
            .sum_edge
            .expect("prepare_branch must be called before branch_derivatives");
        assert_eq!(mv, self.model_version, "model changed since prepare_branch");
        if self.num_patterns == 0 {
            return (0.0, 0.0);
        }
        let _span = crate::span::enter("derivativeCore");
        let t0 = std::time::Instant::now();
        let out =
            self.kernel
                .derivative_core(&self.sumtable, &self.basis.lambda_rate, t, &self.weights);
        self.stats
            .record_op_timed(KernelOp::DerivativeCore, self.num_patterns, elapsed_ns(t0));
        out
    }
}

/// Nanoseconds elapsed since `t0`, saturated into `u64`.
#[inline]
fn elapsed_ns(t0: std::time::Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Cached handle for the `core.patterns.evaluated` counter (registry
/// lookup once, then a relaxed atomic add per evaluate call).
fn patterns_evaluated() -> &'static crate::metrics::Counter {
    static C: std::sync::OnceLock<crate::metrics::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| crate::metrics::counter("core.patterns.evaluated"))
}

/// Cached handle for `core.repeats.sites`: logical sites covered by
/// compressed `newview` calls.
fn repeat_sites_counter() -> &'static crate::metrics::Counter {
    static C: std::sync::OnceLock<crate::metrics::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| crate::metrics::counter("core.repeats.sites"))
}

/// Cached handle for `core.repeats.classes`: unique repeat classes
/// actually computed by compressed `newview` calls.
fn repeat_classes_counter() -> &'static crate::metrics::Counter {
    static C: std::sync::OnceLock<crate::metrics::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| crate::metrics::counter("core.repeats.classes"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::KernelId;
    use crate::naive;
    use phylo_bio::{Alignment, Sequence};
    use phylo_tree::newick;

    fn aln(rows: &[(&str, &str)]) -> CompressedAlignment {
        let a = Alignment::new(
            rows.iter()
                .map(|(n, s)| Sequence::from_str_named(*n, s).unwrap())
                .collect(),
        )
        .unwrap();
        CompressedAlignment::from_alignment(&a)
    }

    fn five_taxon() -> (Tree, CompressedAlignment) {
        let tree = newick::parse("((a:0.11,b:0.23):0.31,c:0.08,(d:0.19,e:0.27):0.14);").unwrap();
        let aln = aln(&[
            ("a", "ACGTACGTNACGTRYAC"),
            ("b", "ACGTTCGAAACGTRYAC"),
            ("c", "ACGAACGTCACGTAAAC"),
            ("d", "TCGTACGTGACTTRYAC"),
            ("e", "ACGTACTTTACGTRYCC"),
        ]);
        (tree, aln)
    }

    fn engines(tree: &Tree, aln: &CompressedAlignment) -> [LikelihoodEngine; 3] {
        [KernelKind::Scalar, KernelKind::Vector, KernelKind::Simd].map(|kernel| {
            LikelihoodEngine::new(
                tree,
                aln,
                EngineConfig {
                    kernel,
                    alpha: 0.7,
                    ..EngineConfig::default()
                },
            )
        })
    }

    #[test]
    fn matches_brute_force_every_root_edge() {
        let (tree, aln) = five_taxon();
        for mut engine in engines(&tree, &aln) {
            let tips: Vec<Vec<u8>> = (0..tree.num_taxa())
                .map(|t| {
                    let row = aln.taxon_index(tree.tip_name(t)).unwrap();
                    aln.row(row).iter().map(|c| c.bits()).collect()
                })
                .collect();
            let reference = naive::log_likelihood(
                &tree,
                engine.eigen(),
                engine.gamma_rates(),
                &tips,
                aln.weights(),
            );
            for e in tree.edge_ids() {
                let ll = engine.log_likelihood(&tree, e);
                assert!(
                    (ll - reference).abs() < 1e-8,
                    "kernel {:?} edge {e}: {ll} vs {reference}",
                    engine.kernel_kind()
                );
            }
        }
    }

    #[test]
    fn all_backends_agree_bitwise_closely() {
        let (tree, aln) = five_taxon();
        let [mut s, mut v, mut x] = engines(&tree, &aln);
        for e in tree.edge_ids() {
            let ls = s.log_likelihood(&tree, e);
            let lv = v.log_likelihood(&tree, e);
            let lx = x.log_likelihood(&tree, e);
            assert!((ls - lv).abs() < 1e-10, "edge {e}: {ls} vs {lv}");
            assert!((ls - lx).abs() < 1e-10, "edge {e}: {ls} vs simd {lx}");
        }
    }

    #[test]
    fn caching_avoids_recomputation() {
        let (tree, aln) = five_taxon();
        let mut engine = LikelihoodEngine::new(&tree, &aln, EngineConfig::default());
        let e = tree.edge_ids().next().unwrap();
        engine.log_likelihood(&tree, e);
        let calls_first = engine.stats().get(KernelId::Newview).calls;
        assert_eq!(calls_first as usize, tree.num_inner());
        engine.log_likelihood(&tree, e);
        // Second evaluation at the same root: no newview calls at all.
        assert_eq!(engine.stats().get(KernelId::Newview).calls, calls_first);
    }

    #[test]
    fn branch_change_invalidates_dependent_clas_only() {
        // 6 taxa: inner nodes are P_ab, center, P_def, P_ef. Rooting at
        // a's pendant edge and perturbing d's pendant branch must leave
        // P_ef untouched (it is not an ancestor of the change).
        let mut tree =
            newick::parse("((a:0.1,b:0.1):0.1,c:0.1,(d:0.1,(e:0.1,f:0.1):0.1):0.1);").unwrap();
        let aln = aln(&[
            ("a", "ACGTAC"),
            ("b", "ACGTTC"),
            ("c", "ACGAAC"),
            ("d", "TCGTAC"),
            ("e", "ACGTAG"),
            ("f", "AGGTAC"),
        ]);
        let mut engine = LikelihoodEngine::new(&tree, &aln, EngineConfig::default());
        let a = tree.tip_by_name("a").unwrap();
        let root = tree.incident(a)[0];
        engine.log_likelihood(&tree, root);
        let before = engine.stats().get(KernelId::Newview).calls;
        let d_tip = tree.tip_by_name("d").unwrap();
        let pend = tree.incident(d_tip)[0];
        tree.set_length(pend, 0.9).unwrap();
        engine.log_likelihood(&tree, root);
        let recomputed = engine.stats().get(KernelId::Newview).calls - before;
        assert_eq!(recomputed, 3, "P_def, center, P_ab — but not P_ef");
    }

    #[test]
    fn model_change_invalidates_everything() {
        let (tree, aln) = five_taxon();
        let mut engine = LikelihoodEngine::new(&tree, &aln, EngineConfig::default());
        let e = 0;
        let l1 = engine.log_likelihood(&tree, e);
        engine.set_alpha(0.3);
        let before = engine.stats().get(KernelId::Newview).calls;
        let l2 = engine.log_likelihood(&tree, e);
        let after = engine.stats().get(KernelId::Newview).calls;
        assert_eq!((after - before) as usize, tree.num_inner());
        assert!(
            (l1 - l2).abs() > 1e-9,
            "alpha change must move the likelihood"
        );
    }

    #[test]
    fn partial_ranges_sum_to_full() {
        let (tree, aln) = five_taxon();
        let cfg = EngineConfig::default();
        let mut full = LikelihoodEngine::new(&tree, &aln, cfg);
        let n = aln.num_patterns();
        let mid = n / 2;
        let mut lo = LikelihoodEngine::with_range(&tree, &aln, cfg, 0..mid);
        let mut hi = LikelihoodEngine::with_range(&tree, &aln, cfg, mid..n);
        let e = 2;
        let total = full.log_likelihood(&tree, e);
        let sum = lo.log_likelihood(&tree, e) + hi.log_likelihood(&tree, e);
        assert!((total - sum).abs() < 1e-9, "{total} vs {sum}");
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let (tree, aln) = five_taxon();
        for mut engine in engines(&tree, &aln) {
            for edge in tree.edge_ids() {
                engine.prepare_branch(&tree, edge);
                let t0 = tree.length(edge);
                let (d1, d2) = engine.branch_derivatives(t0);
                // Central finite differences on logL(t), evaluated by
                // re-running derivative_core's underlying L (via a
                // cloned tree + evaluate).
                let h = 1e-5;
                let ll = |t: f64, tree: &Tree, eng: &mut LikelihoodEngine| {
                    let mut tt = tree.clone();
                    tt.set_length(edge, t).unwrap();
                    eng.log_likelihood(&tt, edge)
                };
                let lp = ll(t0 + h, &tree, &mut engine);
                let lm = ll(t0 - h, &tree, &mut engine);
                let l0 = ll(t0, &tree, &mut engine);
                let fd1 = (lp - lm) / (2.0 * h);
                let fd2 = (lp - 2.0 * l0 + lm) / (h * h);
                assert!(
                    (d1 - fd1).abs() < 1e-3 * (1.0 + fd1.abs()),
                    "{:?} edge {edge}: d1={d1} fd={fd1}",
                    engine.kernel_kind()
                );
                assert!(
                    (d2 - fd2).abs() < 1e-2 * (1.0 + fd2.abs()),
                    "{:?} edge {edge}: d2={d2} fd={fd2}",
                    engine.kernel_kind()
                );
                // Re-prepare for next edge (log_likelihood moved CLAs).
                engine.prepare_branch(&tree, edge);
            }
        }
    }

    #[test]
    #[should_panic(expected = "prepare_branch")]
    fn derivatives_require_preparation() {
        let (tree, aln) = five_taxon();
        let mut engine = LikelihoodEngine::new(&tree, &aln, EngineConfig::default());
        let _ = tree;
        engine.branch_derivatives(0.1);
    }

    #[test]
    fn scaling_on_deep_tree_keeps_likelihood_finite() {
        // A long caterpillar with long branches forces CLA underflow
        // without scaling.
        let names = phylo_tree::build::default_names(14);
        let tree = phylo_tree::build::caterpillar(&names, 3.0).unwrap();
        let seqs: Vec<(String, String)> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let base = ['A', 'C', 'G', 'T'][i % 4];
                (n.clone(), std::iter::repeat_n(base, 8).collect())
            })
            .collect();
        let a = Alignment::new(
            seqs.iter()
                .map(|(n, s)| Sequence::from_str_named(n.clone(), s).unwrap())
                .collect(),
        )
        .unwrap();
        let ca = CompressedAlignment::from_alignment(&a);
        let mut engine = LikelihoodEngine::new(&tree, &ca, EngineConfig::default());
        let ll = engine.log_likelihood(&tree, 0);
        assert!(ll.is_finite(), "logL = {ll}");
        assert!(ll < 0.0);
    }
}
