//! Streaming-store publication tests for the explicit-SIMD backend
//! (§V-B5).
//!
//! `newview` and `derivativeSum` write their outputs with non-temporal
//! stores, which are weakly ordered: they can linger in
//! write-combining buffers *past* ordinary release/acquire
//! synchronization edges. The backend's contract is that every kernel
//! that streamed executes `sfence` before returning, so a reader on
//! any thread that synchronizes with the writer afterwards — here via
//! scoped-thread join, the same edge the fork-join barrier provides —
//! observes the complete buffer. These tests would only fail
//! intermittently if the fence were dropped, so they iterate.

use phylo_models::{DiscreteGamma, Gtr, GtrParams, ProbMatrix};
use plf_core::layout::FusedPmat;
use plf_core::{AlignedVec, KernelKind, SITE_STRIDE};

fn pmat(t: f64) -> FusedPmat {
    let g = Gtr::new(GtrParams {
        rates: [1.4, 2.2, 0.7, 1.3, 3.1, 1.0],
        freqs: [0.27, 0.24, 0.20, 0.29],
    });
    let rates = *DiscreteGamma::new(0.9).rates();
    FusedPmat::from_prob(&ProbMatrix::new(g.eigen(), &rates, t))
}

/// Deterministic pseudo-random doubles (xorshift64*).
fn fill(buf: &mut [f64], seed: u64) {
    let mut s = seed | 1;
    for v in buf.iter_mut() {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        let u = (s.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64;
        *v = 1e-3 + u * (1.0 - 1e-3);
    }
}

#[test]
fn cla_streamed_on_another_thread_is_visible_after_join() {
    let n = 257; // spans many cache lines, not a block multiple
    let mut vl = AlignedVec::zeroed(n * SITE_STRIDE);
    let mut vr = AlignedVec::zeroed(n * SITE_STRIDE);
    fill(&mut vl, 41);
    fill(&mut vr, 43);
    let scale = vec![0u32; n];
    let (pl, pr) = (pmat(0.31), pmat(0.17));

    // Reference computed on this thread with the portable backend.
    let mut expect = AlignedVec::zeroed(n * SITE_STRIDE);
    let mut expect_sc = vec![0u32; n];
    KernelKind::Vector.kernels().newview_ii(
        &pl,
        &vl,
        &scale,
        &pr,
        &vr,
        &scale,
        &mut expect,
        &mut expect_sc,
    );

    for round in 0..20 {
        let mut out = AlignedVec::zeroed(n * SITE_STRIDE);
        let mut sc = vec![0u32; n];
        std::thread::scope(|s| {
            s.spawn(|| {
                KernelKind::Simd
                    .kernels()
                    .newview_ii(&pl, &vl, &scale, &pr, &vr, &scale, &mut out, &mut sc);
            });
        });
        // The writer thread has been joined: every streamed value must
        // be globally visible now.
        assert_eq!(sc, expect_sc, "round {round}: scaling counters");
        for (i, (a, b)) in expect.iter().zip(out.iter()).enumerate() {
            assert!(
                (a - b).abs() <= 1e-12 * (1.0 + a.abs()),
                "round {round} slot {i}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn evaluate_reads_a_just_streamed_cla_correctly() {
    // Same-thread read-after-NT-write: evaluate consumes the CLA the
    // SIMD newview just streamed. The kernel-exit fence (plus x86
    // same-address ordering) makes this safe without any fence in
    // evaluate itself — exactly the engine's newview→evaluate pattern.
    let n = 97;
    let mut vl = AlignedVec::zeroed(n * SITE_STRIDE);
    let mut vr = AlignedVec::zeroed(n * SITE_STRIDE);
    fill(&mut vl, 7);
    fill(&mut vr, 9);
    let scale = vec![0u32; n];
    let weights = vec![1u32; n];
    let (pl, pr) = (pmat(0.21), pmat(0.44));
    let g = Gtr::new(GtrParams {
        rates: [1.4, 2.2, 0.7, 1.3, 3.1, 1.0],
        freqs: [0.27, 0.24, 0.20, 0.29],
    });
    let mut pi_w = [0.0; SITE_STRIDE];
    for k in 0..4 {
        for a in 0..4 {
            pi_w[4 * k + a] = 0.25 * g.freqs()[a];
        }
    }

    let run = |kind: KernelKind| {
        let k = kind.kernels();
        let mut cla = AlignedVec::zeroed(n * SITE_STRIDE);
        let mut sc = vec![0u32; n];
        k.newview_ii(&pl, &vl, &scale, &pr, &vr, &scale, &mut cla, &mut sc);
        k.evaluate_ii(&pi_w, &cla, &sc, &pr, &vr, &scale, &weights)
    };
    let expect = run(KernelKind::Vector);
    for round in 0..20 {
        let got = run(KernelKind::Simd);
        assert!(
            (expect - got).abs() <= 1e-9 * (1.0 + expect.abs()),
            "round {round}: {expect} vs {got}"
        );
    }
}
