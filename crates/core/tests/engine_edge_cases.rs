//! Edge-case integration tests for the likelihood engine and kernels
//! that go beyond the per-module unit tests.

use phylo_bio::{Alignment, CompressedAlignment, Sequence};
use phylo_models::{DiscreteGamma, Gtr, GtrParams, ProbMatrix};
use phylo_tree::newick;
use plf_core::cla::Cla;
use plf_core::layout::{FusedPmat, Lut16x16};
use plf_core::{EngineConfig, KernelId, KernelKind, LikelihoodEngine, SITE_STRIDE};

fn aln(rows: &[(&str, &str)]) -> CompressedAlignment {
    CompressedAlignment::from_alignment(
        &Alignment::new(
            rows.iter()
                .map(|(n, s)| Sequence::from_str_named(*n, s).unwrap())
                .collect(),
        )
        .unwrap(),
    )
}

#[test]
fn single_pattern_engine_works() {
    let a = aln(&[("a", "A"), ("b", "C"), ("c", "G")]);
    let tree = newick::parse("(a:0.2,b:0.3,c:0.4);").unwrap();
    for kernel in [KernelKind::Scalar, KernelKind::Vector, KernelKind::Simd] {
        let mut e = LikelihoodEngine::new(
            &tree,
            &a,
            EngineConfig {
                kernel,
                alpha: 1.0,
                ..EngineConfig::default()
            },
        );
        let ll = e.log_likelihood(&tree, 0);
        assert!(ll.is_finite() && ll < 0.0, "{kernel:?}: {ll}");
    }
}

#[test]
fn pattern_count_not_multiple_of_block_is_exact() {
    // The vector kernels block sites in groups of 8; sizes 1..=17
    // exercise every remainder. Scalar is the oracle.
    for width in 1..=17usize {
        let seq = |base: &str| -> String { base.chars().cycle().take(width).collect() };
        let a = aln(&[
            ("a", &seq("ACGTR")),
            ("b", &seq("CAGTN")),
            ("c", &seq("GTACY")),
            ("d", &seq("TGCAA")),
        ]);
        let tree = newick::parse("((a:0.1,b:0.2):0.15,c:0.3,d:0.25);").unwrap();
        let mut s = LikelihoodEngine::new(
            &tree,
            &a,
            EngineConfig {
                kernel: KernelKind::Scalar,
                alpha: 0.8,
                ..EngineConfig::default()
            },
        );
        let mut v = LikelihoodEngine::new(
            &tree,
            &a,
            EngineConfig {
                kernel: KernelKind::Vector,
                alpha: 0.8,
                ..EngineConfig::default()
            },
        );
        let ls = s.log_likelihood(&tree, 0);
        let lv = v.log_likelihood(&tree, 0);
        assert!((ls - lv).abs() < 1e-10, "width {width}: {ls} vs {lv}");
    }
}

#[test]
fn scale_counters_propagate_through_newview_chain() {
    // Chain newview_ii manually with pre-scaled children and confirm
    // additive counters.
    let g = Gtr::new(GtrParams::jc69());
    let rates = *DiscreteGamma::new(1.0).rates();
    let p = FusedPmat::from_prob(&ProbMatrix::new(g.eigen(), &rates, 0.1));
    let n = 5;
    let mut left = Cla::new(n);
    let mut right = Cla::new(n);
    left.values_mut().fill(0.3);
    right.values_mut().fill(0.4);
    left.scale_mut().copy_from_slice(&[1, 2, 0, 3, 1]);
    right.scale_mut().copy_from_slice(&[2, 0, 0, 1, 4]);
    for kind in [KernelKind::Scalar, KernelKind::Vector, KernelKind::Simd] {
        let mut out = Cla::new(n);
        let (v, s) = out.buffers_mut();
        kind.kernels().newview_ii(
            &p,
            left.values(),
            left.scale(),
            &p,
            right.values(),
            right.scale(),
            v,
            s,
        );
        // Values ~0.1 magnitude: no new scaling events, counters add.
        assert_eq!(out.scale(), &[3, 2, 0, 4, 5], "{kind:?}");
    }
}

#[test]
fn underflow_event_increments_counter_and_rescales() {
    let g = Gtr::new(GtrParams::jc69());
    let rates = *DiscreteGamma::new(1.0).rates();
    let p = FusedPmat::from_prob(&ProbMatrix::new(g.eigen(), &rates, 0.05));
    let n = 1;
    let mut left = Cla::new(n);
    let mut right = Cla::new(n);
    // Product ≈ 1e-90 < 2^-256 ≈ 8.6e-78: exactly one rescaling event.
    left.values_mut().fill(1e-50);
    right.values_mut().fill(1e-40);
    for kind in [KernelKind::Scalar, KernelKind::Vector, KernelKind::Simd] {
        let mut out = Cla::new(n);
        let (v, s) = out.buffers_mut();
        kind.kernels().newview_ii(
            &p,
            left.values(),
            left.scale(),
            &p,
            right.values(),
            right.scale(),
            v,
            s,
        );
        assert_eq!(out.scale()[0], 1, "{kind:?}: one rescaling event");
        // Rescaled values are in a healthy range again.
        let max = out.values().iter().cloned().fold(0.0f64, f64::max);
        assert!(max > 1e-80, "{kind:?}: max after rescale {max}");
    }
}

#[test]
fn gap_only_taxon_does_not_change_other_information() {
    // Adding an all-gap taxon to an alignment multiplies every site
    // likelihood by exactly 1 at the tip; the log-likelihood changes
    // only through the extra branch integration, which for an all-gap
    // tip is also exactly 1 — so logL is invariant.
    let base = aln(&[("a", "ACGTAC"), ("b", "ACGATC"), ("c", "TCGTAA")]);
    let tree3 = newick::parse("(a:0.2,b:0.3,c:0.4);").unwrap();
    let mut e3 = LikelihoodEngine::new(&tree3, &base, EngineConfig::default());
    let ll3 = e3.log_likelihood(&tree3, 0);

    let with_gap = aln(&[
        ("a", "ACGTAC"),
        ("b", "ACGATC"),
        ("c", "TCGTAA"),
        ("g", "------"),
    ]);
    let tree4 = newick::parse("((a:0.2,g:0.5):0.0000001,b:0.3,c:0.4);").unwrap();
    let mut e4 = LikelihoodEngine::new(&tree4, &with_gap, EngineConfig::default());
    // Frequencies differ (pseudocounts over different totals): align
    // them so only the topology differs.
    e4.set_model(*e3.model());
    let ll4 = e4.log_likelihood(&tree4, 0);
    assert!((ll3 - ll4).abs() < 1e-6, "{ll3} vs {ll4}");
}

#[test]
fn with_range_rejects_out_of_bounds() {
    let a = aln(&[("a", "ACGT"), ("b", "ACGA"), ("c", "TCGT")]);
    let tree = newick::parse("(a:0.1,b:0.1,c:0.1);").unwrap();
    let r = std::panic::catch_unwind(|| {
        LikelihoodEngine::with_range(&tree, &a, EngineConfig::default(), 0..99)
    });
    assert!(r.is_err());
}

#[test]
fn evaluate_records_stats_per_call() {
    let a = aln(&[("a", "ACGT"), ("b", "ACGA"), ("c", "TCGT")]);
    let tree = newick::parse("(a:0.1,b:0.1,c:0.1);").unwrap();
    let mut e = LikelihoodEngine::new(&tree, &a, EngineConfig::default());
    for _ in 0..5 {
        e.log_likelihood(&tree, 0);
    }
    let s = e.stats().get(KernelId::Evaluate);
    assert_eq!(s.calls, 5);
    assert_eq!(s.sites, 5 * a.num_patterns() as u64);
    e.reset_stats();
    assert_eq!(e.stats().get(KernelId::Evaluate).calls, 0);
}

#[test]
fn tip_luts_isolate_ambiguity_semantics() {
    // evaluate_ti with an ambiguous tip R = {A,G} must equal the sum
    // of the pattern likelihoods with A and with G (marginalization),
    // computed through full engines.
    let tree = newick::parse("(q:0.2,b:0.3,c:0.4);").unwrap();
    let ll_of = |qchar: &str| -> f64 {
        let a = aln(&[("q", qchar), ("b", "C"), ("c", "G")]);
        let mut e = LikelihoodEngine::new(&tree, &a, EngineConfig::default());
        let mut m = *e.model();
        m.freqs = [0.25; 4];
        e.set_model(m);
        e.log_likelihood(&tree, 0)
    };
    let l_r = ll_of("R").exp();
    let l_a = ll_of("A").exp();
    let l_g = ll_of("G").exp();
    assert!(
        (l_r - (l_a + l_g)).abs() < 1e-12,
        "P(R) = P(A) + P(G): {l_r} vs {}",
        l_a + l_g
    );
}

#[test]
fn luts_row_zero_never_read() {
    // DnaCode guarantees codes 1..=15; defensive check that kernels
    // tolerate the full valid code range.
    let g = Gtr::new(GtrParams::jc69());
    let rates = *DiscreteGamma::new(1.0).rates();
    let p = FusedPmat::from_prob(&ProbMatrix::new(g.eigen(), &rates, 0.2));
    let lut = Lut16x16::tip_prob(&p);
    let codes: Vec<u8> = (1..16).collect();
    let n = codes.len();
    for kind in [KernelKind::Scalar, KernelKind::Vector, KernelKind::Simd] {
        let mut out = Cla::new(n);
        let (v, s) = out.buffers_mut();
        kind.kernels().newview_tt(&lut, &lut, &codes, &codes, v, s);
        assert!(out.values()[..n * SITE_STRIDE]
            .iter()
            .all(|x| x.is_finite()));
    }
}
