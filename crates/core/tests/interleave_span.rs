//! Model-checking the span-ring seqlock (`plf_core::span::SpanRing`).
//!
//! Run with:
//!
//! ```text
//! cargo test -p plf-core --features interleave --test interleave_span
//! ```
//!
//! The ring's slot protocol is a per-slot seqlock: odd `seq` while the
//! writer is mid-update, even-and-index-encoding when stable, words
//! stored with `Release` and loaded with `Acquire`. The first test
//! explores every bounded interleaving of a reader racing a writer lap
//! and proves no torn slot is ever accepted. The second keeps the
//! *weak* variant (relaxed word stores/loads — what `push` used before
//! this was model-checked) as a fixture and proves the checker catches
//! its torn read, documenting why the `Release`/`Acquire` pair in
//! `span.rs` is load-bearing.
#![cfg(feature = "interleave")]

use interleave::sync::atomic::Ordering;
use interleave::{fixtures, Checker};
use plf_core::span::{SpanEvent, SpanPhase, SpanRing};
use std::sync::Arc;

fn ev(name: &'static str, phase: SpanPhase, t_ns: u64) -> SpanEvent {
    SpanEvent { name, phase, t_ns }
}

/// Reader races a writer lap on a capacity-2 ring. Slot 0 holds event
/// 0 (`"a"`, len 1, t=0, Begin) until the writer overwrites it with
/// event 2 (`"ccc"`, len 3, t=20, End). Whatever the schedule, a
/// successful probe must return one event's words as a unit — any
/// cross-event mix is a torn read that `snapshot` would have turned
/// into an invalid `&str`.
#[test]
fn span_seqlock_rejects_torn_slots_exhaustively() {
    let report = Checker::new().check(|| {
        let ring = Arc::new(SpanRing::with_capacity(2));
        // Filled before any concurrency: no interleaving to explore.
        ring.push(ev("a", SpanPhase::Begin, 0));
        ring.push(ev("bb", SpanPhase::Begin, 10));
        let writer = {
            let ring = Arc::clone(&ring);
            interleave::thread::spawn(move || {
                // Laps slot 0, overwriting event 0.
                ring.push(ev("ccc", SpanPhase::End, 20));
            })
        };
        if let Some(w) = ring.probe_slot(0) {
            // Validated as event 0: every word must be event 0's.
            assert_eq!(w[1], 1, "torn name length in slot 0");
            assert_eq!(w[2], 0, "torn timestamp in slot 0");
            assert_eq!(w[3], 0, "torn phase in slot 0");
        }
        if let Some(w) = ring.probe_slot(2) {
            // Validated as event 2: every word must be event 2's.
            assert_eq!(w[1], 3, "torn name length in slot 0 (lap)");
            assert_eq!(w[2], 20, "torn timestamp in slot 0 (lap)");
            assert_eq!(w[3], 1, "torn phase in slot 0 (lap)");
        }
        writer.join().unwrap();
        assert_eq!(ring.recorded(), 3);
    });
    assert!(
        !report.truncated,
        "span seqlock model must be fully explored"
    );
    assert!(report.iterations > 1, "exploration should branch");
}

/// The pre-fix protocol (relaxed word stores and loads) admits a
/// schedule where a lapped reader pairs a fresh word with a stale even
/// seq validation. The checker must find it.
#[test]
fn relaxed_word_seqlock_variant_is_caught() {
    let v = Checker::new()
        .find_violation(|| fixtures::seqlock(Ordering::Relaxed, Ordering::Relaxed))
        .expect("relaxed seqlock words must admit a torn read");
    assert!(
        v.message.contains("torn seqlock read"),
        "unexpected violation: {v}"
    );
}

/// With the production orderings the same fixture explores clean —
/// the pairing `span.rs` relies on.
#[test]
fn release_acquire_seqlock_fixture_passes() {
    let report = Checker::new().check(|| fixtures::seqlock(Ordering::Release, Ordering::Acquire));
    assert!(!report.truncated);
}
