//! `phylomic` — command-line interface to the library.
//!
//! Subcommands:
//!
//! ```text
//! phylomic simulate --taxa 15 --sites 10000 --out data.phy [--alpha 0.85] [--seed 42]
//! phylomic evaluate --alignment data.phy --tree tree.nwk [--alpha 0.85] [--kernel vector]
//! phylomic search   --alignment data.phy [--tree start.nwk] [--scheme serial|forkjoin|replicated]
//!                   [--threads 4] [--rounds 20] [--checkpoint run.ckp] [--out best.nwk]
//! ```
//!
//! Alignments are PHYLIP (`.phy`) or FASTA (anything else); trees are
//! Newick. Argument parsing is deliberately dependency-free.

use phylomic::bio::{fasta, phylip, Alignment, CompressedAlignment};
use phylomic::models::{DiscreteGamma, Gtr, GtrParams};
use phylomic::parallel::{run_replicated_ft, FaultPlan, ForkJoinEvaluator, FtConfig};
use phylomic::plf::trace::{
    events_from_metrics, events_from_spans, events_from_stats, write_jsonl, TraceEvent,
    TRACE_VERSION,
};
use phylomic::plf::{metrics, span, EngineConfig, KernelKind, LikelihoodEngine, SiteRepeats};
use phylomic::search::{MlSearch, SearchConfig};
use phylomic::tree::build::{default_names, random_tree};
use phylomic::tree::{newick, Tree};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "simulate" => cmd_simulate(&opts),
        "evaluate" => cmd_evaluate(&opts),
        "search" => cmd_search(&opts),
        "bootstrap" => cmd_bootstrap(&opts),
        "trace-report" => cmd_trace_report(&opts),
        "calibrate" => cmd_calibrate(&opts),
        "bench-trend" => cmd_bench_trend(&opts),
        // Hidden: the socket transport's child-rank entry. The
        // supervisor (`search --transport uds`) spawns these; not part
        // of the user-facing surface.
        #[cfg(unix)]
        "_rank" => cmd_rank(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "phylomic — phylogenetic likelihood toolkit (PLF-on-MIC reproduction)

USAGE:
  phylomic simulate --taxa N --sites M --out FILE [--alpha A] [--seed S]
  phylomic evaluate --alignment FILE --tree FILE [--alpha A]
                    [--kernels scalar|vector|simd|auto]
                    [--site-repeats on|off|auto]
                    [--trace-out FILE] [--chrome-out FILE]
  phylomic search   --alignment FILE [--tree FILE | --start random|parsimony]
                    [--scheme serial|forkjoin|replicated] [--threads N] [--rounds R]
                    [--alpha A] [--kernels K] [--site-repeats M]
                    [--checkpoint FILE] [--out FILE]
                    [--seed S] [--no-model-opt] [--trace-out FILE] [--chrome-out FILE]
                    [--inject-fault SPEC] [--degrade] [--transport threads|uds]
  phylomic bootstrap --alignment FILE [--replicates N] [--rounds R] [--seed S]
                    [--out FILE]
  phylomic trace-report --trace FILE [--format text|json]
  phylomic calibrate [--out FILE] [--force]
  phylomic bench-trend [--dir DIR] [--gate]

Alignments: PHYLIP when the path ends in .phy, FASTA otherwise.
--kernels picks the PLF kernel backend (default auto: explicit AVX2+FMA
SIMD when the CPU supports it, portable vector code otherwise; --kernel
is accepted as a synonym). The PHYLOMIC_KERNELS environment variable
overrides the flag. The resolved backend is recorded in the JSONL trace
meta event.
--site-repeats controls site-repeat compression in newview: 'on' always
compresses, 'off' never, 'auto' (default) compresses per node when the
unique-class count makes it profitable. Likelihoods are bit-identical
either way. The PHYLOMIC_SITE_REPEATS environment variable overrides
the flag; the resolved mode is recorded in the trace meta event.
--trace-out dumps kernel timings, fork-join region latencies, spans and
metrics as JSONL, in the format micsim's measured-cost calibration
(`MeasuredHostCosts::from_jsonl`) and `trace-report` consume.
--chrome-out (evaluate/search) writes the span timeline as Chrome
trace-event JSON, loadable in Perfetto / chrome://tracing, one track
per worker thread.
trace-report prints per-kernel time shares, fork/join overhead, worker
load imbalance, the calibration cost table, and — for v5 traces — the
modeled per-op roofline placement (GFLOP/s, GB/s, arithmetic intensity,
% of the calibrated roof). --format json emits the same report as one
JSON object for tooling.
calibrate measures single-core peak bandwidth (STREAM triad) and peak
FLOP/s (FMA chains) and caches them with host provenance in
HOST_ROOFLINE.json (--out overrides, --force re-measures); once the
cache exists, evaluate/search stamp the peaks into the trace meta so
trace-report can compute % of roofline.
bench-trend aggregates the committed BENCH_*.json microbench artifacts
into a per-cell history table; --gate fails when the newest file is
>10% slower than the best prior PR on any unwaived cell (waivers:
crates/xtask/trend_waivers.txt).
--checkpoint works with every scheme; under replicated, rank 0 writes
and all ranks resume from the same snapshot.
--inject-fault scripts deterministic failures into a replicated or
fork-join run, e.g. 'rank=2,allreduce=40' (rank 2 dies at its 40th
AllReduce), 'rank=1,region=3' (fork-join worker 1 panics in its 3rd
region) or 'ckpt-write=1,count=2' (first two checkpoint write attempts
fail); faults are ';'-separated and each fires exactly once.
--degrade makes a replicated run survive rank failures: the pattern
ranges are re-split over the survivors, the last checkpoint is
reloaded, and the search resumes with fewer ranks.
--transport (replicated only) picks what backs the ranks: 'threads'
(default) runs them as in-process threads; 'uds' spawns one OS process
per rank joined over Unix domain sockets (rank 0 runs in the
supervisor), with identical results — and real process isolation, so
--degrade recovery works against actual kill -9 process death
('rank=R,kill9=N' in --inject-fault SIGKILLs rank R's process at its
N-th AllReduce). 'tcp' is available when built with the tcp-transport
feature. The resolved transport and measured per-collective wire time
are recorded in the trace meta and shown by trace-report next to
micsim's modeled AllReduce latency.";

/// Writes `content` to `path` atomically and durably (same-directory
/// temp file + fsync + rename + parent-dir fsync), so a crash
/// mid-write never leaves a truncated trace. Shares the checkpoint
/// layer's implementation so trace and checkpoint writes have
/// identical crash semantics.
fn write_atomic(path: &str, content: &str) -> Result<(), String> {
    phylomic::search::checkpoint::write_atomic(std::path::Path::new(path), content)
        .map_err(|e| format!("{path}: {e}"))
}

/// Writes trace events as JSONL to `path` (atomically).
fn write_trace(path: &str, events: &[TraceEvent]) -> Result<(), String> {
    write_atomic(path, &write_jsonl(events))?;
    println!(
        "kernel timing trace written to {path} ({} events)",
        events.len()
    );
    Ok(())
}

/// Wraps per-source kernel/region events into a full trace document:
/// schema marker (with the resolved kernel backend, site-repeat mode
/// and — for replicated runs — the transport and its measured wire
/// time, so `trace-report` attributes timings to a configuration)
/// first, then the kernel aggregates, then every closed span from
/// every thread track, then a process-wide metrics snapshot.
fn full_trace(
    config: EngineConfig,
    transport: &str,
    wire: phylomic::parallel::WireStats,
    kernel_events: Vec<TraceEvent>,
) -> Vec<TraceEvent> {
    let tracks = span::snapshot_all();
    // If a cached calibration exists next to the working directory, stamp
    // its peaks into the meta so trace-report can place kernels on the
    // host roofline without re-calibrating.
    let (roofline_mflops, roofline_mbps) =
        plf_prof::roofline::load_cached(std::path::Path::new(plf_prof::roofline::CACHE_FILE))
            .map(|r| (r.peak_mflops, r.peak_mbps))
            .unwrap_or((0, 0));
    let mut out = vec![TraceEvent::Meta {
        version: TRACE_VERSION,
        backend: config.kernel.effective().to_string(),
        site_repeats: config.site_repeats.effective().to_string(),
        spans_dropped: tracks.iter().map(|t| t.dropped).sum(),
        roofline_mflops,
        roofline_mbps,
        transport: transport.to_string(),
        wire_ops: wire.ops,
        wire_ns: wire.total_ns,
    }];
    out.extend(kernel_events);
    out.extend(events_from_spans(&tracks));
    out.extend(events_from_metrics("process", &metrics::snapshot()));
    out
}

/// Writes the span timeline as Chrome trace-event JSON (atomically).
fn write_chrome(path: &str) -> Result<(), String> {
    let tracks = span::snapshot_all();
    write_atomic(path, &span::chrome_trace_json(&tracks))?;
    println!(
        "chrome trace written to {path} ({} tracks); open in Perfetto or chrome://tracing",
        tracks.len()
    );
    Ok(())
}

fn cmd_trace_report(opts: &Opts) -> Result<(), String> {
    let path = require(opts, "trace")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let report = phylomic::micsim::TraceReport::from_jsonl(&text).map_err(|e| e.to_string())?;
    match opts.get("format").map(String::as_str) {
        None | Some("text") => print!("{}", report.render()),
        Some("json") => print!("{}", report.render_json()),
        Some(other) => return Err(format!("--format must be text or json, got {other:?}")),
    }
    Ok(())
}

fn cmd_calibrate(opts: &Opts) -> Result<(), String> {
    let out = opts
        .get("out")
        .map(String::as_str)
        .unwrap_or(plf_prof::roofline::CACHE_FILE);
    let path = std::path::Path::new(out);
    let force = opts.contains_key("force");
    let (r, source) = match plf_prof::roofline::load_cached(path) {
        Some(cached) if !force => (cached, "cached"),
        _ => {
            println!("calibrating single-core roofline (a few seconds)...");
            let fresh = plf_prof::roofline::measure();
            fresh.save(path).map_err(|e| format!("{out}: {e}"))?;
            (fresh, "measured")
        }
    };
    println!(
        "roofline ({source}, {out}): {:.2} GFLOP/s peak compute, {:.2} GB/s peak bandwidth, \
         ridge {:.3} flop/byte",
        r.peak_mflops as f64 / 1e3,
        r.peak_mbps as f64 / 1e3,
        r.ridge()
    );
    println!(
        "host: {} ({} cores, simd {}), git {}",
        r.cpu_model, r.cores, r.simd, r.git_rev
    );
    match plf_prof::perf::PerfGroup::open() {
        Some(mut g) => {
            // Sample the counters over one triad-sized spin so the
            // user sees the perf path working end to end.
            g.reset_and_enable();
            let mut x = 0u64;
            for i in 0..1_000_000u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(x);
            match g.disable_and_read() {
                Some(c) => println!(
                    "perf counters: cycles {} instructions {} llc-misses {} (ipc {:.2})",
                    c.cycles,
                    c.instructions,
                    c.llc_misses,
                    c.ipc()
                ),
                None => println!("perf counters: opened but unreadable; ignoring"),
            }
        }
        None => println!(
            "perf counters: unavailable ({})",
            if plf_prof::perf::compiled_in() {
                "kernel refused perf_event_open; try lowering perf_event_paranoid"
            } else {
                "build without --features perf-counters"
            }
        ),
    }
    Ok(())
}

fn cmd_bench_trend(opts: &Opts) -> Result<(), String> {
    let dir = opts.get("dir").map(String::as_str).unwrap_or(".");
    let files = plf_prof::trend::scan_dir(std::path::Path::new(dir))?;
    if files.is_empty() {
        return Err(format!("no BENCH_*.json files in {dir}"));
    }
    print!("{}", plf_prof::trend::render_trend_markdown(&files));
    if opts.contains_key("gate") {
        // Waivers live next to the BENCH files' repo, not the cwd:
        // `bench-trend --dir /path/to/repo --gate` from anywhere must
        // still honor that repo's audited waiver list.
        let waiver_path = std::path::Path::new(dir).join("crates/xtask/trend_waivers.txt");
        let waivers = match std::fs::read_to_string(&waiver_path) {
            Ok(text) => plf_prof::trend::parse_waivers(&text)?,
            Err(_) => Vec::new(),
        };
        let report = plf_prof::trend::gate(&files, plf_prof::trend::DEFAULT_TOLERANCE, &waivers);
        print!("{}", report.render());
        if report.failed() {
            return Err("trend gate failed".into());
        }
    }
    Ok(())
}

type Opts = HashMap<String, String>;

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --option, found {key:?}"));
        };
        if matches!(name, "no-model-opt" | "degrade" | "force" | "gate") {
            opts.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("--{name} requires a value"))?;
        opts.insert(name.to_string(), value.clone());
    }
    Ok(opts)
}

fn get<T: std::str::FromStr>(opts: &Opts, key: &str, default: T) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("--{key}: {e}")),
    }
}

fn require<'a>(opts: &'a Opts, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("--{key} is required"))
}

/// Parses `--kernels` (or the older `--kernel` spelling). Defaults to
/// `auto` — runtime ISA dispatch. All name handling goes through
/// `KernelKind`'s `FromStr`, the single source of truth for backend
/// names; the `PHYLOMIC_KERNELS` environment variable still overrides
/// whatever is chosen here (applied at engine construction).
fn kernel_of(opts: &Opts) -> Result<KernelKind, String> {
    let (flag, value) = match (opts.get("kernels"), opts.get("kernel")) {
        (Some(_), Some(_)) => return Err("pass --kernels or --kernel, not both".into()),
        (Some(v), None) => ("kernels", v.as_str()),
        (None, Some(v)) => ("kernel", v.as_str()),
        (None, None) => return Ok(KernelKind::Auto),
    };
    value.parse().map_err(|e| format!("--{flag}: {e}"))
}

/// Parses `--site-repeats`. Defaults to `auto` — compress when the
/// class count makes it profitable. All name handling goes through
/// `SiteRepeats`' `FromStr`; the `PHYLOMIC_SITE_REPEATS` environment
/// variable still overrides whatever is chosen here (applied at engine
/// construction).
fn site_repeats_of(opts: &Opts) -> Result<SiteRepeats, String> {
    match opts.get("site-repeats") {
        None => Ok(SiteRepeats::Auto),
        Some(v) => v.parse().map_err(|e| format!("--site-repeats: {e}")),
    }
}

fn load_alignment(path: &str) -> Result<Alignment, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let aln = if path.ends_with(".phy") {
        phylip::parse_str(&text)
    } else {
        fasta::parse_str(&text)
    };
    aln.map_err(|e| format!("{path}: {e}"))
}

fn load_tree(path: &str) -> Result<Tree, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    newick::parse(text.trim()).map_err(|e| format!("{path}: {e}"))
}

fn cmd_simulate(opts: &Opts) -> Result<(), String> {
    let taxa: usize = get(opts, "taxa", 15)?;
    let sites: usize = get(opts, "sites", 10_000)?;
    let alpha: f64 = get(opts, "alpha", 0.85)?;
    let seed: u64 = get(opts, "seed", 42)?;
    let out = require(opts, "out")?;
    if taxa < 3 {
        return Err("--taxa must be at least 3".into());
    }

    let mut rng = SmallRng::seed_from_u64(seed);
    let names = default_names(taxa);
    let tree = random_tree(&names, 0.12, &mut rng).map_err(|e| e.to_string())?;
    let gtr = Gtr::new(GtrParams {
        rates: [1.1, 2.6, 0.8, 1.2, 3.4, 1.0],
        freqs: [0.29, 0.21, 0.22, 0.28],
    });
    let gamma = DiscreteGamma::new(alpha);
    let aln = phylomic::seqgen::simulate_alignment(&tree, gtr.eigen(), &gamma, sites, &mut rng);

    let rendered = if out.ends_with(".phy") {
        phylip::to_string(&aln)
    } else {
        fasta::to_string(&aln)
    };
    std::fs::write(out, rendered).map_err(|e| e.to_string())?;
    std::fs::write(
        format!("{out}.tree"),
        format!("{}\n", newick::to_newick(&tree)),
    )
    .map_err(|e| e.to_string())?;
    println!("wrote {out} ({taxa} taxa x {sites} sites) and {out}.tree (true tree)");
    Ok(())
}

fn cmd_evaluate(opts: &Opts) -> Result<(), String> {
    span::set_thread_label("serial");
    let aln = load_alignment(require(opts, "alignment")?)?;
    let tree = load_tree(require(opts, "tree")?)?;
    let alpha: f64 = get(opts, "alpha", 1.0)?;
    let compressed = CompressedAlignment::from_alignment(&aln);
    let config = EngineConfig {
        kernel: kernel_of(opts)?,
        alpha,
        site_repeats: site_repeats_of(opts)?,
    };
    let mut engine = LikelihoodEngine::new(&tree, &compressed, config);
    let ll = engine.log_likelihood(&tree, 0);
    println!(
        "patterns {} (from {} sites)  alpha {alpha}  logL {ll:.6}",
        compressed.num_patterns(),
        aln.num_sites()
    );
    if let Some(path) = opts.get("trace-out") {
        write_trace(
            path,
            &full_trace(
                config,
                "",
                Default::default(),
                events_from_stats("serial", engine.stats()),
            ),
        )?;
    }
    if let Some(path) = opts.get("chrome-out") {
        write_chrome(path)?;
    }
    Ok(())
}

/// Deterministic search inputs shared by the `search` supervisor and
/// the hidden `_rank` child entry: both rebuild byte-identical inputs
/// from the same flags (seeded tree construction included), which is
/// what keeps the OS-process ranks in lockstep with rank 0.
struct SearchInputs {
    aln: Alignment,
    compressed: CompressedAlignment,
    tree: Tree,
    config: EngineConfig,
    search: MlSearch,
}

fn search_inputs(opts: &Opts) -> Result<SearchInputs, String> {
    let aln = load_alignment(require(opts, "alignment")?)?;
    let compressed = CompressedAlignment::from_alignment(&aln);
    let seed: u64 = get(opts, "seed", 1)?;
    let alpha: f64 = get(opts, "alpha", 1.0)?;
    let rounds: usize = get(opts, "rounds", 20)?;
    let tree = match opts.get("tree") {
        Some(path) => load_tree(path)?,
        None => match opts.get("start").map(String::as_str).unwrap_or("random") {
            "parsimony" => phylomic::search::parsimony::stepwise_addition_tree(
                &compressed,
                0.05,
                &mut SmallRng::seed_from_u64(seed),
            )
            .map_err(|e| e.to_string())?,
            "random" => {
                let names: Vec<String> = aln.names().map(str::to_string).collect();
                random_tree(&names, 0.1, &mut SmallRng::seed_from_u64(seed))
                    .map_err(|e| e.to_string())?
            }
            other => {
                return Err(format!(
                    "--start must be random or parsimony, got {other:?}"
                ))
            }
        },
    };
    let config = EngineConfig {
        kernel: kernel_of(opts)?,
        alpha,
        site_repeats: site_repeats_of(opts)?,
    };
    let search = MlSearch::new(SearchConfig {
        max_rounds: rounds,
        optimize_model: !opts.contains_key("no-model-opt"),
        ..Default::default()
    });
    Ok(SearchInputs {
        aln,
        compressed,
        tree,
        config,
        search,
    })
}

fn fault_plan_of(opts: &Opts) -> Result<Option<std::sync::Arc<FaultPlan>>, String> {
    match opts.get("inject-fault") {
        Some(spec) => Ok(Some(std::sync::Arc::new(
            FaultPlan::parse(spec).map_err(|e| format!("--inject-fault: {e}"))?,
        ))),
        None => Ok(None),
    }
}

/// Child-rank process body (hidden `_rank` subcommand): rebuild the
/// supervisor's inputs from the pass-through flags, connect to the
/// hub, run the lockstep search over this rank's slice, report, exit.
#[cfg(unix)]
fn cmd_rank(opts: &Opts) -> Result<(), String> {
    use phylomic::parallel::{ChildRankArgs, Endpoint, TransportConfig};
    span::set_thread_label("rank");
    // A peer's death reaches this process as a CommError panic payload
    // that run_rank catches and reports through the hub; keep the
    // default hook's backtrace spam off the shared stderr for that
    // expected path (genuine panics still print).
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info
            .payload()
            .downcast_ref::<phylomic::parallel::CommError>()
            .is_none()
        {
            prev_hook(info);
        }
    }));
    let inputs = search_inputs(opts)?;
    let rank: usize = require(opts, "rank-id")?
        .parse()
        .map_err(|e| format!("--rank-id: {e}"))?;
    let ranks: usize = require(opts, "ranks")?
        .parse()
        .map_err(|e| format!("--ranks: {e}"))?;
    let endpoint: Endpoint = require(opts, "endpoint")?
        .parse()
        .map_err(|e: String| format!("--endpoint: {e}"))?;
    let ckpt = opts.get("checkpoint").map(std::path::PathBuf::from);
    phylomic::parallel::run_rank(ChildRankArgs {
        rank,
        ranks,
        endpoint,
        tree: &inputs.tree,
        aln: &inputs.compressed,
        config: inputs.config,
        search: inputs.search,
        checkpoint: ckpt.as_deref(),
        tcfg: TransportConfig::from_env(),
        fault_plan: fault_plan_of(opts)?,
    })
}

fn cmd_search(opts: &Opts) -> Result<(), String> {
    span::set_thread_label("serial");
    let threads: usize = get(opts, "threads", 1)?;
    let scheme = opts.get("scheme").map(String::as_str).unwrap_or("serial");
    let SearchInputs {
        aln: _aln,
        compressed,
        mut tree,
        config,
        search,
    } = search_inputs(opts)?;
    let fault_plan = fault_plan_of(opts)?;
    let start = std::time::Instant::now();
    let mut trace_events: Vec<TraceEvent> = Vec::new();
    let mut trace_transport = String::new();
    let mut trace_wire = phylomic::parallel::WireStats::default();
    let result = match scheme {
        "serial" => {
            if fault_plan.is_some() {
                return Err("--inject-fault needs --scheme replicated or forkjoin".into());
            }
            let mut engine = LikelihoodEngine::new(&tree, &compressed, config);
            let result = match opts.get("checkpoint") {
                Some(path) => {
                    search.run_checkpointed(&mut engine, &mut tree, std::path::Path::new(path))?
                }
                None => search.run(&mut engine, &mut tree),
            };
            trace_events = events_from_stats("serial", engine.stats());
            result
        }
        "forkjoin" => {
            let mut fj = ForkJoinEvaluator::with_fault_plan(
                &tree,
                &compressed,
                config,
                threads.max(1),
                fault_plan,
            );
            // A worker panic (injected via rank=R,region=N or real) is
            // re-raised by the master; turn it into a structured exit
            // instead of an abort trace.
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                match opts.get("checkpoint") {
                    Some(path) => {
                        search.run_checkpointed(&mut fj, &mut tree, std::path::Path::new(path))
                    }
                    None => Ok(search.run(&mut fj, &mut tree)),
                }
            }));
            let result = match run {
                Ok(r) => r?,
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .map(|s| s.as_str())
                        .or_else(|| payload.downcast_ref::<&str>().copied())
                        .unwrap_or("worker panicked");
                    return Err(format!("fork-join region failed: {msg}"));
                }
            };
            // One kernel-event block per worker (their differing slice
            // widths feed the calibration fit) plus the master's
            // region fork/join latencies.
            for (i, stats) in fj.take_stats_per_worker().iter().enumerate() {
                trace_events.extend(events_from_stats(&format!("worker{i}"), stats));
            }
            trace_events.extend(events_from_stats("master", fj.master_stats()));
            result
        }
        "replicated" => {
            let transport: phylomic::parallel::TransportKind =
                match opts.get("transport").map(String::as_str) {
                    None => phylomic::parallel::TransportKind::Threads,
                    Some(v) => v.parse().map_err(|e| format!("--transport: {e}"))?,
                };
            let ft = FtConfig {
                degrade: opts.contains_key("degrade"),
                checkpoint: opts.get("checkpoint").map(std::path::PathBuf::from),
                fault_plan,
                ..FtConfig::new(threads.max(1))
            };
            // Rank failure unwinds via a CommError panic payload that
            // the supervisor catches and reports structurally; keep
            // the default hook's per-thread backtrace spam off stderr
            // for that expected path (anything else still prints).
            let prev_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if info
                    .payload()
                    .downcast_ref::<phylomic::parallel::CommError>()
                    .is_none()
                {
                    prev_hook(info);
                }
            }));
            let out = if transport.is_socket() {
                #[cfg(unix)]
                {
                    run_sharded(opts, &tree, &compressed, config, search, &ft, transport)?
                }
                #[cfg(not(unix))]
                {
                    return Err("socket transports require a unix host".into());
                }
            } else {
                run_replicated_ft(&tree, &compressed, config, search, &ft)
                    .map_err(|e| e.to_string())?
            };
            trace_events = events_from_stats("replicated", &out.kernel_stats);
            trace_transport = out.transport.clone();
            trace_wire = out.wire;
            out.result
        }
        other => return Err(format!("unknown --scheme {other:?}")),
    };
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "logL {:.6}  rounds {}  moves {}/{}  time {elapsed:.2}s",
        result.log_likelihood, result.rounds, result.spr_accepted, result.spr_evaluated
    );
    // The tree is the expensive artifact: persist it before the trace so
    // a bad --trace-out path cannot discard a long search's result.
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, format!("{}\n", result.newick)).map_err(|e| e.to_string())?;
            println!("best tree written to {path}");
        }
        None => println!("{}", result.newick),
    }
    if let Some(path) = opts.get("trace-out") {
        write_trace(
            path,
            &full_trace(config, &trace_transport, trace_wire, trace_events),
        )?;
    }
    if let Some(path) = opts.get("chrome-out") {
        write_chrome(path)?;
    }
    Ok(())
}

/// Supervisor side of `search --scheme replicated --transport uds`:
/// re-execs this binary's hidden `_rank` entry for ranks `1..n`,
/// passing through every flag the ranks need to rebuild identical
/// inputs, and runs rank 0 (plus the frame hub) in this process.
#[cfg(unix)]
fn run_sharded(
    opts: &Opts,
    tree: &Tree,
    compressed: &CompressedAlignment,
    config: EngineConfig,
    search: MlSearch,
    ft: &FtConfig,
    transport: phylomic::parallel::TransportKind,
) -> Result<phylomic::parallel::ReplicatedOutcome, String> {
    use phylomic::parallel::{run_sharded_ft, RankSpec, TransportConfig};
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    // Flags a child needs to rebuild the supervisor's exact inputs.
    const PASS_THROUGH: &[&str] = &[
        "alignment",
        "tree",
        "start",
        "seed",
        "alpha",
        "rounds",
        "kernels",
        "kernel",
        "site-repeats",
        "checkpoint",
    ];
    let mut spawn = |spec: &RankSpec| {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("_rank")
            .arg("--rank-id")
            .arg(spec.rank.to_string())
            .arg("--ranks")
            .arg(spec.ranks.to_string())
            .arg("--endpoint")
            .arg(spec.endpoint.to_string())
            // The supervisor owns the console; children stay quiet.
            .stdout(std::process::Stdio::null());
        for key in PASS_THROUGH {
            if let Some(v) = opts.get(*key) {
                cmd.arg(format!("--{key}")).arg(v);
            }
        }
        if opts.contains_key("no-model-opt") {
            cmd.arg("--no-model-opt");
        }
        // One-shot fault semantics across processes: a respawned
        // (degraded) child starts with fresh latches, so the scripted
        // faults ride along only on the first attempt.
        if spec.attempt == 1 {
            if let Some(v) = opts.get("inject-fault") {
                cmd.arg("--inject-fault").arg(v);
            }
        }
        cmd.spawn()
    };
    run_sharded_ft(
        tree,
        compressed,
        config,
        search,
        ft,
        transport,
        &TransportConfig::from_env(),
        &std::env::temp_dir(),
        &mut spawn,
    )
    .map_err(|e| e.to_string())
}

fn cmd_bootstrap(opts: &Opts) -> Result<(), String> {
    use phylomic::search::bootstrap::{annotate_newick, run_bootstrap, BootstrapConfig};
    let aln = load_alignment(require(opts, "alignment")?)?;
    let compressed = CompressedAlignment::from_alignment(&aln);
    let seed: u64 = get(opts, "seed", 1)?;
    let replicates: usize = get(opts, "replicates", 20)?;
    let rounds: usize = get(opts, "rounds", 3)?;

    // Primary search from a parsimony start.
    let mut tree = phylomic::search::parsimony::stepwise_addition_tree(
        &compressed,
        0.05,
        &mut SmallRng::seed_from_u64(seed),
    )
    .map_err(|e| e.to_string())?;
    let config = EngineConfig {
        kernel: kernel_of(opts)?,
        alpha: get(opts, "alpha", 1.0)?,
        site_repeats: site_repeats_of(opts)?,
    };
    let search = MlSearch::new(SearchConfig {
        max_rounds: rounds.max(3),
        ..Default::default()
    });
    let mut engine = LikelihoodEngine::new(&tree, &compressed, config);
    let best = search.run(&mut engine, &mut tree);
    println!("best tree logL {:.6}", best.log_likelihood);

    // Replicates.
    println!("running {replicates} bootstrap replicates...");
    let bs_cfg = BootstrapConfig {
        replicates,
        search: SearchConfig {
            max_rounds: rounds,
            optimize_model: false,
            smoothing_passes: 4,
            ..Default::default()
        },
        engine: config,
    };
    let result = run_bootstrap(
        &compressed,
        &tree,
        bs_cfg,
        &mut SmallRng::seed_from_u64(seed ^ 0xb007),
    );
    let annotated = annotate_newick(&tree, &result);
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, format!("{annotated}\n")).map_err(|e| e.to_string())?;
            println!("support-annotated tree written to {path}");
        }
        None => println!("{annotated}"),
    }
    Ok(())
}
