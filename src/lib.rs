#![warn(missing_docs)]
//! **phylomic** — a Rust reproduction of *"Efficient Computation of
//! the Phylogenetic Likelihood Function on the Intel MIC Architecture"*
//! (Kozlov, Goll, Stamatakis; HiCOMB/IPDPS 2014).
//!
//! This crate is the facade: it re-exports every subsystem crate of
//! the workspace. See `README.md` for the architecture map and
//! `DESIGN.md`/`EXPERIMENTS.md` for the reproduction methodology.
//!
//! # Example: likelihood of a tree
//!
//! ```
//! use phylomic::bio::{fasta, CompressedAlignment};
//! use phylomic::plf::{EngineConfig, LikelihoodEngine};
//! use phylomic::tree::newick;
//!
//! let aln = fasta::parse_str(">a\nACGTAC\n>b\nACGAAC\n>c\nTCGTAC\n").unwrap();
//! let compressed = CompressedAlignment::from_alignment(&aln);
//! let tree = newick::parse("(a:0.1,b:0.2,c:0.15);").unwrap();
//!
//! let mut engine = LikelihoodEngine::new(&tree, &compressed, EngineConfig::default());
//! let ll = engine.log_likelihood(&tree, 0);
//! assert!(ll.is_finite() && ll < 0.0);
//!
//! // Time-reversible model: any virtual-root edge gives the same value.
//! for e in tree.edge_ids() {
//!     assert!((engine.log_likelihood(&tree, e) - ll).abs() < 1e-9);
//! }
//! ```
//!
//! # Example: simulate, search, compare to the truth
//!
//! ```
//! use phylomic::models::{DiscreteGamma, Gtr, GtrParams};
//! use phylomic::plf::{EngineConfig, LikelihoodEngine};
//! use phylomic::search::{MlSearch, SearchConfig};
//! use phylomic::tree::build::{default_names, random_tree};
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let names = default_names(6);
//! let truth = random_tree(&names, 0.15, &mut rng).unwrap();
//! let gtr = Gtr::new(GtrParams::jc69());
//! let gamma = DiscreteGamma::new(1.0);
//! let aln = phylomic::seqgen::simulate_compressed(&truth, gtr.eigen(), &gamma, 800, &mut rng);
//!
//! let mut tree = random_tree(&names, 0.1, &mut SmallRng::seed_from_u64(1)).unwrap();
//! let mut engine = LikelihoodEngine::new(&tree, &aln, EngineConfig::default());
//! let search = MlSearch::new(SearchConfig { max_rounds: 4, ..Default::default() });
//! let result = search.run(&mut engine, &mut tree);
//! assert!(result.log_likelihood.is_finite());
//! assert!(tree.rf_distance(&truth) <= 2);
//! ```
#![deny(unsafe_op_in_unsafe_fn)]

pub use micsim;
pub use phylo_bio as bio;
pub use phylo_models as models;
pub use phylo_parallel as parallel;
pub use phylo_search as search;
pub use phylo_seqgen as seqgen;
pub use phylo_tree as tree;
pub use plf_core as plf;
