//! Generate benchmark alignments — the INDELible-substitute workflow
//! the paper uses to create its 8 test datasets (§VI-A3: 15 taxa,
//! 10K–4,000K DNA sites).
//!
//! Run: `cargo run --release --example simulate_alignment [sites] [out.phy]`

use phylomic::bio::phylip;
use phylomic::models::{DiscreteGamma, Gtr, GtrParams};
use phylomic::seqgen::simulate_alignment;
use phylomic::tree::build::{default_names, random_tree};
use phylomic::tree::newick;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let sites: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10_000);
    let out_path = args.next().unwrap_or_else(|| "simulated.phy".to_string());

    let mut rng = SmallRng::seed_from_u64(42);
    let names = default_names(15);
    let tree = random_tree(&names, 0.12, &mut rng).unwrap();
    let gtr = Gtr::new(GtrParams {
        rates: [1.1, 2.6, 0.8, 1.2, 3.4, 1.0],
        freqs: [0.29, 0.21, 0.22, 0.28],
    });
    let gamma = DiscreteGamma::new(0.85);

    println!("simulating 15 taxa x {sites} sites under GTR+Gamma...");
    let aln = simulate_alignment(&tree, gtr.eigen(), &gamma, sites, &mut rng);

    let f = std::fs::File::create(&out_path).expect("create output file");
    phylip::write(&aln, std::io::BufWriter::new(f)).expect("write PHYLIP");
    std::fs::write(
        format!("{out_path}.tree"),
        format!("{}\n", newick::to_newick(&tree)),
    )
    .expect("write tree");

    let compressed = phylomic::bio::CompressedAlignment::from_alignment(&aln);
    println!(
        "wrote {out_path} ({} sites, {} unique patterns, {:.1}% unique) and {out_path}.tree",
        aln.num_sites(),
        compressed.num_patterns(),
        100.0 * compressed.num_patterns() as f64 / aln.num_sites() as f64
    );
}
