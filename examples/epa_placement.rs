//! Evolutionary placement of query sequences — the paper's §VII
//! future-work application (EPA, Berger et al. 2011), built from the
//! public API.
//!
//! Given a fixed reference tree and alignment, each query sequence is
//! attached to every branch of the reference tree in turn; the pendant
//! branch length is optimized by Newton-Raphson and the placement with
//! the best log-likelihood wins. Placements of different queries (and
//! different branches) are independent, which is why the paper calls
//! EPA "a promising candidate" for accelerator offloading.
//!
//! Run: `cargo run --release --example epa_placement`

use phylomic::bio::{Alignment, CompressedAlignment, Sequence};
use phylomic::models::{DiscreteGamma, Gtr, GtrParams};
use phylomic::plf::{EngineConfig, LikelihoodEngine};
use phylomic::search::newton::optimize_branch;
use phylomic::tree::moves::{spr, spr_undo};
use phylomic::tree::{newick, NodeId, Tree};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// A placement candidate, identified topologically: the sorted tip
/// names on the smaller side of the reference branch the query was
/// grafted into.
#[derive(Clone, Debug)]
struct Placement {
    key: Vec<String>,
    log_likelihood: f64,
    pendant_length: f64,
}

fn main() {
    // Reference data: 10 taxa, simulated.
    let mut rng = SmallRng::seed_from_u64(77);
    let ref_names = phylomic::tree::build::default_names(10);
    let ref_tree = phylomic::tree::build::random_tree(&ref_names, 0.15, &mut rng).unwrap();
    let gtr = Gtr::new(GtrParams::jc69());
    let gamma = DiscreteGamma::new(1.0);
    let sites = 2_000;
    let ref_aln =
        phylomic::seqgen::simulate_alignment(&ref_tree, gtr.eigen(), &gamma, sites, &mut rng);

    // Queries: ~5% point divergence away from two reference taxa, so
    // the correct placements (the source taxon's pendant branch) are
    // known.
    let queries = [("query_near_t3", "t3"), ("query_near_t7", "t7")];
    let query_seqs: Vec<Sequence> = queries
        .iter()
        .map(|(qname, src)| {
            let src_row = ref_aln.taxon_index(src).unwrap();
            let codes: Vec<_> = ref_aln
                .sequence(src_row)
                .codes()
                .iter()
                .map(|&c| {
                    if rand::Rng::random::<f64>(&mut rng) < 0.05 {
                        phylomic::bio::alphabet::UNAMBIGUOUS
                            [rand::Rng::random_range(&mut rng, 0..4usize)]
                    } else {
                        c
                    }
                })
                .collect();
            Sequence::new(*qname, codes)
        })
        .collect();

    println!("reference: {} taxa x {sites} sites", ref_tree.num_taxa());
    println!("reference tree: {}", newick::to_newick(&ref_tree));
    println!();

    for (qi, (qname, true_src)) in queries.iter().enumerate() {
        let placements = place_query(&ref_tree, &ref_aln, &query_seqs[qi]);
        let mut sorted: Vec<&Placement> = placements.values().collect();
        sorted.sort_by(|a, b| b.log_likelihood.partial_cmp(&a.log_likelihood).unwrap());
        let best = sorted[0];
        println!(
            "{qname}: best branch = split {{{}}}, logL {:.3}, pendant {:.4}",
            best.key.join(","),
            best.log_likelihood,
            best.pendant_length
        );
        // Likelihood-weight ratios of the top 3 placements.
        let max_ll = best.log_likelihood;
        let total: f64 = sorted
            .iter()
            .map(|p| (p.log_likelihood - max_ll).exp())
            .sum();
        for p in sorted.iter().take(3) {
            println!(
                "    {{{}}}  logL {:>10.3}  LWR {:.3}",
                p.key.join(","),
                p.log_likelihood,
                (p.log_likelihood - max_ll).exp() / total
            );
        }
        let recovered = best.key == vec![true_src.to_string()];
        println!(
            "    true placement (pendant branch of {true_src}): {}",
            if recovered { "RECOVERED" } else { "MISSED" }
        );
        assert!(recovered, "EPA failed to place {qname} next to {true_src}");
        println!();
    }
}

/// Scores the query against every reference branch; returns the best
/// placement per branch, keyed topologically.
fn place_query(
    ref_tree: &Tree,
    ref_aln: &Alignment,
    query: &Sequence,
) -> HashMap<Vec<String>, Placement> {
    // Extended alignment: reference rows + the query row.
    let mut seqs: Vec<Sequence> = ref_aln.sequences().to_vec();
    seqs.push(query.clone());
    let ext_aln = CompressedAlignment::from_alignment(&Alignment::new(seqs).unwrap());

    // Extended tree: query grafted anywhere (next to the newick's
    // first top-level subtree).
    let mut tree = attach_query(ref_tree, query.name());
    let q_tip = tree.tip_by_name(query.name()).unwrap();
    let mut engine = LikelihoodEngine::new(&tree, &ext_aln, EngineConfig::default());

    let mut placements: HashMap<Vec<String>, Placement> = HashMap::new();
    // Two passes from different attachment points cover the edges that
    // are SPR-excluded (adjacent to the current attachment) in either
    // pass.
    for pass in 0..2 {
        let prune = tree.incident(q_tip)[0];
        // Record the current position too: it is itself a placement
        // (the one SPR cannot score because the target would be
        // adjacent).
        record_current(&mut engine, &mut tree, q_tip, &mut placements);
        let n_edges = tree.num_edges();
        for target in 0..n_edges {
            let undo = match spr(&mut tree, prune, q_tip, target) {
                Ok(u) => u,
                Err(_) => continue,
            };
            record_current(&mut engine, &mut tree, q_tip, &mut placements);
            spr_undo(&mut tree, undo).expect("undo placement trial");
        }
        if pass == 0 {
            // Move the query to a distant valid edge for the second
            // pass (the last edge that accepts it).
            for target in (0..tree.num_edges()).rev() {
                if spr(&mut tree, prune, q_tip, target).is_ok() {
                    break;
                }
            }
        }
    }
    placements
}

/// Optimizes the pendant branch at the query's current position and
/// records the placement under its topological key.
fn record_current(
    engine: &mut LikelihoodEngine,
    tree: &mut Tree,
    q_tip: NodeId,
    placements: &mut HashMap<Vec<String>, Placement>,
) {
    let prune = tree.incident(q_tip)[0];
    let saved = tree.length(prune);
    optimize_branch(engine, tree, prune);
    let ll = engine.log_likelihood(tree, prune);
    let key = placement_key(tree, q_tip);
    let better = placements.get(&key).is_none_or(|p| ll > p.log_likelihood);
    if better {
        placements.insert(
            key,
            Placement {
                key: Vec::new(), // filled below
                log_likelihood: ll,
                pendant_length: tree.length(prune),
            },
        );
        let k = placement_key(tree, q_tip);
        placements.get_mut(&k).unwrap().key = k.clone();
    }
    tree.set_length(prune, saved).unwrap();
}

/// Topological identity of the query's current position: the sorted
/// reference-tip names of the smaller side of the branch it subdivides
/// (the two non-pendant edges at the attachment point reconnect that
/// branch).
fn placement_key(tree: &Tree, q_tip: NodeId) -> Vec<String> {
    let prune = tree.incident(q_tip)[0];
    let p = tree.other_end(prune, q_tip);
    // One of p's other edges; the tips behind it (away from p) are one
    // side of the subdivided reference branch.
    let e = tree
        .incident(p)
        .iter()
        .copied()
        .find(|&x| x != prune)
        .expect("attachment point has degree 3");
    let far = tree.other_end(e, p);
    let mut side: Vec<String> = tree
        .tips_behind(e, far)
        .into_iter()
        .map(|t| tree.tip_name(t).to_string())
        .collect();
    side.sort();
    let mut other: Vec<String> = tree
        .tip_names()
        .iter()
        .filter(|n| *n != tree.tip_name(q_tip) && !side.contains(n))
        .cloned()
        .collect();
    other.sort();
    if side.len() < other.len() || (side.len() == other.len() && side < other) {
        side
    } else {
        other
    }
}

/// Attaches a fresh tip named `qname` next to the first top-level
/// subtree of `t`'s Newick rendering.
fn attach_query(t: &Tree, qname: &str) -> Tree {
    let s = newick::to_newick(t);
    let inner = &s[1..s.len() - 2]; // strip outer parens and ";"
    let mut depth = 0;
    let mut cut = 0;
    for (i, c) in inner.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth -= 1,
            ',' if depth == 0 => {
                cut = i;
                break;
            }
            _ => {}
        }
    }
    let (first, rest) = inner.split_at(cut);
    let glued = format!("(({first},{qname}:0.1):0.05{rest});");
    newick::parse(&glued).unwrap()
}
