//! The paper's §VII extensions in action: protein (20-state) data and
//! the CAT model of rate heterogeneity.
//!
//! Run: `cargo run --release --example protein_and_cat`

use phylomic::bio::aa::{parse_aa_sequence, NUM_AA_STATES};
use phylomic::models::{protein_poisson, CatRates, DiscreteGamma, Gtr, GtrParams};
use phylomic::plf::cat::CatEngine;
use phylomic::plf::nstate::NStateEngine;
use phylomic::tree::newick;

fn main() {
    protein_demo();
    println!();
    cat_demo();
}

fn protein_demo() {
    println!("=== Protein likelihood (Poisson+F, 20 states, Gamma rates) ===");
    let tree =
        newick::parse("((human:0.06,mouse:0.11):0.03,chicken:0.18,(frog:0.22,fish:0.31):0.05);")
            .unwrap();

    let seqs = [
        ("human", "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ"),
        ("mouse", "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ"),
        ("chicken", "MKTAYLAKQRQISFVKAHFSRQLEERLGMIEVQ"),
        ("frog", "MRTAYLAKQKQISFVKAHFSRQIEDRLGMIEVX"),
        ("fish", "MRSAYLSKQKQVSFVKAHFARQIEDRLNMIEVX"),
    ];

    // Encode tip masks in tree tip-id order.
    let tips: Vec<Vec<u32>> = (0..tree.num_taxa())
        .map(|t| {
            let name = tree.tip_name(t);
            let (_, s) = seqs.iter().find(|(n, _)| *n == name).unwrap();
            parse_aa_sequence(s)
                .unwrap()
                .iter()
                .map(|c| c.bits())
                .collect()
        })
        .collect();
    let patterns = tips[0].len();

    // Empirical residue frequencies with pseudocounts.
    let mut counts = [1.0f64; NUM_AA_STATES];
    for row in &tips {
        for &mask in row {
            if mask.count_ones() == 1 {
                counts[mask.trailing_zeros() as usize] += 1.0;
            }
        }
    }
    let total: f64 = counts.iter().sum();
    let freqs = counts.map(|c| c / total);

    let eigen = protein_poisson(&freqs).expect("valid protein model");
    let mut engine = NStateEngine::new(
        &tree,
        eigen,
        DiscreteGamma::new(0.6),
        tips,
        vec![1; patterns],
    );
    let ll = engine.log_likelihood(&tree, 0);
    println!("{} residues, log-likelihood: {ll:.4}", patterns);

    // Newton-Raphson on one branch via the N-state derivative kernels.
    let edge = 0;
    let mut tree = tree;
    engine.prepare_branch(&tree, edge);
    let mut t = tree.length(edge);
    for _ in 0..20 {
        let (d1, d2) = engine.branch_derivatives(t);
        if d1.abs() < 1e-9 || d2 >= 0.0 {
            break;
        }
        t = (t - d1 / d2).clamp(1e-8, 10.0);
    }
    tree.set_length(edge, t).unwrap();
    println!(
        "optimized human pendant branch: {t:.5}, log-likelihood {:.4}",
        engine.log_likelihood(&tree, 0)
    );
}

fn cat_demo() {
    println!("=== CAT rate heterogeneity (per-site rates, 4-double stride) ===");
    let tree = newick::parse("((a:0.15,b:0.25):0.1,c:0.2,(d:0.1,e:0.3):0.15);").unwrap();
    let gtr = Gtr::new(GtrParams {
        rates: [1.2, 2.8, 0.7, 1.1, 3.3, 1.0],
        freqs: [0.28, 0.22, 0.23, 0.27],
    });

    // Tip data: 12 patterns; first half conserved, second half noisy.
    let enc = |s: &str| -> Vec<u8> {
        s.chars()
            .map(|c| phylomic::bio::DnaCode::from_char(c).unwrap().bits())
            .collect()
    };
    let tips = vec![
        enc("AAAAAACGTGCA"),
        enc("AAAAAATGAGCC"),
        enc("AAAAAACCTACA"),
        enc("AAAAAAAGAGTC"),
        enc("AAAAAACGGACA"),
    ];
    let weights = vec![1u32; 12];

    // Two CAT categories: slow for the conserved half, fast after.
    let mut cats = CatRates::new(
        vec![0.15, 2.4],
        (0..12).map(|i| if i < 6 { 0 } else { 1 }).collect(),
    );
    cats.normalize(&weights);
    println!("normalized category rates: {:?}", cats.rates());

    let mut engine = CatEngine::new(
        &tree,
        gtr.eigen().clone(),
        cats,
        tips.clone(),
        weights.clone(),
    );
    let ll_cat = engine.log_likelihood(&tree, 0);
    println!("CAT log-likelihood:          {ll_cat:.4}");

    // Compare against the Gamma engine on the same data.
    let ca = phylomic::bio::CompressedAlignment::from_parts(
        vec!["a".into(), "b".into(), "c".into(), "d".into(), "e".into()],
        tips.iter()
            .map(|row| {
                row.iter()
                    .map(|&b| phylomic::bio::DnaCode::from_bits(b).unwrap())
                    .collect()
            })
            .collect(),
        weights,
    )
    .unwrap();
    let mut gamma_engine = phylomic::plf::LikelihoodEngine::new(
        &tree,
        &ca,
        phylomic::plf::EngineConfig {
            kernel: phylomic::plf::KernelKind::Vector,
            alpha: 0.5,
            ..phylomic::plf::EngineConfig::default()
        },
    );
    gamma_engine.set_model(*gtr.params());
    let ll_gamma = gamma_engine.log_likelihood(&tree, 0);
    println!("Gamma(0.5) log-likelihood:   {ll_gamma:.4}");
    println!(
        "(CAT fits this conserved/noisy split better: {} by {:.2} log units)",
        if ll_cat > ll_gamma { "yes" } else { "no" },
        (ll_cat - ll_gamma).abs()
    );
}
