//! Full maximum-likelihood tree search on simulated data — the
//! RAxML-Light/ExaML workload the paper benchmarks — run three ways:
//! single-threaded, fork-join (RAxML-Light scheme), and replicated
//! (ExaML scheme). All three must find the same tree.
//!
//! Run: `cargo run --release --example ml_search [patterns] [ranks]`

use phylomic::models::{DiscreteGamma, Gtr, GtrParams};
use phylomic::parallel::{run_replicated, ForkJoinEvaluator};
use phylomic::plf::{EngineConfig, KernelKind, LikelihoodEngine};
use phylomic::search::{MlSearch, SearchConfig};
use phylomic::seqgen;
use phylomic::tree::build::{default_names, random_tree};
use phylomic::tree::newick;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let patterns: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5_000);
    let ranks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    // Simulate a 15-taxon dataset (the paper's shape) on a known tree.
    let mut rng = SmallRng::seed_from_u64(2014);
    let names = default_names(15);
    let true_tree = random_tree(&names, 0.12, &mut rng).unwrap();
    let gtr = Gtr::new(GtrParams {
        rates: [1.3, 2.9, 0.7, 1.0, 3.6, 1.0],
        freqs: [0.27, 0.23, 0.24, 0.26],
    });
    let gamma = DiscreteGamma::new(0.7);
    let aln = seqgen::simulate_compressed(&true_tree, gtr.eigen(), &gamma, patterns, &mut rng);
    println!(
        "simulated {} taxa x {} patterns under GTR+Gamma(alpha=0.7)",
        aln.num_taxa(),
        aln.num_patterns()
    );

    let start_tree = random_tree(&names, 0.1, &mut SmallRng::seed_from_u64(99)).unwrap();
    let config = EngineConfig {
        kernel: KernelKind::Vector,
        alpha: 0.7,
        ..EngineConfig::default()
    };
    let search = MlSearch::new(SearchConfig {
        max_rounds: 8,
        optimize_model: true,
        ..Default::default()
    });

    // 1. Single-threaded.
    let mut t1 = start_tree.clone();
    let mut engine = LikelihoodEngine::new(&t1, &aln, config);
    let t = Instant::now();
    let r1 = search.run(&mut engine, &mut t1);
    println!(
        "serial:     logL {:.3}  RF-to-truth {}  ({:.2}s, {} SPR candidates)",
        r1.log_likelihood,
        t1.rf_distance(&true_tree),
        t.elapsed().as_secs_f64(),
        r1.spr_evaluated
    );

    // 2. Fork-join scheme (RAxML-Light style).
    let mut t2 = start_tree.clone();
    let mut fj = ForkJoinEvaluator::new(&t2, &aln, config, ranks);
    let t = Instant::now();
    let r2 = search.run(&mut fj, &mut t2);
    println!(
        "fork-join:  logL {:.3}  RF-to-truth {}  ({:.2}s, {} workers, {} regions)",
        r2.log_likelihood,
        t2.rf_distance(&true_tree),
        t.elapsed().as_secs_f64(),
        fj.num_workers(),
        fj.regions()
    );

    // 3. Replicated scheme (ExaML style).
    let t = Instant::now();
    let out = run_replicated(&start_tree, &aln, config, search, ranks);
    let t3 = newick::parse(&out.result.newick).unwrap();
    println!(
        "replicated: logL {:.3}  RF-to-truth {}  ({:.2}s, {} ranks, {} AllReduces of {} B avg)",
        out.result.log_likelihood,
        t3.rf_distance(&true_tree),
        t.elapsed().as_secs_f64(),
        ranks,
        out.comm_stats.allreduces,
        out.comm_stats
            .bytes
            .checked_div(out.comm_stats.allreduces)
            .unwrap_or(0)
    );

    assert_eq!(t1.rf_distance(&t2), 0, "schemes disagree on topology");
    assert_eq!(t1.rf_distance(&t3), 0, "schemes disagree on topology");
    println!("\nall three schemes found the same topology");
    println!("final tree: {}", r1.newick);
}
