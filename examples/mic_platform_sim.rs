//! Predict how a workload would run on the paper's four systems.
//!
//! Runs a short instrumented search with *your* parameters, then asks
//! the `micsim` machine model what that workload would cost on the
//! 2S Xeon E5-2630/E5-2680 and on one or two Xeon Phi 5110P cards —
//! including the execution-mode and interconnect effects the paper
//! analyzes.
//!
//! Run: `cargo run --release --example mic_platform_sim [patterns]`

use phylomic::micsim::model::{predict_time, ExecMode};
use phylomic::micsim::systems::{SystemId, TABLE3_SIZES};
use phylomic::micsim::WorkloadTrace;
use phylomic::models::{DiscreteGamma, Gtr, GtrParams};
use phylomic::parallel::run_replicated;
use phylomic::plf::{EngineConfig, KernelKind};
use phylomic::search::{MlSearch, SearchConfig};
use phylomic::seqgen;
use phylomic::tree::build::{default_names, random_tree};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let patterns: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3_000);

    // Record a real workload.
    let mut rng = SmallRng::seed_from_u64(1);
    let names = default_names(15);
    let true_tree = random_tree(&names, 0.12, &mut rng).unwrap();
    let gtr = Gtr::new(GtrParams::jc69());
    let gamma = DiscreteGamma::new(0.9);
    let aln = seqgen::simulate_compressed(&true_tree, gtr.eigen(), &gamma, patterns, &mut rng);
    let start = random_tree(&names, 0.1, &mut SmallRng::seed_from_u64(3)).unwrap();
    println!("recording a real instrumented search over {patterns} patterns...");
    let out = run_replicated(
        &start,
        &aln,
        EngineConfig {
            kernel: KernelKind::Vector,
            alpha: 0.9,
            ..EngineConfig::default()
        },
        MlSearch::new(SearchConfig {
            max_rounds: 4,
            optimize_model: false,
            ..Default::default()
        }),
        2,
    );
    let trace =
        WorkloadTrace::from_run(out.kernel_stats, out.comm_stats.allreduces, patterns as u64);
    println!(
        "kernel invocations: {}, AllReduces: {}\n",
        trace.stats.total_calls(),
        trace.allreduces
    );

    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "patterns", "E5-2630", "E5-2680", "Phi x1", "Phi x2", "Phi x1 offload"
    );
    for &size in &TABLE3_SIZES[..6] {
        let scaled = trace.scaled_to(size);
        let mut row = Vec::new();
        for sys in SystemId::ALL {
            row.push(predict_time(&sys.config(), &scaled).total());
        }
        let mut offload_cfg = SystemId::Phi1.config();
        offload_cfg.mode = ExecMode::Offload;
        let off = predict_time(&offload_cfg, &scaled).total();
        println!(
            "{:>10} {:>13.1}s {:>13.1}s {:>13.1}s {:>13.1}s {:>13.1}s",
            size, row[0], row[1], row[2], row[3], off
        );
    }
    println!("\n(times are model predictions; see DESIGN.md for the substitution rationale)");
}
