//! Quickstart: parse an alignment, build a tree, compute its
//! likelihood, and optimize branch lengths.
//!
//! Run: `cargo run --release --example quickstart`

use phylomic::bio::{fasta, CompressedAlignment};
use phylomic::plf::{EngineConfig, KernelKind, LikelihoodEngine};
use phylomic::search::branch_opt::smooth_branches;
use phylomic::tree::newick;

const FASTA: &str = "\
>human
ACGTACGTTACGTAACGGTAACGTTAGCTAGCTAGCTGATCGATCGTAGCTACGTACGAT
>chimp
ACGTACGTTACGTAACGGTAACGTTAGCTAGCTAGCTGATCGATCGTAGCTACGTACGTT
>gorilla
ACGAACGTTACGTAACGGTAACGTTAGCTAGCAAGCTGATCGATCGTAGCTACGTACGTT
>orang
ACGAACGTTACGAAACGGTCACGTTAGCTAGCAAGCTGTTCGATCGTAGCTACCTACGTT
>gibbon
TCGAACGTTACGAAACGGTCACGTAAGCTAGCAAGCTGTTCGATCGAAGCTACCTACGTA
";

fn main() {
    // 1. Load sequence data and compress identical columns into
    //    weighted patterns (the unit the kernels work in).
    let alignment = fasta::parse_str(FASTA).expect("valid FASTA");
    let compressed = CompressedAlignment::from_alignment(&alignment);
    println!(
        "alignment: {} taxa x {} sites -> {} unique patterns",
        alignment.num_taxa(),
        alignment.num_sites(),
        compressed.num_patterns()
    );

    // 2. A starting topology (any Newick over the same taxon names).
    let mut tree =
        newick::parse("((human:0.05,chimp:0.05):0.02,(gorilla:0.06,orang:0.09):0.02,gibbon:0.12);")
            .expect("valid newick");

    // 3. A likelihood engine: GTR with empirical base frequencies,
    //    Gamma rate heterogeneity (4 categories), vectorized kernels.
    let mut engine = LikelihoodEngine::new(
        &tree,
        &compressed,
        EngineConfig {
            kernel: KernelKind::Vector,
            alpha: 0.8,
            ..EngineConfig::default()
        },
    );

    // 4. Log-likelihood with the virtual root on edge 0 — any edge
    //    gives the same value under a time-reversible model.
    let ll = engine.log_likelihood(&tree, 0);
    println!("initial log-likelihood: {ll:.4}");

    // 5. Newton-Raphson branch-length optimization over all edges
    //    (driven by the derivativeSum/derivativeCore kernels).
    let smoothed = smooth_branches(&mut engine, &mut tree, 1e-4, 16);
    println!(
        "after branch optimization: {:.4} ({} passes)",
        smoothed.log_likelihood, smoothed.passes
    );
    println!("optimized tree: {}", newick::to_newick(&tree));

    // 6. Kernel work performed, as the instrumentation sees it.
    let stats = engine.stats();
    for k in phylomic::plf::KernelId::ALL {
        let c = stats.get(k);
        println!(
            "  {:<16} {:>6} calls, {:>8} pattern-sites",
            k.paper_name(),
            c.calls,
            c.sites
        );
    }
}
