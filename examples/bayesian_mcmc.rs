//! Bayesian phylogenetics over the same PLF kernels: a
//! Metropolis-Hastings chain with NNI and branch-multiplier moves,
//! summarized as a majority-rule consensus with posterior supports.
//!
//! §I of the paper motivates the kernels with *both* inference
//! paradigms (RAxML-style ML and MrBayes-style Bayesian); this example
//! is the Bayesian workload.
//!
//! Run: `cargo run --release --example bayesian_mcmc [sites] [iterations]`

use phylomic::bio::CompressedAlignment;
use phylomic::models::{DiscreteGamma, Gtr, GtrParams};
use phylomic::plf::{EngineConfig, LikelihoodEngine};
use phylomic::search::mcmc::{run_mcmc, McmcConfig};
use phylomic::seqgen::simulate_alignment;
use phylomic::tree::build::{default_names, random_tree};
use phylomic::tree::consensus::majority_splits;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let sites: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let iterations: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8_000);

    // Simulated data with a known generating tree.
    let mut rng = SmallRng::seed_from_u64(1914);
    let names = default_names(8);
    let true_tree = random_tree(&names, 0.12, &mut rng).unwrap();
    let gtr = Gtr::new(GtrParams::jc69());
    let gamma = DiscreteGamma::new(2.0);
    let aln = simulate_alignment(&true_tree, gtr.eigen(), &gamma, sites, &mut rng);
    let ca = CompressedAlignment::from_alignment(&aln);
    println!(
        "data: {} taxa x {sites} sites; chain: {iterations} iterations",
        ca.num_taxa()
    );

    // Chain from a random starting tree.
    let mut tree = random_tree(&names, 0.1, &mut SmallRng::seed_from_u64(7)).unwrap();
    let mut engine = LikelihoodEngine::new(&tree, &ca, EngineConfig::default());
    let cfg = McmcConfig {
        iterations,
        burnin: iterations / 4,
        sample_every: 10,
        ..Default::default()
    };
    let result = run_mcmc(
        &mut engine,
        &mut tree,
        cfg,
        &mut SmallRng::seed_from_u64(55),
    );

    let br = result.branch_moves;
    let tp = result.topology_moves;
    println!(
        "acceptance: branch {}/{} ({:.1}%), topology {}/{} ({:.1}%)",
        br.0,
        br.1,
        100.0 * br.0 as f64 / br.1.max(1) as f64,
        tp.0,
        tp.1,
        100.0 * tp.0 as f64 / tp.1.max(1) as f64
    );
    let mean_ll: f64 = result.samples.iter().map(|s| s.log_likelihood).sum::<f64>()
        / result.samples.len().max(1) as f64;
    println!(
        "{} posterior samples, mean logL {:.3}",
        result.samples.len(),
        mean_ll
    );

    println!("\nmajority-rule consensus (posterior split supports):");
    for s in majority_splits(&result.split_frequencies, 0.5) {
        let in_truth = true_tree.splits().contains(&s.split);
        println!(
            "  {:>5.1}%  {{{}}}{}",
            100.0 * s.support,
            s.split.join(","),
            if in_truth { "  [true split]" } else { "" }
        );
    }
    let recovered = true_tree
        .splits()
        .iter()
        .filter(|s| result.split_support(s) > 0.5)
        .count();
    println!(
        "\n{recovered} of {} generating-tree splits have majority posterior support",
        true_tree.splits().len()
    );
}
