//! In-tree shim for the `proptest` crate (see `shims/README.md`).
//!
//! Provides the subset of proptest used by this workspace: the
//! [`proptest!`] macro, range/tuple/array/collection strategies,
//! [`Strategy::prop_map`], `prop_assert!`/`prop_assert_eq!`, and
//! [`ProptestConfig`]. Each test case draws its inputs from a
//! deterministic per-case RNG; there is no shrinking — a failing case
//! panics directly with the assertion message.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::ops::Range;

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::SmallRng;
    pub use rand::SeedableRng;

    /// The per-case generator: decorrelated from neighbouring cases by
    /// a SplitMix-style multiply.
    pub fn case_rng(case: u32) -> SmallRng {
        SmallRng::seed_from_u64(
            0x9E37_79B9_7F4A_7C15u64 ^ (case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
        )
    }
}

/// The RNG type strategies draw from.
pub type TestRng = rand::rngs::SmallRng;

/// Test-runner configuration (only the case count is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed (cloned) value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Anything usable as the size argument of [`vec`].
    pub trait IntoSize {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSize for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSize for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rand::Rng::random_range(rng, self.clone())
        }
    }

    impl IntoSize for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rand::Rng::random_range(rng, self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// A vector of values from `element` with a length from `size`
    /// (a fixed `usize` or a range).
    pub fn vec<S: Strategy, Z: IntoSize>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: IntoSize> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::{Strategy, TestRng};

    macro_rules! uniform {
        ($name:ident, $n:expr) => {
            /// Strategy for `[S::Value; N]` drawing every element from
            /// the same element strategy.
            pub fn $name<S: Strategy>(element: S) -> Uniform<S, $n> {
                Uniform { element }
            }
        };
    }

    /// Strategy returned by the `uniformN` constructors.
    pub struct Uniform<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for Uniform<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    uniform!(uniform2, 2);
    uniform!(uniform3, 3);
    uniform!(uniform4, 4);
    uniform!(uniform5, 5);
    uniform!(uniform6, 6);
    uniform!(uniform8, 8);
}

/// The common imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (panics with the generated
/// case on failure — no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::__rt::case_rng(__case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Defines property tests: each `fn name(binding in strategy, ...)`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 1f64..2.0), v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!(a < 10);
            prop_assert!((1.0..2.0).contains(&b));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn map_and_array(arr in crate::array::uniform6(0.5f64..1.0).prop_map(|a| a.map(|x| x * 2.0))) {
            for x in arr {
                prop_assert!((1.0..2.0).contains(&x));
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..4)
            .map(|c| rand::RngCore::next_u64(&mut crate::__rt::case_rng(c)))
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|c| rand::RngCore::next_u64(&mut crate::__rt::case_rng(c)))
            .collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }
}
