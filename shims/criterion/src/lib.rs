//! In-tree shim for the `criterion` crate (see `shims/README.md`).
//!
//! Implements the benchmarking surface this workspace uses:
//! [`criterion_group!`]/[`criterion_main!`], benchmark groups with
//! throughput annotations, and [`Bencher::iter`]/[`Bencher::iter_custom`].
//! Each benchmark runs a short warm-up followed by `sample_size` timed
//! samples and reports the mean wall time per iteration (plus
//! throughput when set) on stdout — no statistics machinery, HTML
//! reports, or baseline comparisons.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Lets the routine time itself (e.g. across spawned threads);
    /// `routine` receives the iteration count and returns the total
    /// elapsed time.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        self.elapsed = routine(self.iters);
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder-style,
    /// as used in `criterion_group!(config = ...)` blocks).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample_size must be at least 1");
        self.sample_size = n;
        self
    }
}

fn run_one(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Warm-up: one iteration to page everything in and to size the
    // timed batch so one sample is neither trivial nor endless.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(20);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
    }
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:.1} Melem/s", n as f64 / mean_ns * 1e3),
        Some(Throughput::Bytes(n)) => format!("  {:.1} MB/s", n as f64 / mean_ns * 1e3),
        None => String::new(),
    };
    println!("bench {name:<40} {mean_ns:>12.0} ns/iter{rate}");
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().id, self.sample_size, None, &mut f);
        self
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.id);
        run_one(&name, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.id);
        run_one(&name, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_counts() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 17,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 17);
        assert!(b.elapsed > Duration::ZERO || calls == 17);
    }

    #[test]
    fn group_api_runs() {
        let mut c = Criterion { sample_size: 2 };
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(4)).sample_size(2);
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        c.bench_function("top", |b| {
            b.iter_custom(|iters| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(0u64);
                }
                t.elapsed()
            })
        });
    }
}
