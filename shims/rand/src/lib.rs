//! In-tree shim for the `rand` crate (see `shims/README.md`).
//!
//! Implements the subset of the rand 0.9 API this workspace uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`], and the [`Rng`]
//! extension methods `random`, `random_range`, and `random_bool`.
//! The generator is xoshiro256++ seeded through SplitMix64 —
//! deterministic per seed, statistically solid for test workloads.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a value of `Self` from uniform random bits (the
/// `Standard`/`StandardUniform` distribution of the real crate).
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty random_range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let u = <$t as StandardSample>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty random_range");
                let u = <$t as StandardSample>::sample(rng);
                start + u * (end - start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of `T` (`f64` in [0,1), full integer range,
    /// fair `bool`).
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, the standard seeding scheme
            // for the xoshiro family.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let v = rng.random_range(0usize..6);
            seen[v] = true;
            let w = rng.random_range(0usize..=5);
            assert!(w <= 5);
            let x = rng.random_range(-3i64..3);
            assert!((-3..3).contains(&x));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all values reachable");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }
}
