//! Integration tests of the tracing subsystem across crates: spans
//! recorded by the search and fork-join layers, the metrics registry,
//! the JSONL trace schema, the Chrome exporter, and `TraceReport`.
//!
//! Spans and metrics are process-global, and the test harness runs
//! tests concurrently — assertions here check presence and lower
//! bounds, never exact global counts.

use phylomic::bio::CompressedAlignment;
use phylomic::micsim::TraceReport;
use phylomic::models::{DiscreteGamma, Gtr, GtrParams};
use phylomic::parallel::ForkJoinEvaluator;
use phylomic::plf::trace::{
    events_from_metrics, events_from_spans, events_from_stats, parse_jsonl, write_jsonl,
    TraceEvent, TRACE_VERSION,
};
use phylomic::plf::{metrics, span, EngineConfig, KernelKind};
use phylomic::search::{MlSearch, SearchConfig};
use phylomic::tree::build::{default_names, random_tree};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const WORKERS: usize = 3;

/// One small fork-join search, returning the full v2 event stream the
/// CLI would write with `--trace-out`.
fn traced_forkjoin_search() -> Vec<TraceEvent> {
    let mut rng = SmallRng::seed_from_u64(2024);
    let names = default_names(7);
    let true_tree = random_tree(&names, 0.12, &mut rng).unwrap();
    let g = Gtr::new(GtrParams::jc69());
    let gamma = DiscreteGamma::new(1.0);
    let aln = phylomic::seqgen::simulate_alignment(&true_tree, g.eigen(), &gamma, 800, &mut rng);
    let ca = CompressedAlignment::from_alignment(&aln);
    let mut tree = random_tree(&names, 0.1, &mut SmallRng::seed_from_u64(3)).unwrap();

    let mut fj = ForkJoinEvaluator::new(&tree, &ca, EngineConfig::default(), WORKERS);
    let search = MlSearch::new(SearchConfig {
        max_rounds: 1,
        optimize_model: false,
        ..Default::default()
    });
    search.run(&mut fj, &mut tree);

    let mut events = vec![TraceEvent::Meta {
        version: TRACE_VERSION,
        backend: KernelKind::Auto.effective().to_string(),
        site_repeats: phylomic::plf::SiteRepeats::Auto.effective().to_string(),
        spans_dropped: span::snapshot_all().iter().map(|t| t.dropped).sum(),
        roofline_mflops: 0,
        roofline_mbps: 0,
        transport: String::new(),
        wire_ops: 0,
        wire_ns: 0,
    }];
    for (i, stats) in fj.take_stats_per_worker().iter().enumerate() {
        events.extend(events_from_stats(&format!("worker{i}"), stats));
    }
    events.extend(events_from_stats("master", fj.master_stats()));
    events.extend(events_from_spans(&span::snapshot_all()));
    events.extend(events_from_metrics("process", &metrics::snapshot()));
    events
}

#[test]
fn traced_search_roundtrips_and_reports() {
    let events = traced_forkjoin_search();

    // JSONL round-trip preserves every event.
    let doc = write_jsonl(&events);
    assert_eq!(parse_jsonl(&doc).unwrap(), events);

    // Search-layer and fork-join-layer spans made it into the stream.
    let span_names: Vec<&str> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Span { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    for expected in [
        "search",
        "spr_round",
        "branch_opt",
        "newton_iter",
        "fork.wait",
    ] {
        assert!(
            span_names.contains(&expected),
            "span {expected:?} missing; saw {:?}",
            {
                let mut u: Vec<&&str> = span_names.iter().collect();
                u.sort();
                u.dedup();
                u
            }
        );
    }

    // Core and search metrics are present with sane values.
    let metric = |wanted: &str| {
        events.iter().find_map(|e| match e {
            TraceEvent::Metric { name, value, .. } if name == wanted => Some(*value),
            _ => None,
        })
    };
    assert!(metric("core.patterns.evaluated").unwrap_or(0) > 0);
    assert!(metric("spr.moves.evaluated").unwrap_or(0) > 0);
    assert!(metric("newton.iterations").unwrap_or(0) > 0);
    assert!(metric("barrier.waits").unwrap_or(0) > 0);
    assert_eq!(metric("forkjoin.workers"), Some(WORKERS as u64));

    // The report digests the stream: all kernels accounted, shares sum
    // to 1, one busy row per worker, and a usable cost table.
    let report = TraceReport::from_events(&events);
    assert_eq!(report.version, Some(TRACE_VERSION));
    assert!(!report.kernels.is_empty());
    let share_sum: f64 = report.kernels.iter().map(|k| k.share).sum();
    assert!((share_sum - 1.0).abs() < 1e-9, "{share_sum}");
    assert_eq!(report.workers.len(), WORKERS);
    assert!(report.imbalance.unwrap() >= 1.0);
    let regions = report.regions.expect("fork-join trace has regions");
    assert!(regions.count > 0);
    assert!((0.0..=1.0).contains(&regions.overhead_fraction));
    assert!(report.costs.is_some());
    let rendered = report.render();
    assert!(rendered.contains("kernel time shares"), "{rendered}");

    // v5 op events carry modeled roofline costs into the report.
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::Op { flops, .. } if *flops > 0)));
    assert!(!report.ops.is_empty());
    assert!(rendered.contains("op roofline"), "{rendered}");
    assert!(report.render_json().contains(r#""ops":[{"op":"#));
}

#[test]
fn chrome_export_has_one_track_per_worker() {
    // Run a search first so worker tracks exist (tests share the
    // process-global recorder; ours only need to be present).
    let _ = traced_forkjoin_search();
    let tracks = span::snapshot_all();
    let json = span::chrome_trace_json(&tracks);
    assert!(json.starts_with(r#"{"traceEvents":["#));
    for i in 0..WORKERS {
        assert!(
            json.contains(&format!(r#""name":"worker{i}""#)),
            "worker{i} track missing"
        );
    }
    // Every B on a tid is eventually matched by an E (the exporter
    // closes leftovers), so per-tid counts balance.
    let count = |ph: &str| json.matches(&format!(r#""ph":"{ph}""#)).count();
    assert_eq!(count("B"), count("E"));
    assert!(count("M") >= WORKERS);
}
