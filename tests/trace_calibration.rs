//! End-to-end measured-timing loop: an instrumented fork-join run →
//! per-worker kernel/region trace events → JSONL (the `--trace-out`
//! format) → `micsim` measured-cost calibration fit. This is the full
//! pipeline the `phylomic search --trace-out` flag enables.

use phylomic::micsim::calibration::MeasuredHostCosts;
use phylomic::micsim::WorkloadTrace;
use phylomic::models::{DiscreteGamma, Gtr, GtrParams};
use phylomic::parallel::ForkJoinEvaluator;
use phylomic::plf::trace::{events_from_stats, parse_jsonl, write_jsonl, TraceEvent};
use phylomic::plf::{EngineConfig, KernelId};
use phylomic::search::Evaluator;
use phylomic::tree::build::{default_names, random_tree};
use phylomic::tree::Tree;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn dataset() -> (Tree, phylomic::bio::CompressedAlignment) {
    let mut rng = SmallRng::seed_from_u64(77);
    let names = default_names(8);
    let tree = random_tree(&names, 0.15, &mut rng).unwrap();
    let g = Gtr::new(GtrParams::jc69());
    let gamma = DiscreteGamma::new(0.9);
    let aln = phylomic::seqgen::simulate_alignment(&tree, g.eigen(), &gamma, 1200, &mut rng);
    (
        tree,
        phylomic::bio::CompressedAlignment::from_alignment(&aln),
    )
}

/// Runs an instrumented fork-join workload and exports it exactly the
/// way `phylomic search --trace-out` does: one kernel-event block per
/// worker plus the master's region block.
fn record_forkjoin_trace(workers: usize) -> Vec<TraceEvent> {
    let (tree, aln) = dataset();
    let mut fj = ForkJoinEvaluator::new(&tree, &aln, EngineConfig::default(), workers);
    for e in 0..tree.num_edges().min(6) {
        fj.log_likelihood(&tree, e);
    }
    fj.prepare_branch(&tree, 1);
    fj.branch_derivatives(tree.length(1));
    let mut events = Vec::new();
    for (i, stats) in fj.take_stats_per_worker().iter().enumerate() {
        events.extend(events_from_stats(&format!("worker{i}"), stats));
    }
    events.extend(events_from_stats("master", fj.master_stats()));
    events
}

#[test]
fn forkjoin_trace_roundtrips_through_jsonl() {
    let events = record_forkjoin_trace(3);
    // Every worker contributed kernel events; the master contributed
    // a region block with one region per dispatched job.
    let kernel_sources: std::collections::BTreeSet<_> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Kernel { source, .. } => Some(source.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(
        kernel_sources.into_iter().collect::<Vec<_>>(),
        vec!["worker0", "worker1", "worker2"]
    );
    let regions: Vec<_> = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Region { .. }))
        .collect();
    assert_eq!(regions.len(), 1);
    match regions[0] {
        // 6 evals + prepare + derivatives + take_stats = 9 regions.
        TraceEvent::Region { source, count, .. } => {
            assert_eq!(source, "master");
            assert_eq!(*count, 9);
        }
        _ => unreachable!(),
    }
    // The JSONL writer/parser round-trips the whole document.
    let doc = write_jsonl(&events);
    assert_eq!(parse_jsonl(&doc).unwrap(), events);
}

#[test]
fn measured_calibration_fits_real_forkjoin_timings() {
    // Mix worker counts so the fit sees several distinct
    // sites-per-call widths per kernel.
    let mut events = record_forkjoin_trace(1);
    events.extend(record_forkjoin_trace(2));
    events.extend(record_forkjoin_trace(5));
    let doc = write_jsonl(&events);

    let costs = MeasuredHostCosts::from_jsonl(&doc).expect("trace must calibrate");
    for k in [KernelId::Newview, KernelId::Evaluate] {
        let fit = costs.fit(k);
        assert!(fit.samples >= 3, "{k:?}: {} samples", fit.samples);
        assert!(
            fit.per_call_ns >= 0.0 && fit.per_site_ns >= 0.0,
            "{k:?}: negative cost"
        );
        assert!(
            fit.per_call_ns > 0.0 || fit.per_site_ns > 0.0,
            "{k:?}: fit degenerate — real kernels cost time"
        );
        // Sanity: predicted time of the observed workload is within
        // 100x of the observed total (the fit interpolates noisy
        // samples; it must stay on the right order of magnitude).
        let (mut calls, mut sites, mut observed) = (0u64, 0u64, 0u64);
        for e in &events {
            if let TraceEvent::Kernel {
                kernel,
                calls: c,
                sites: s,
                total_ns,
                ..
            } = e
            {
                if *kernel == k {
                    calls += c;
                    sites += s;
                    observed += total_ns;
                }
            }
        }
        let predicted = fit.predict_ns(calls, sites);
        assert!(
            predicted > observed as f64 / 100.0 && predicted < observed as f64 * 100.0,
            "{k:?}: predicted {predicted} vs observed {observed}"
        );
    }
    // Region latencies fed the synchronization-cost side.
    assert!(costs.region_overhead_s() > 0.0);

    // And the same events reconstruct a WorkloadTrace for the
    // analytical model path.
    let trace = WorkloadTrace::from_trace_events(&events, 0, 1200);
    assert!(trace.stats.total_calls() > 0);
    assert!(costs.predict_run_s(&trace) > 0.0);
}
