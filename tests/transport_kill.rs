//! Process-kill matrix for the socket transport: SIGKILL one rank at
//! each of the collective sites the in-thread fault matrix exercises,
//! and require the supervisor to (a) fail structured / degrade within a
//! watchdog deadline, (b) reproduce the clean lower-rank run exactly,
//! and (c) leave no orphan child processes behind.
//!
//! Everything here drives the real `phylomic` binary over real Unix
//! sockets — the kill is a genuine `SIGKILL`, delivered by the dying
//! rank to itself at the scripted AllReduce, so the hub sees the same
//! raw EOF a scheduler OOM-kill would produce.
#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::mpsc;
use std::time::Duration;

/// `(ranks, killed_rank, allreduce_ordinal)` — the same four sites the
/// in-thread `FaultPlan` matrix kills at, now as real processes.
const KILL_MATRIX: [(usize, usize, u64); 4] = [(2, 1, 1), (3, 2, 2), (3, 1, 7), (4, 3, 25)];

fn bin() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_phylomic"));
    // Shrink dead-peer detection so a hung collective fails the test
    // by deadline, not by CI timeout.
    c.env("PHYLOMIC_WIRE_TIMEOUT_MS", "30000");
    c.env("PHYLOMIC_TRANSPORT_VERBOSE", "1");
    c
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("phylomic-kill-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `f` on a helper thread and panics if it exceeds `secs`: a
/// transport bug that deadlocks a collective must fail loudly here.
fn within_deadline<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .unwrap_or_else(|_| panic!("deadline of {secs}s exceeded — transport hang"))
}

fn simulate(dir: &Path) -> PathBuf {
    let phy = dir.join("sim.phy");
    let out = bin()
        .args([
            "simulate",
            "--taxa",
            "7",
            "--sites",
            "240",
            "--seed",
            "11",
            "--out",
            phy.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    phy
}

struct RunResult {
    log_likelihood: f64,
    tree: String,
    /// Child pids announced by the supervisor ("spawned rank R pid P").
    child_pids: Vec<u32>,
}

/// One `phylomic search --transport uds` invocation; `fault` is the
/// `--inject-fault` spec, if any.
fn search_uds(dir: &Path, phy: &Path, ranks: usize, fault: Option<&str>, tag: &str) -> RunResult {
    let tree_out = dir.join(format!("{tag}.nwk"));
    let mut cmd = bin();
    cmd.args([
        "search",
        "--alignment",
        phy.to_str().unwrap(),
        "--rounds",
        "2",
        "--seed",
        "5",
        "--no-model-opt",
        "--scheme",
        "replicated",
        "--threads",
        &ranks.to_string(),
        "--transport",
        "uds",
        "--out",
        tree_out.to_str().unwrap(),
    ]);
    if let Some(spec) = fault {
        cmd.args(["--degrade", "--inject-fault", spec]);
    }
    let out = cmd.output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "{tag}: search failed\nstdout: {stdout}\nstderr: {stderr}"
    );
    let log_likelihood: f64 = stdout
        .lines()
        .find_map(|l| l.strip_prefix("logL "))
        .unwrap_or_else(|| panic!("{tag}: no logL line in {stdout:?}"))
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap();
    let child_pids = stdout
        .lines()
        .filter_map(|l| {
            l.rsplit_once(" pid ")
                .map(|(_, p)| p.trim().parse().unwrap())
        })
        .collect();
    RunResult {
        log_likelihood,
        tree: std::fs::read_to_string(&tree_out).unwrap(),
        child_pids,
    }
}

/// True while `pid` still names a live `phylomic _rank` process (pid
/// reuse by an unrelated process must not fail the orphan check).
fn rank_process_alive(pid: u32) -> bool {
    match std::fs::read(format!("/proc/{pid}/cmdline")) {
        Ok(bytes) => {
            let cmdline = String::from_utf8_lossy(&bytes);
            cmdline.contains("phylomic") && cmdline.contains("_rank")
        }
        Err(_) => false,
    }
}

#[test]
fn sigkill_matrix_degrades_to_the_clean_lower_rank_result() {
    let dir = tmpdir("matrix");
    let phy = simulate(&dir);

    // Clean baselines at every degraded rank count the matrix lands on.
    let mut baselines = std::collections::HashMap::new();
    for survivors in [1usize, 2, 3] {
        let phy = phy.clone();
        let dir = dir.clone();
        let r = within_deadline(240, move || {
            search_uds(&dir, &phy, survivors, None, &format!("clean{survivors}"))
        });
        baselines.insert(survivors, r);
    }

    let mut all_pids = Vec::new();
    for (ranks, victim, allreduce) in KILL_MATRIX {
        let spec = format!("rank={victim},kill9={allreduce}");
        let tag = format!("kill-r{ranks}-v{victim}-a{allreduce}");
        let killed = {
            let (phy, dir, spec, tag) = (phy.clone(), dir.clone(), spec.clone(), tag.clone());
            within_deadline(240, move || {
                search_uds(&dir, &phy, ranks, Some(&spec), &tag)
            })
        };
        let clean = &baselines[&(ranks - 1)];
        assert!(
            (killed.log_likelihood - clean.log_likelihood).abs() <= 1e-9,
            "{tag}: degraded logL {} != clean {}-rank logL {}",
            killed.log_likelihood,
            ranks - 1,
            clean.log_likelihood
        );
        assert_eq!(
            killed.tree,
            clean.tree,
            "{tag}: degraded tree differs from the clean {}-rank tree",
            ranks - 1
        );
        all_pids.extend(killed.child_pids);
    }

    // No orphans: every child the supervisors announced — killed,
    // respawned, or cleanly exited — must be gone now that the
    // supervisor processes have returned.
    std::thread::sleep(Duration::from_millis(100));
    for pid in all_pids {
        assert!(
            !rank_process_alive(pid),
            "rank process {pid} survived its supervisor"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkill_without_degrade_fails_structured_not_hanging() {
    let dir = tmpdir("nodegrade");
    let phy = simulate(&dir);
    let tree_out = dir.join("t.nwk");

    let out = within_deadline(240, move || {
        bin()
            .args([
                "search",
                "--alignment",
                phy.to_str().unwrap(),
                "--rounds",
                "2",
                "--seed",
                "5",
                "--no-model-opt",
                "--scheme",
                "replicated",
                "--threads",
                "3",
                "--transport",
                "uds",
                "--inject-fault",
                "rank=1,kill9=2",
                "--out",
                tree_out.to_str().unwrap(),
            ])
            .output()
            .unwrap()
    });
    assert!(
        !out.status.success(),
        "a SIGKILL'd rank without --degrade must fail the run"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("rank 1"),
        "error must name the dead rank: {stderr}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
