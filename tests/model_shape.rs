//! Acceptance tests for the paper's evaluation shapes, driven by a
//! REAL instrumented run (not the synthetic trace): the full
//! reproduction pipeline exactly as the benchmark binaries execute it,
//! at a reduced recording size for test speed.

use micsim::energy::fig5_energy_savings;
use micsim::model::{predict_time, ExecMode};
use micsim::systems::{crossover_patterns, fig4_dual_mic_scaling, table3, SystemId};
use micsim::WorkloadTrace;
use std::sync::OnceLock;

fn real_trace() -> &'static WorkloadTrace {
    static TRACE: OnceLock<WorkloadTrace> = OnceLock::new();
    TRACE.get_or_init(|| phylo_bench::record_trace(1_500, 2, 7_777))
}

fn speedup_of(row: &[(SystemId, micsim::systems::Table3Cell)], sys: SystemId) -> f64 {
    row.iter().find(|(s, _)| *s == sys).unwrap().1.speedup
}

#[test]
fn table3_shape_holds_on_real_trace() {
    let grid = table3(real_trace());
    // 10K row: CPU baseline clearly beats both MIC configurations.
    let (_, first) = &grid[0];
    assert!(speedup_of(first, SystemId::Phi1) < 0.9);
    assert!(speedup_of(first, SystemId::Phi2) < 0.9);
    // 4000K row: plateaus in the paper bands.
    let (_, last) = &grid[grid.len() - 1];
    let p1 = speedup_of(last, SystemId::Phi1);
    let p2 = speedup_of(last, SystemId::Phi2);
    assert!((1.8..2.2).contains(&p1), "1-MIC plateau {p1}");
    assert!((3.3..4.1).contains(&p2), "2-MIC plateau {p2}");
    // E5-2630 stays a bit below the baseline everywhere.
    for (size, row) in &grid {
        let s = speedup_of(row, SystemId::E5_2630);
        assert!((0.6..1.0).contains(&s), "size {size}: E5-2630 {s}");
    }
    // Monotone growth of the Phi1 speedup.
    let mut prev = 0.0;
    for (_, row) in &grid {
        let s = speedup_of(row, SystemId::Phi1);
        assert!(s >= prev - 1e-9);
        prev = s;
    }
}

#[test]
fn crossover_in_paper_band_on_real_trace() {
    let x = crossover_patterns(real_trace(), SystemId::Phi1).expect("crossover exists");
    assert!(
        (50_000.0..250_000.0).contains(&x),
        "crossover at {x} patterns, paper ~100K"
    );
}

#[test]
fn fig4_shape_holds_on_real_trace() {
    let series = fig4_dual_mic_scaling(real_trace());
    for w in series.windows(2) {
        assert!(w[1].1 >= w[0].1 - 1e-9, "fig4 not monotone: {series:?}");
    }
    let last = series.last().unwrap().1;
    assert!(
        (1.6..2.0).contains(&last),
        "dual-MIC ratio at 4000K: {last}"
    );
    assert!(series[0].1 < 1.2, "dual-MIC ratio at 10K: {}", series[0].1);
}

#[test]
fn fig5_shape_holds_on_real_trace() {
    let series = fig5_energy_savings(real_trace());
    let get = |row: &Vec<(SystemId, f64)>, id| row.iter().find(|(s, _)| *s == id).unwrap().1;
    let (_, last) = series.last().unwrap();
    let phi1 = get(last, SystemId::Phi1);
    assert!((2.0..2.7).contains(&phi1), "Phi1 energy savings {phi1}");
    for (size, row) in &series {
        assert!(
            get(row, SystemId::Phi2) <= get(row, SystemId::Phi1) + 1e-9,
            "second card must not improve energy efficiency (size {size})"
        );
        if *size >= 500_000 {
            assert!(
                get(row, SystemId::Phi2) > get(row, SystemId::E5_2680),
                "size {size}"
            );
        }
    }
}

#[test]
fn offload_slowdown_holds_on_real_trace() {
    // §V-C: the native version achieved >2x over the offload prototype
    // (measured on small RAxML-Light runs; we check at 50K patterns).
    let scaled = real_trace().scaled_to(50_000);
    let native = predict_time(&SystemId::Phi1.config(), &scaled).total();
    let mut cfg = SystemId::Phi1.config();
    cfg.mode = ExecMode::Offload;
    let offload = predict_time(&cfg, &scaled).total();
    assert!(
        offload / native > 1.8,
        "offload {offload} native {native} ratio {}",
        offload / native
    );
}

#[test]
fn per_kernel_speedups_hold() {
    use micsim::model::kernel_speedup;
    use micsim::platform::{XEON_E5_2680_2S, XEON_PHI_5110P_1S};
    use plf_core::KernelId;
    // Figure 3: derivativeSum ≈2.8x, others ≤2x, all ≥1.9x-ish.
    let s = |k| kernel_speedup(&XEON_PHI_5110P_1S, &XEON_E5_2680_2S, k);
    assert!((2.5..3.1).contains(&s(KernelId::DerivativeSum)));
    for k in [
        KernelId::Newview,
        KernelId::Evaluate,
        KernelId::DerivativeCore,
    ] {
        assert!((1.7..2.2).contains(&s(k)), "{k:?}: {}", s(k));
    }
}
