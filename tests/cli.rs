//! End-to-end tests of the `phylomic` command-line binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_phylomic"))
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("phylomic-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn simulate_evaluate_search_roundtrip() {
    let dir = tmpdir();
    let phy = dir.join("sim.phy");

    // simulate
    let out = bin()
        .args([
            "simulate",
            "--taxa",
            "8",
            "--sites",
            "400",
            "--seed",
            "5",
            "--out",
            phy.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(phy.exists());
    let true_tree = format!("{}.tree", phy.display());
    assert!(std::path::Path::new(&true_tree).exists());

    // evaluate against the true tree
    let out = bin()
        .args([
            "evaluate",
            "--alignment",
            phy.to_str().unwrap(),
            "--tree",
            &true_tree,
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("logL -"), "unexpected output: {text}");

    // search with a parsimony start and checkpoint
    let ckp = dir.join("run.ckp");
    let best = dir.join("best.nwk");
    let out = bin()
        .args([
            "search",
            "--alignment",
            phy.to_str().unwrap(),
            "--start",
            "parsimony",
            "--rounds",
            "2",
            "--no-model-opt",
            "--checkpoint",
            ckp.to_str().unwrap(),
            "--out",
            best.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(ckp.exists(), "checkpoint written");
    assert!(best.exists(), "best tree written");
    // The written tree parses and covers the right taxa.
    let newick = std::fs::read_to_string(&best).unwrap();
    let tree = phylomic::tree::newick::parse(newick.trim()).unwrap();
    assert_eq!(tree.num_taxa(), 8);

    // Resume from the checkpoint must succeed and not regress.
    let first: f64 = String::from_utf8_lossy(&out.stdout)
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let out = bin()
        .args([
            "search",
            "--alignment",
            phy.to_str().unwrap(),
            "--rounds",
            "4",
            "--no-model-opt",
            "--checkpoint",
            ckp.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let resumed: f64 = String::from_utf8_lossy(&out.stdout)
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        resumed >= first - 1e-6,
        "resume regressed: {resumed} < {first}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn traced_search_trace_report_and_chrome_export() {
    let dir = tmpdir().join("trace");
    std::fs::create_dir_all(&dir).unwrap();
    let phy = dir.join("t.phy");
    let out = bin()
        .args([
            "simulate",
            "--taxa",
            "7",
            "--sites",
            "300",
            "--seed",
            "11",
            "--out",
            phy.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    // Traced fork-join search writing JSONL + Chrome exports.
    let trace = dir.join("run.jsonl");
    let chrome = dir.join("run.chrome.json");
    let out = bin()
        .args([
            "search",
            "--alignment",
            phy.to_str().unwrap(),
            "--scheme",
            "forkjoin",
            "--threads",
            "2",
            "--rounds",
            "1",
            "--no-model-opt",
            "--trace-out",
            trace.to_str().unwrap(),
            "--chrome-out",
            chrome.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Atomic write: no temp files left behind.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");

    // The JSONL trace leads with the schema marker and parses.
    let doc = std::fs::read_to_string(&trace).unwrap();
    assert!(doc.starts_with(r#"{"type":"meta","#), "{}", &doc[..60]);
    let events = phylomic::plf::trace::parse_jsonl(&doc).unwrap();
    assert!(events
        .iter()
        .any(|e| matches!(e, phylomic::plf::trace::TraceEvent::Span { .. })));
    assert!(events.iter().any(
        |e| matches!(e, phylomic::plf::trace::TraceEvent::Metric { name, .. }
            if name == "forkjoin.regions")
    ));

    // The Chrome export names one track per worker.
    let chrome_doc = std::fs::read_to_string(&chrome).unwrap();
    assert!(chrome_doc.starts_with(r#"{"traceEvents":["#));
    for label in ["master", "worker0", "worker1"] {
        assert!(
            chrome_doc.contains(&format!(r#""name":"{label}""#)),
            "{label}"
        );
    }

    // trace-report digests the file.
    let out = bin()
        .args(["trace-report", "--trace", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "kernel time shares",
        "fork/join regions",
        "imbalance (slowest/mean)",
        "calibration cost table",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }

    // Garbage input fails cleanly.
    let bad = dir.join("bad.jsonl");
    std::fs::write(&bad, "not json\n").unwrap();
    let out = bin()
        .args(["trace-report", "--trace", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replicated_search_checkpoints_and_resumes() {
    let dir = tmpdir().join("repl");
    std::fs::create_dir_all(&dir).unwrap();
    let phy = dir.join("r.phy");
    let out = bin()
        .args([
            "simulate",
            "--taxa",
            "8",
            "--sites",
            "400",
            "--seed",
            "21",
            "--out",
            phy.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    // Replicated search with a checkpoint — the restriction that
    // checkpointing only worked with the serial scheme is gone.
    let ckp = dir.join("repl.ckp");
    let out = bin()
        .args([
            "search",
            "--alignment",
            phy.to_str().unwrap(),
            "--scheme",
            "replicated",
            "--threads",
            "3",
            "--rounds",
            "1",
            "--no-model-opt",
            "--checkpoint",
            ckp.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(ckp.exists(), "rank 0 must write the checkpoint");
    let first: f64 = String::from_utf8_lossy(&out.stdout)
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();

    // Resume at a different rank count: snapshots are rank-agnostic.
    let out = bin()
        .args([
            "search",
            "--alignment",
            phy.to_str().unwrap(),
            "--scheme",
            "replicated",
            "--threads",
            "2",
            "--rounds",
            "3",
            "--no-model-opt",
            "--checkpoint",
            ckp.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let resumed: f64 = String::from_utf8_lossy(&out.stdout)
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        resumed >= first - 1e-6,
        "resume regressed: {resumed} < {first}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_rank_death_fails_structured_and_degrade_survives() {
    let dir = tmpdir().join("inject");
    std::fs::create_dir_all(&dir).unwrap();
    let phy = dir.join("i.phy");
    let out = bin()
        .args([
            "simulate",
            "--taxa",
            "8",
            "--sites",
            "300",
            "--seed",
            "33",
            "--out",
            phy.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let search_args = |extra: &[&str]| {
        let mut v = vec![
            "search".to_string(),
            "--alignment".into(),
            phy.to_str().unwrap().into(),
            "--scheme".into(),
            "replicated".into(),
            "--threads".into(),
            "3".into(),
            "--rounds".into(),
            "2".into(),
            "--no-model-opt".into(),
        ];
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    };

    // Scripted death without --degrade: a clean, structured failure —
    // nonzero exit, the dead rank named on stderr, no hang (the test
    // harness itself would time out on a deadlock).
    let out = bin()
        .args(search_args(&["--inject-fault", "rank=1,allreduce=5"]))
        .output()
        .unwrap();
    assert!(!out.status.success(), "rank death must fail the run");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("rank 1"), "stderr must name the rank: {err}");

    // Same fault with --degrade: the run re-splits over the survivors
    // and completes successfully.
    let out = bin()
        .args(search_args(&[
            "--inject-fault",
            "rank=1,allreduce=5",
            "--degrade",
        ]))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "--degrade must survive a single rank death: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let ll: f64 = text.split_whitespace().nth(1).unwrap().parse().unwrap();
    assert!(ll.is_finite() && ll < 0.0, "bad logL in: {text}");

    // A malformed injection spec is a usage error.
    let out = bin()
        .args(search_args(&["--inject-fault", "rank=two,allreduce=x"]))
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--inject-fault"));

    // Injection is wired into fork-join too: a scripted worker panic
    // exits structurally instead of aborting or hanging the pool.
    let out = bin()
        .args([
            "search",
            "--alignment",
            phy.to_str().unwrap(),
            "--scheme",
            "forkjoin",
            "--threads",
            "3",
            "--rounds",
            "1",
            "--no-model-opt",
            "--inject-fault",
            "rank=1,region=2",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("fork-join region failed"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Under the serial scheme the flag is meaningless — reject it
    // rather than silently ignoring the requested fault.
    let out = bin()
        .args([
            "search",
            "--alignment",
            phy.to_str().unwrap(),
            "--inject-fault",
            "rank=1,allreduce=1",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--scheme"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_fails_cleanly() {
    // Unknown subcommand.
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    // Missing required option.
    let out = bin()
        .args(["evaluate", "--tree", "x.nwk"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--alignment"), "{err}");
    // Nonexistent file.
    let out = bin()
        .args([
            "evaluate",
            "--alignment",
            "/nonexistent.phy",
            "--tree",
            "/nonexistent.nwk",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // No args at all prints usage.
    let out = bin().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn bootstrap_produces_annotated_tree() {
    let dir = tmpdir();
    let phy = dir.join("bs.phy");
    bin()
        .args([
            "simulate",
            "--taxa",
            "6",
            "--sites",
            "300",
            "--seed",
            "9",
            "--out",
            phy.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let out_file = dir.join("annotated.nwk");
    let out = bin()
        .args([
            "bootstrap",
            "--alignment",
            phy.to_str().unwrap(),
            "--replicates",
            "3",
            "--rounds",
            "1",
            "--out",
            out_file.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let annotated = std::fs::read_to_string(&out_file).unwrap();
    let tree = phylomic::tree::newick::parse(annotated.trim()).unwrap();
    assert_eq!(tree.num_taxa(), 6);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn site_repeats_flag_parses_and_matches_off() {
    let dir = tmpdir().join("site-repeats");
    std::fs::create_dir_all(&dir).unwrap();
    let phy = dir.join("sr.phy");
    let out = bin()
        .args([
            "simulate",
            "--taxa",
            "8",
            "--sites",
            "600",
            "--seed",
            "9",
            "--out",
            phy.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let tree = format!("{}.tree", phy.display());

    let eval = |mode: &str| -> (bool, String, String) {
        let out = bin()
            .args([
                "evaluate",
                "--alignment",
                phy.to_str().unwrap(),
                "--tree",
                &tree,
                "--site-repeats",
                mode,
            ])
            .output()
            .unwrap();
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    let (ok_on, out_on, err_on) = eval("on");
    assert!(ok_on, "{err_on}");
    let (ok_off, out_off, _) = eval("off");
    assert!(ok_off);
    // Same logL line either way: compression is bit-identical.
    assert_eq!(out_on, out_off, "on vs off output differs");

    // An unknown mode is a structured CLI error, not a panic.
    let (ok_bad, _, err_bad) = eval("sometimes");
    assert!(!ok_bad);
    assert!(err_bad.contains("--site-repeats"), "{err_bad}");

    // The resolved mode lands in the trace meta event.
    let trace = dir.join("sr.jsonl");
    let out = bin()
        .args([
            "evaluate",
            "--alignment",
            phy.to_str().unwrap(),
            "--tree",
            &tree,
            "--site-repeats",
            "on",
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let first_line = std::fs::read_to_string(&trace)
        .unwrap()
        .lines()
        .next()
        .unwrap()
        .to_string();
    assert!(
        first_line.contains(r#""site_repeats":"on""#),
        "{first_line}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_trend_gate_honors_waivers_relative_to_dir() {
    // A regressed cell that is waived must pass the gate even when the
    // process cwd is NOT the repo: waivers resolve against --dir.
    let dir = tmpdir().join("trend-dir");
    std::fs::create_dir_all(dir.join("crates/xtask")).unwrap();
    let bench = |ns: f64| {
        format!(
            concat!(
                "{{\"schema\": \"plf-microbench/1\", \"results\": [\n",
                "  {{\"kernel\": \"newview_ii\", \"patterns\": 1000, ",
                "\"ns_per_site\": {{\"scalar\": {ns}}}}}\n",
                "]}}\n"
            ),
            ns = ns
        )
    };
    std::fs::write(dir.join("BENCH_1.json"), bench(10.0)).unwrap();
    std::fs::write(dir.join("BENCH_2.json"), bench(15.0)).unwrap();

    // Without a waiver file the 1.5x regression fails the gate.
    let out = bin()
        .args(["bench-trend", "--dir", dir.to_str().unwrap(), "--gate"])
        .current_dir(std::env::temp_dir())
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("FAIL newview_ii"));

    std::fs::write(
        dir.join("crates/xtask/trend_waivers.txt"),
        "newview_ii scalar 1000 # synthetic fixture\n",
    )
    .unwrap();
    let out = bin()
        .args(["bench-trend", "--dir", dir.to_str().unwrap(), "--gate"])
        .current_dir(std::env::temp_dir())
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stdout: {stdout} stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("WAIVED newview_ii"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}
