//! Failure injection: malformed inputs, degenerate parameters, and
//! pathological data must fail loudly or degrade gracefully — never
//! return silently wrong likelihoods.

use phylomic::bio::{fasta, phylip, Alignment, CompressedAlignment, Sequence};
use phylomic::models::{DiscreteGamma, Gtr, GtrParams};
use phylomic::parallel::{run_replicated_ft, CommError, FaultPlan, FtConfig, ReplicatedError};
use phylomic::plf::{EngineConfig, KernelKind, LikelihoodEngine};
use phylomic::search::checkpoint::Checkpoint;
use phylomic::search::{MlSearch, SearchConfig};
use phylomic::tree::{newick, tree::BL_MAX, tree::BL_MIN, Tree};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn toy_aln(width: usize) -> CompressedAlignment {
    let mk = |name: &str, pat: &str| {
        Sequence::from_str_named(name, &pat.repeat(width / pat.len() + 1)[..width]).unwrap()
    };
    CompressedAlignment::from_alignment(
        &Alignment::new(vec![
            mk("a", "ACGT"),
            mk("b", "ACGA"),
            mk("c", "TCGT"),
            mk("d", "ACTT"),
        ])
        .unwrap(),
    )
}

#[test]
fn malformed_files_are_rejected_not_mangled() {
    // FASTA.
    for bad in [
        "no header at all\nACGT\n",
        ">x\nACGZ\n>y\nACGT\n", // invalid character
        ">x\n>y\nAC\n",         // empty record
    ] {
        assert!(fasta::parse_str(bad).is_err(), "accepted: {bad:?}");
    }
    // PHYLIP.
    for bad in [
        "",
        "notanumber 4\na ACGT\n",
        "2 4\na ACGT\n",       // missing taxon
        "1 4\na ACGTACGT\n",   // overlong
        "2 4\na ACGT\nb AC\n", // truncated
    ] {
        assert!(phylip::parse_str(bad).is_err(), "accepted: {bad:?}");
    }
    // Newick.
    for bad in [
        "(a:0.1,b:0.2,c:0.3)",        // missing semicolon
        "(a:0.1,b:0.2);",             // two taxa
        "((a,b),(c,d),(e,f),(g,h));", // top-level multifurcation
        "(a:xyz,b:0.1,c:0.1);",       // bad number
        "(a:0.1,a:0.1,b:0.1);",       // duplicate names
    ] {
        assert!(newick::parse(bad).is_err(), "accepted: {bad:?}");
    }
}

#[test]
fn branch_length_extremes_keep_likelihood_finite() {
    let aln = toy_aln(64);
    let mut tree = newick::parse("(a:0.1,b:0.1,(c:0.1,d:0.1):0.1);").unwrap();
    for kernel in [KernelKind::Scalar, KernelKind::Vector] {
        let mut engine = LikelihoodEngine::new(
            &tree,
            &aln,
            EngineConfig {
                kernel,
                alpha: 1.0,
                ..EngineConfig::default()
            },
        );
        for e in 0..tree.num_edges() {
            tree.set_length(e, BL_MIN).unwrap();
        }
        let ll_min = engine.log_likelihood(&tree, 0);
        assert!(ll_min.is_finite(), "{kernel:?}: min-branch logL {ll_min}");
        for e in 0..tree.num_edges() {
            tree.set_length(e, BL_MAX).unwrap();
        }
        let ll_max = engine.log_likelihood(&tree, 0);
        assert!(ll_max.is_finite(), "{kernel:?}: max-branch logL {ll_max}");
        // Saturated branches: every site's likelihood approaches the
        // product of stationary frequencies; still a valid number.
        assert!(ll_max < 0.0);
    }
}

#[test]
fn all_gap_alignment_has_zero_loglikelihood() {
    let aln = CompressedAlignment::from_alignment(
        &Alignment::new(vec![
            Sequence::from_str_named("a", "----").unwrap(),
            Sequence::from_str_named("b", "NNNN").unwrap(),
            Sequence::from_str_named("c", "????").unwrap(),
        ])
        .unwrap(),
    );
    let tree = newick::parse("(a:0.3,b:0.4,c:0.5);").unwrap();
    let mut engine = LikelihoodEngine::new(&tree, &aln, EngineConfig::default());
    let ll = engine.log_likelihood(&tree, 0);
    // P(anything) summed over all states = 1 per site → logL = 0.
    assert!(ll.abs() < 1e-9, "logL = {ll}");
}

#[test]
fn extreme_alpha_values_work_at_bounds_and_panic_beyond() {
    let aln = toy_aln(32);
    let tree = newick::parse("(a:0.1,b:0.1,(c:0.1,d:0.1):0.1);").unwrap();
    for alpha in [DiscreteGamma::MIN_ALPHA, DiscreteGamma::MAX_ALPHA] {
        let mut engine = LikelihoodEngine::new(
            &tree,
            &aln,
            EngineConfig {
                kernel: KernelKind::Vector,
                alpha,
                ..EngineConfig::default()
            },
        );
        assert!(engine.log_likelihood(&tree, 0).is_finite(), "alpha {alpha}");
    }
    let r = std::panic::catch_unwind(|| DiscreteGamma::new(0.0001));
    assert!(r.is_err(), "alpha below MIN_ALPHA must panic");
}

#[test]
fn invalid_gtr_parameters_rejected_everywhere() {
    assert!(Gtr::try_new(GtrParams {
        rates: [1.0, 1.0, 1.0, 1.0, 1.0, 0.0],
        freqs: [0.25; 4],
    })
    .is_err());
    assert!(Gtr::try_new(GtrParams {
        rates: [1.0; 6],
        freqs: [0.7, 0.1, 0.1, 0.2],
    })
    .is_err());

    let aln = toy_aln(16);
    let tree = newick::parse("(a:0.1,b:0.1,(c:0.1,d:0.1):0.1);").unwrap();
    let engine = std::panic::catch_unwind(|| {
        let mut e = LikelihoodEngine::new(&tree, &aln, EngineConfig::default());
        e.set_model(GtrParams {
            rates: [f64::NAN; 6],
            freqs: [0.25; 4],
        });
    });
    assert!(engine.is_err(), "NaN rates must be rejected");
}

#[test]
fn mismatched_tree_and_alignment_panic() {
    let aln = toy_aln(16); // taxa a, b, c, d
    let tree = newick::parse("(x:0.1,y:0.1,z:0.1);").unwrap();
    let r =
        std::panic::catch_unwind(|| LikelihoodEngine::new(&tree, &aln, EngineConfig::default()));
    assert!(r.is_err(), "unknown taxa must be detected at construction");
}

#[test]
fn deep_tree_underflow_is_scaled_not_zeroed() {
    // 30 taxa, long branches: per-site likelihood magnitudes are far
    // below f64::MIN_POSITIVE without the scaling machinery.
    use phylomic::tree::build::{caterpillar, default_names};
    let names = default_names(30);
    let tree = caterpillar(&names, 2.0).unwrap();
    let seqs: Vec<Sequence> = names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let pat = ["ACGT", "CGTA", "GTAC", "TACG"][i % 4];
            Sequence::from_str_named(n.clone(), &pat.repeat(8)).unwrap()
        })
        .collect();
    let aln = CompressedAlignment::from_alignment(&Alignment::new(seqs).unwrap());
    for kernel in [KernelKind::Scalar, KernelKind::Vector] {
        let mut engine = LikelihoodEngine::new(
            &tree,
            &aln,
            EngineConfig {
                kernel,
                alpha: 0.5,
                ..EngineConfig::default()
            },
        );
        let ll = engine.log_likelihood(&tree, 0);
        assert!(ll.is_finite() && ll < 0.0, "{kernel:?}: logL {ll}");
    }
}

// ---------------------------------------------------------------------------
// Scripted fault injection against the replicated search: rank death at
// collective sites, checkpoint I/O errors, and degrade-and-resume.
// ---------------------------------------------------------------------------

/// A small simulated dataset with enough signal that the search does
/// real rounds (and therefore real collectives) at every rank count.
fn search_dataset() -> (Tree, CompressedAlignment) {
    use phylomic::tree::build::{default_names, random_tree};
    let mut rng = SmallRng::seed_from_u64(77);
    let names = default_names(8);
    let tree = random_tree(&names, 0.12, &mut rng).unwrap();
    let g = Gtr::new(GtrParams::jc69());
    let gamma = DiscreteGamma::new(1.0);
    let aln = phylomic::seqgen::simulate_alignment(&tree, g.eigen(), &gamma, 600, &mut rng);
    (tree, CompressedAlignment::from_alignment(&aln))
}

fn short_search(max_rounds: usize) -> MlSearch {
    MlSearch::new(SearchConfig {
        max_rounds,
        optimize_model: false,
        ..Default::default()
    })
}

/// Runs `f` on a helper thread and fails the test if it has not
/// completed within `secs`. This turns "the collective error path is
/// deadlock-free" into an enforced bound instead of a hung test run.
fn within_deadline<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .expect("deadline exceeded: a collective error path is hanging")
}

#[test]
fn rank_death_at_collective_sites_fails_structured_within_bounded_time() {
    // Matrix over rank counts and death sites: early, mid-round, and
    // deep into the search. In every cell the surviving ranks must
    // unblock, the supervisor must join all threads, and the outcome
    // must name the dead rank.
    for (ranks, dead, at) in [(2, 1, 1), (3, 2, 2), (3, 1, 7), (4, 3, 25)] {
        let err = within_deadline(120, move || {
            let (tree, aln) = search_dataset();
            let mut ft = FtConfig::new(ranks);
            ft.fault_plan = Some(Arc::new(FaultPlan::rank_death(dead, at)));
            run_replicated_ft(&tree, &aln, EngineConfig::default(), short_search(3), &ft)
                .unwrap_err()
        });
        assert_eq!(
            err,
            ReplicatedError::Comm(CommError::PeerFailed { rank: dead }),
            "ranks={ranks} dead={dead} at={at}"
        );
    }
}

#[test]
fn transient_checkpoint_io_errors_are_retried_through() {
    let dir = std::env::temp_dir().join(format!("phylomic-fi-retry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("retry.ckp");
    let _ = std::fs::remove_file(&path);

    let (tree, aln) = search_dataset();
    let mut ft = FtConfig::new(2);
    ft.checkpoint = Some(path.clone());
    // First two write attempts fail; the default policy retries five
    // times, so the run must still complete and leave a valid file.
    ft.fault_plan = Some(Arc::new(FaultPlan::checkpoint_write_errors(1, 2)));
    ft.retry.base_backoff = Duration::from_millis(1);
    let out = run_replicated_ft(&tree, &aln, EngineConfig::default(), short_search(2), &ft)
        .expect("transient I/O errors within the retry budget must not kill the run");
    let cp = Checkpoint::load(&path).expect("checkpoint must be parseable after retries");
    assert!((cp.log_likelihood - out.result.log_likelihood).abs() <= 1e-9);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn persistent_checkpoint_io_errors_preserve_the_previous_snapshot() {
    let dir = std::env::temp_dir().join(format!("phylomic-fi-keep-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("keep.ckp");
    let _ = std::fs::remove_file(&path);
    let (tree, aln) = search_dataset();
    let cfg = EngineConfig::default();

    // Seed a valid snapshot with a clean short run.
    let mut ft = FtConfig::new(2);
    ft.checkpoint = Some(path.clone());
    run_replicated_ft(&tree, &aln, cfg, short_search(1), &ft).unwrap();
    let before = std::fs::read_to_string(&path).unwrap();

    // Resume with every subsequent write failing: the run reports the
    // checkpoint error group-wide within bounded time, and the file on
    // disk is still byte-for-byte the last good snapshot (atomic
    // replace never exposes a partial write).
    ft.fault_plan = Some(Arc::new(FaultPlan::checkpoint_write_errors(1, u64::MAX)));
    ft.retry.attempts = 2;
    ft.retry.base_backoff = Duration::from_millis(1);
    let err = within_deadline(120, {
        let (tree, aln, ft) = (tree.clone(), aln.clone(), ft.clone());
        move || run_replicated_ft(&tree, &aln, cfg, short_search(3), &ft).unwrap_err()
    });
    assert!(
        matches!(err, ReplicatedError::Checkpoint(_)),
        "expected a checkpoint error, got {err:?}"
    );
    assert_eq!(
        std::fs::read_to_string(&path).unwrap(),
        before,
        "failed writes must not corrupt the previous snapshot"
    );
    Checkpoint::load(&path).expect("snapshot must still parse");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn degrade_and_resume_matches_uninterrupted_lower_rank_run() {
    let dir = std::env::temp_dir().join(format!("phylomic-fi-degrade-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (tree, aln) = search_dataset();
    let cfg = EngineConfig::default();

    // Phase 1: a 3-rank run checkpoints after round 1.
    let seed_path = dir.join("seed.ckp");
    let mut seed_ft = FtConfig::new(3);
    seed_ft.checkpoint = Some(seed_path.clone());
    run_replicated_ft(&tree, &aln, cfg, short_search(1), &seed_ft).unwrap();

    // Two identical copies of the snapshot, one per scenario.
    let killed_path = dir.join("killed.ckp");
    let clean_path = dir.join("clean.ckp");
    std::fs::copy(&seed_path, &killed_path).unwrap();
    std::fs::copy(&seed_path, &clean_path).unwrap();

    // Scenario A: resume at 3 ranks, rank 1 dies early in the next
    // round (before any new snapshot lands), --degrade re-splits over
    // the 2 survivors which reload the same round-1 snapshot.
    let err_then_degrade = within_deadline(180, {
        let (tree, aln) = (tree.clone(), aln.clone());
        let mut ft = FtConfig::new(3);
        ft.degrade = true;
        ft.checkpoint = Some(killed_path.clone());
        ft.fault_plan = Some(Arc::new(FaultPlan::rank_death(1, 10)));
        move || run_replicated_ft(&tree, &aln, cfg, short_search(4), &ft).unwrap()
    });
    assert_eq!(
        err_then_degrade.rank_likelihoods.len(),
        2,
        "must have finished on the survivors"
    );

    // Scenario B: an uninterrupted 2-rank run resuming from the same
    // snapshot — the ground truth the degraded run must reproduce.
    let clean = {
        let mut ft = FtConfig::new(2);
        ft.checkpoint = Some(clean_path.clone());
        run_replicated_ft(&tree, &aln, cfg, short_search(4), &ft).unwrap()
    };

    assert!(
        (err_then_degrade.result.log_likelihood - clean.result.log_likelihood).abs() <= 1e-9,
        "degraded resume {} vs uninterrupted 2-rank {}",
        err_then_degrade.result.log_likelihood,
        clean.result.log_likelihood
    );
    assert_eq!(err_then_degrade.result.newick, clean.result.newick);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn weights_of_zero_are_tolerated() {
    // Zero-weight patterns contribute nothing but must not break the
    // kernels (RAxML generates them when partitions mask sites).
    use phylomic::bio::DnaCode;
    let a = DnaCode::from_char('A').unwrap();
    let g = DnaCode::from_char('G').unwrap();
    let ca = CompressedAlignment::from_parts(
        vec!["a".into(), "b".into(), "c".into()],
        vec![vec![a, g], vec![a, a], vec![g, a]],
        vec![3, 0],
    )
    .unwrap();
    let tree = newick::parse("(a:0.2,b:0.2,c:0.2);").unwrap();
    let mut engine = LikelihoodEngine::new(&tree, &ca, EngineConfig::default());
    let ll = engine.log_likelihood(&tree, 0);
    assert!(ll.is_finite());

    // Must equal the same data without the zero-weight pattern.
    let ca2 = CompressedAlignment::from_parts(
        vec!["a".into(), "b".into(), "c".into()],
        vec![vec![a], vec![a], vec![g]],
        vec![3],
    )
    .unwrap();
    let mut engine2 = LikelihoodEngine::new(&tree, &ca2, EngineConfig::default());
    let ll2 = engine2.log_likelihood(&tree, 0);
    assert!((ll - ll2).abs() < 1e-10, "{ll} vs {ll2}");
}
