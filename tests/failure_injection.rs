//! Failure injection: malformed inputs, degenerate parameters, and
//! pathological data must fail loudly or degrade gracefully — never
//! return silently wrong likelihoods.

use phylomic::bio::{fasta, phylip, Alignment, CompressedAlignment, Sequence};
use phylomic::models::{DiscreteGamma, Gtr, GtrParams};
use phylomic::plf::{EngineConfig, KernelKind, LikelihoodEngine};
use phylomic::tree::{newick, tree::BL_MAX, tree::BL_MIN};

fn toy_aln(width: usize) -> CompressedAlignment {
    let mk = |name: &str, pat: &str| {
        Sequence::from_str_named(name, &pat.repeat(width / pat.len() + 1)[..width]).unwrap()
    };
    CompressedAlignment::from_alignment(
        &Alignment::new(vec![
            mk("a", "ACGT"),
            mk("b", "ACGA"),
            mk("c", "TCGT"),
            mk("d", "ACTT"),
        ])
        .unwrap(),
    )
}

#[test]
fn malformed_files_are_rejected_not_mangled() {
    // FASTA.
    for bad in [
        "no header at all\nACGT\n",
        ">x\nACGZ\n>y\nACGT\n", // invalid character
        ">x\n>y\nAC\n",         // empty record
    ] {
        assert!(fasta::parse_str(bad).is_err(), "accepted: {bad:?}");
    }
    // PHYLIP.
    for bad in [
        "",
        "notanumber 4\na ACGT\n",
        "2 4\na ACGT\n",       // missing taxon
        "1 4\na ACGTACGT\n",   // overlong
        "2 4\na ACGT\nb AC\n", // truncated
    ] {
        assert!(phylip::parse_str(bad).is_err(), "accepted: {bad:?}");
    }
    // Newick.
    for bad in [
        "(a:0.1,b:0.2,c:0.3)",        // missing semicolon
        "(a:0.1,b:0.2);",             // two taxa
        "((a,b),(c,d),(e,f),(g,h));", // top-level multifurcation
        "(a:xyz,b:0.1,c:0.1);",       // bad number
        "(a:0.1,a:0.1,b:0.1);",       // duplicate names
    ] {
        assert!(newick::parse(bad).is_err(), "accepted: {bad:?}");
    }
}

#[test]
fn branch_length_extremes_keep_likelihood_finite() {
    let aln = toy_aln(64);
    let mut tree = newick::parse("(a:0.1,b:0.1,(c:0.1,d:0.1):0.1);").unwrap();
    for kernel in [KernelKind::Scalar, KernelKind::Vector] {
        let mut engine = LikelihoodEngine::new(&tree, &aln, EngineConfig { kernel, alpha: 1.0 });
        for e in 0..tree.num_edges() {
            tree.set_length(e, BL_MIN).unwrap();
        }
        let ll_min = engine.log_likelihood(&tree, 0);
        assert!(ll_min.is_finite(), "{kernel:?}: min-branch logL {ll_min}");
        for e in 0..tree.num_edges() {
            tree.set_length(e, BL_MAX).unwrap();
        }
        let ll_max = engine.log_likelihood(&tree, 0);
        assert!(ll_max.is_finite(), "{kernel:?}: max-branch logL {ll_max}");
        // Saturated branches: every site's likelihood approaches the
        // product of stationary frequencies; still a valid number.
        assert!(ll_max < 0.0);
    }
}

#[test]
fn all_gap_alignment_has_zero_loglikelihood() {
    let aln = CompressedAlignment::from_alignment(
        &Alignment::new(vec![
            Sequence::from_str_named("a", "----").unwrap(),
            Sequence::from_str_named("b", "NNNN").unwrap(),
            Sequence::from_str_named("c", "????").unwrap(),
        ])
        .unwrap(),
    );
    let tree = newick::parse("(a:0.3,b:0.4,c:0.5);").unwrap();
    let mut engine = LikelihoodEngine::new(&tree, &aln, EngineConfig::default());
    let ll = engine.log_likelihood(&tree, 0);
    // P(anything) summed over all states = 1 per site → logL = 0.
    assert!(ll.abs() < 1e-9, "logL = {ll}");
}

#[test]
fn extreme_alpha_values_work_at_bounds_and_panic_beyond() {
    let aln = toy_aln(32);
    let tree = newick::parse("(a:0.1,b:0.1,(c:0.1,d:0.1):0.1);").unwrap();
    for alpha in [DiscreteGamma::MIN_ALPHA, DiscreteGamma::MAX_ALPHA] {
        let mut engine = LikelihoodEngine::new(
            &tree,
            &aln,
            EngineConfig {
                kernel: KernelKind::Vector,
                alpha,
            },
        );
        assert!(engine.log_likelihood(&tree, 0).is_finite(), "alpha {alpha}");
    }
    let r = std::panic::catch_unwind(|| DiscreteGamma::new(0.0001));
    assert!(r.is_err(), "alpha below MIN_ALPHA must panic");
}

#[test]
fn invalid_gtr_parameters_rejected_everywhere() {
    assert!(Gtr::try_new(GtrParams {
        rates: [1.0, 1.0, 1.0, 1.0, 1.0, 0.0],
        freqs: [0.25; 4],
    })
    .is_err());
    assert!(Gtr::try_new(GtrParams {
        rates: [1.0; 6],
        freqs: [0.7, 0.1, 0.1, 0.2],
    })
    .is_err());

    let aln = toy_aln(16);
    let tree = newick::parse("(a:0.1,b:0.1,(c:0.1,d:0.1):0.1);").unwrap();
    let engine = std::panic::catch_unwind(|| {
        let mut e = LikelihoodEngine::new(&tree, &aln, EngineConfig::default());
        e.set_model(GtrParams {
            rates: [f64::NAN; 6],
            freqs: [0.25; 4],
        });
    });
    assert!(engine.is_err(), "NaN rates must be rejected");
}

#[test]
fn mismatched_tree_and_alignment_panic() {
    let aln = toy_aln(16); // taxa a, b, c, d
    let tree = newick::parse("(x:0.1,y:0.1,z:0.1);").unwrap();
    let r =
        std::panic::catch_unwind(|| LikelihoodEngine::new(&tree, &aln, EngineConfig::default()));
    assert!(r.is_err(), "unknown taxa must be detected at construction");
}

#[test]
fn deep_tree_underflow_is_scaled_not_zeroed() {
    // 30 taxa, long branches: per-site likelihood magnitudes are far
    // below f64::MIN_POSITIVE without the scaling machinery.
    use phylomic::tree::build::{caterpillar, default_names};
    let names = default_names(30);
    let tree = caterpillar(&names, 2.0).unwrap();
    let seqs: Vec<Sequence> = names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let pat = ["ACGT", "CGTA", "GTAC", "TACG"][i % 4];
            Sequence::from_str_named(n.clone(), &pat.repeat(8)).unwrap()
        })
        .collect();
    let aln = CompressedAlignment::from_alignment(&Alignment::new(seqs).unwrap());
    for kernel in [KernelKind::Scalar, KernelKind::Vector] {
        let mut engine = LikelihoodEngine::new(&tree, &aln, EngineConfig { kernel, alpha: 0.5 });
        let ll = engine.log_likelihood(&tree, 0);
        assert!(ll.is_finite() && ll < 0.0, "{kernel:?}: logL {ll}");
    }
}

#[test]
fn weights_of_zero_are_tolerated() {
    // Zero-weight patterns contribute nothing but must not break the
    // kernels (RAxML generates them when partitions mask sites).
    use phylomic::bio::DnaCode;
    let a = DnaCode::from_char('A').unwrap();
    let g = DnaCode::from_char('G').unwrap();
    let ca = CompressedAlignment::from_parts(
        vec!["a".into(), "b".into(), "c".into()],
        vec![vec![a, g], vec![a, a], vec![g, a]],
        vec![3, 0],
    )
    .unwrap();
    let tree = newick::parse("(a:0.2,b:0.2,c:0.2);").unwrap();
    let mut engine = LikelihoodEngine::new(&tree, &ca, EngineConfig::default());
    let ll = engine.log_likelihood(&tree, 0);
    assert!(ll.is_finite());

    // Must equal the same data without the zero-weight pattern.
    let ca2 = CompressedAlignment::from_parts(
        vec!["a".into(), "b".into(), "c".into()],
        vec![vec![a], vec![a], vec![g]],
        vec![3],
    )
    .unwrap();
    let mut engine2 = LikelihoodEngine::new(&tree, &ca2, EngineConfig::default());
    let ll2 = engine2.log_likelihood(&tree, 0);
    assert!((ll - ll2).abs() < 1e-10, "{ll} vs {ll2}");
}
