//! End-to-end integration: simulate → compress → search → verify,
//! across kernels and parallel schemes.

use phylomic::bio::CompressedAlignment;
use phylomic::models::{DiscreteGamma, Gtr, GtrParams};
use phylomic::parallel::{run_replicated, ForkJoinEvaluator};
use phylomic::plf::{EngineConfig, KernelKind, LikelihoodEngine};
use phylomic::search::{Evaluator, MlSearch, SearchConfig};
use phylomic::seqgen::simulate_alignment;
use phylomic::tree::build::{default_names, random_tree};
use phylomic::tree::{newick, Tree};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn simulated(seed: u64, taxa: usize, sites: usize) -> (Tree, CompressedAlignment) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let names = default_names(taxa);
    let tree = random_tree(&names, 0.13, &mut rng).unwrap();
    let gtr = Gtr::new(GtrParams {
        rates: [1.2, 3.0, 0.8, 1.1, 3.2, 1.0],
        freqs: [0.28, 0.22, 0.23, 0.27],
    });
    let gamma = DiscreteGamma::new(0.8);
    let aln = simulate_alignment(&tree, gtr.eigen(), &gamma, sites, &mut rng);
    (tree, CompressedAlignment::from_alignment(&aln))
}

#[test]
fn full_pipeline_recovers_true_tree() {
    let (true_tree, aln) = simulated(1001, 10, 5_000);
    let names = true_tree.tip_names().to_vec();
    let mut tree = random_tree(&names, 0.1, &mut SmallRng::seed_from_u64(5)).unwrap();
    let mut engine = LikelihoodEngine::new(&tree, &aln, EngineConfig::default());
    let search = MlSearch::new(SearchConfig {
        max_rounds: 10,
        ..Default::default()
    });
    let result = search.run(&mut engine, &mut tree);
    // ML on finite data may legitimately prefer a topology a single
    // rearrangement away from the generating tree; what the search must
    // guarantee is (a) it gets essentially all the way there and (b) it
    // never settles for a tree scoring worse than the truth.
    assert!(
        tree.rf_distance(&true_tree) <= 2,
        "search ended RF {} from the generating topology",
        tree.rf_distance(&true_tree)
    );
    let mut true_smoothed = true_tree.clone();
    let r_true =
        phylomic::search::branch_opt::smooth_branches(&mut engine, &mut true_smoothed, 1e-4, 16);
    assert!(
        result.log_likelihood >= r_true.log_likelihood - 0.1,
        "inferred {} scores below the generating topology {}",
        result.log_likelihood,
        r_true.log_likelihood
    );
}

#[test]
fn kernels_and_schemes_agree_end_to_end() {
    let (true_tree, aln) = simulated(2002, 9, 1_200);
    let names = true_tree.tip_names().to_vec();
    let start = random_tree(&names, 0.1, &mut SmallRng::seed_from_u64(8)).unwrap();
    let search = MlSearch::new(SearchConfig {
        max_rounds: 3,
        optimize_model: false,
        ..Default::default()
    });

    let mut results = Vec::new();
    for kernel in [KernelKind::Scalar, KernelKind::Vector] {
        let cfg = EngineConfig {
            kernel,
            alpha: 1.0,
            ..EngineConfig::default()
        };
        // Serial.
        let mut t = start.clone();
        let mut e = LikelihoodEngine::new(&t, &aln, cfg);
        let r = search.run(&mut e, &mut t);
        results.push((format!("serial/{kernel:?}"), r.log_likelihood, t));
        // Fork-join.
        let mut t = start.clone();
        let mut fj = ForkJoinEvaluator::new(&t, &aln, cfg, 3);
        let r = search.run(&mut fj, &mut t);
        results.push((format!("forkjoin/{kernel:?}"), r.log_likelihood, t));
        // Replicated.
        let out = run_replicated(&start, &aln, cfg, search, 3);
        let t = newick::parse(&out.result.newick).unwrap();
        results.push((
            format!("replicated/{kernel:?}"),
            out.result.log_likelihood,
            t,
        ));
    }
    let (ref_name, ref_ll, ref_tree) = &results[0];
    for (name, ll, tree) in &results[1..] {
        assert!(
            (ll - ref_ll).abs() < 1e-6,
            "{name} logL {ll} != {ref_name} {ref_ll}"
        );
        assert_eq!(
            tree.rf_distance(ref_tree),
            0,
            "{name} topology differs from {ref_name}"
        );
    }
}

#[test]
fn likelihood_invariant_under_pattern_compression() {
    // Feeding the engine the uncompressed alignment (weight-1 columns)
    // must give exactly the same log-likelihood as the compressed one.
    let mut rng = SmallRng::seed_from_u64(3003);
    let names = default_names(7);
    let tree = random_tree(&names, 0.2, &mut rng).unwrap();
    let gtr = Gtr::new(GtrParams::jc69());
    let gamma = DiscreteGamma::new(1.0);
    // Few sites + low divergence → many repeated columns.
    let aln = simulate_alignment(&tree, gtr.eigen(), &gamma, 400, &mut rng);
    let compressed = CompressedAlignment::from_alignment(&aln);
    assert!(
        compressed.num_patterns() < aln.num_sites(),
        "dataset must actually compress for this test to be meaningful"
    );
    let uncompressed = CompressedAlignment::from_parts(
        aln.names().map(str::to_string).collect(),
        (0..aln.num_taxa())
            .map(|t| aln.sequence(t).codes().to_vec())
            .collect(),
        vec![1; aln.num_sites()],
    )
    .unwrap();

    let cfg = EngineConfig::default();
    let mut e1 = LikelihoodEngine::new(&tree, &compressed, cfg);
    let mut e2 = LikelihoodEngine::new(&tree, &uncompressed, cfg);
    for edge in [0usize, 3, 7] {
        let a = e1.log_likelihood(&tree, edge);
        let b = e2.log_likelihood(&tree, edge);
        assert!((a - b).abs() < 1e-8, "edge {edge}: {a} vs {b}");
    }
}

#[test]
fn virtual_root_invariance_full_pipeline() {
    let (tree, aln) = simulated(4004, 12, 800);
    for kernel in [KernelKind::Scalar, KernelKind::Vector] {
        let mut engine = LikelihoodEngine::new(
            &tree,
            &aln,
            EngineConfig {
                kernel,
                alpha: 0.6,
                ..EngineConfig::default()
            },
        );
        let reference = engine.log_likelihood(&tree, 0);
        for e in tree.edge_ids().skip(1) {
            let ll = engine.log_likelihood(&tree, e);
            assert!(
                (ll - reference).abs() < 1e-7,
                "{kernel:?} edge {e}: {ll} vs {reference}"
            );
        }
    }
}

#[test]
fn model_optimization_recovers_simulation_regime() {
    // Data simulated with strong rate heterogeneity (alpha = 0.3) must
    // lead the alpha optimizer well below 2, and vice versa.
    for (true_alpha, low) in [(0.3, true), (20.0, false)] {
        let mut rng = SmallRng::seed_from_u64(5005);
        let names = default_names(8);
        let tree = random_tree(&names, 0.25, &mut rng).unwrap();
        let gtr = Gtr::new(GtrParams::jc69());
        let gamma = DiscreteGamma::new(true_alpha);
        let aln = simulate_alignment(&tree, gtr.eigen(), &gamma, 6_000, &mut rng);
        let ca = CompressedAlignment::from_alignment(&aln);
        let mut engine = LikelihoodEngine::new(&tree, &ca, EngineConfig::default());
        let mut t = tree.clone();
        phylomic::search::branch_opt::smooth_branches(&mut engine, &mut t, 1e-2, 6);
        let alpha = phylomic::search::model_opt::optimize_alpha(&mut engine, &t, 1e-4);
        if low {
            assert!(alpha < 1.0, "true alpha 0.3, estimated {alpha}");
        } else {
            assert!(alpha > 2.0, "true alpha 20, estimated {alpha}");
        }
    }
}

#[test]
fn evaluator_trait_is_object_safe_and_uniform() {
    // The same driver code must run against a &mut dyn Evaluator of
    // every implementation (this is what lets the search be written
    // once, §V-D).
    let (tree, aln) = simulated(6006, 6, 300);
    let cfg = EngineConfig::default();
    let mut engine = LikelihoodEngine::new(&tree, &aln, cfg);
    let mut fj = ForkJoinEvaluator::new(&tree, &aln, cfg, 2);
    let evals: Vec<&mut dyn Evaluator> = vec![&mut engine, &mut fj];
    let mut lls = Vec::new();
    for e in evals {
        lls.push(e.log_likelihood(&tree, 0));
    }
    assert!((lls[0] - lls[1]).abs() < 1e-9);
}
