//! Property-based tests over the core invariants.

use phylomic::bio::{alphabet::UNAMBIGUOUS, CompressedAlignment, DnaCode};
use phylomic::models::{DiscreteGamma, Gtr, GtrParams, ProbMatrix};
use phylomic::plf::cla::Cla;
use phylomic::plf::layout::{EigenBasis, FusedPmat, Lut16x16};
use phylomic::plf::{AlignedVec, EngineConfig, KernelKind, LikelihoodEngine, SITE_STRIDE};
use phylomic::tree::build::{default_names, random_tree};
use phylomic::tree::Tree;
use proptest::prelude::*;

/// Strategy: a valid GTR parameter set.
fn gtr_params() -> impl Strategy<Value = GtrParams> {
    (
        proptest::array::uniform6(0.05f64..8.0),
        (0.05f64..1.0, 0.05f64..1.0, 0.05f64..1.0, 0.05f64..1.0),
    )
        .prop_map(|(rates, (a, c, g, t))| {
            let sum = a + c + g + t;
            GtrParams {
                rates,
                freqs: [a / sum, c / sum, g / sum, t / sum],
            }
        })
}

/// Strategy: a random CLA-like value buffer for `n` sites.
fn cla_values(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1e-6f64..1.0, n * SITE_STRIDE)
}

/// Strategy: valid tip codes.
fn tip_codes(n: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(1u8..16, n)
}

const N: usize = 23; // deliberately not a multiple of the site block

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prob_matrix_rows_sum_to_one(params in gtr_params(), t in 0.0f64..20.0, alpha in 0.05f64..20.0) {
        let gtr = Gtr::new(params);
        let gamma = DiscreteGamma::new(alpha);
        let pm = ProbMatrix::new(gtr.eigen(), gamma.rates(), t);
        for k in 0..4 {
            for a in 0..4 {
                let s: f64 = pm.per_rate[k][a].iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-8, "k={k} a={a} sum={s}");
            }
        }
    }

    #[test]
    fn scalar_vector_newview_ii_equivalent(
        params in gtr_params(),
        vl in cla_values(N),
        vr in cla_values(N),
        (tl, tr) in (0.001f64..3.0, 0.001f64..3.0),
    ) {
        let gtr = Gtr::new(params);
        let rates = *DiscreteGamma::new(0.9).rates();
        let pl = FusedPmat::from_prob(&ProbMatrix::new(gtr.eigen(), &rates, tl));
        let pr = FusedPmat::from_prob(&ProbMatrix::new(gtr.eigen(), &rates, tr));
        let scale = vec![0u32; N];
        let mut outs = Vec::new();
        for kind in [KernelKind::Scalar, KernelKind::Vector] {
            let mut cla = Cla::new(N);
            let (v, s) = cla.buffers_mut();
            kind.kernels().newview_ii(&pl, &vl, &scale, &pr, &vr, &scale, v, s);
            outs.push(cla);
        }
        for (a, b) in outs[0].values().iter().zip(outs[1].values()) {
            prop_assert!((a - b).abs() <= 1e-12 * (1.0 + a.abs()), "{a} vs {b}");
        }
        prop_assert_eq!(outs[0].scale(), outs[1].scale());
    }

    #[test]
    fn scalar_vector_evaluate_equivalent(
        params in gtr_params(),
        vq in cla_values(N),
        vr in cla_values(N),
        codes in tip_codes(N),
        t in 0.001f64..3.0,
    ) {
        let gtr = Gtr::new(params);
        let rates = *DiscreteGamma::new(1.2).rates();
        let p = FusedPmat::from_prob(&ProbMatrix::new(gtr.eigen(), &rates, t));
        let pi_tip = Lut16x16::tip_pi(&gtr.freqs());
        let mut pi_w = [0.0; SITE_STRIDE];
        for k in 0..4 {
            for a in 0..4 {
                pi_w[4 * k + a] = 0.25 * gtr.freqs()[a];
            }
        }
        let scale = vec![0u32; N];
        let weights = vec![1u32; N];
        let s_k = KernelKind::Scalar.kernels();
        let v_k = KernelKind::Vector.kernels();
        let a = s_k.evaluate_ii(&pi_w, &vq, &scale, &p, &vr, &scale, &weights);
        let b = v_k.evaluate_ii(&pi_w, &vq, &scale, &p, &vr, &scale, &weights);
        prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()), "{a} vs {b}");
        let a = s_k.evaluate_ti(&pi_tip, &codes, &p, &vr, &scale, &weights);
        let b = v_k.evaluate_ti(&pi_tip, &codes, &p, &vr, &scale, &weights);
        prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()), "{a} vs {b}");
    }

    #[test]
    fn scalar_vector_derivatives_equivalent(
        params in gtr_params(),
        vq in cla_values(N),
        vr in cla_values(N),
        t in 0.001f64..2.0,
    ) {
        let gtr = Gtr::new(params);
        let rates = *DiscreteGamma::new(0.6).rates();
        let basis = EigenBasis::new(gtr.eigen(), &rates);
        let weights = vec![1u32; N];
        let mut sum_s = AlignedVec::zeroed(N * SITE_STRIDE);
        let mut sum_v = AlignedVec::zeroed(N * SITE_STRIDE);
        KernelKind::Scalar.kernels().derivative_sum_ii(&basis, &vq, &vr, &mut sum_s);
        KernelKind::Vector.kernels().derivative_sum_ii(&basis, &vq, &vr, &mut sum_v);
        for (a, b) in sum_s.iter().zip(sum_v.iter()) {
            prop_assert!((a - b).abs() <= 1e-12 * (1.0 + a.abs()));
        }
        let (d1s, d2s) = KernelKind::Scalar.kernels()
            .derivative_core(&sum_s, &basis.lambda_rate, t, &weights);
        let (d1v, d2v) = KernelKind::Vector.kernels()
            .derivative_core(&sum_v, &basis.lambda_rate, t, &weights);
        prop_assert!((d1s - d1v).abs() < 1e-8 * (1.0 + d1s.abs()));
        prop_assert!((d2s - d2v).abs() < 1e-8 * (1.0 + d2s.abs()));
    }

    #[test]
    fn pattern_weights_equal_repeated_columns(
        cols in proptest::collection::vec((0usize..4, 0usize..4, 0usize..4, 1u32..4), 2..10)
    ) {
        // Expanding weighted patterns into repeated columns must give
        // an identical likelihood.
        let tree = phylomic::tree::newick::parse("(x:0.2,y:0.3,z:0.4);").unwrap();
        let names: Vec<String> = vec!["x".into(), "y".into(), "z".into()];
        let mut rows_w: Vec<Vec<DnaCode>> = vec![Vec::new(); 3];
        let mut rows_e: Vec<Vec<DnaCode>> = vec![Vec::new(); 3];
        let mut weights = Vec::new();
        for &(a, b, c, w) in &cols {
            let col = [UNAMBIGUOUS[a], UNAMBIGUOUS[b], UNAMBIGUOUS[c]];
            for t in 0..3 {
                rows_w[t].push(col[t]);
                for _ in 0..w {
                    rows_e[t].push(col[t]);
                }
            }
            weights.push(w);
        }
        let weighted = CompressedAlignment::from_parts(names.clone(), rows_w, weights).unwrap();
        let expanded_w = vec![1; rows_e[0].len()];
        let expanded = CompressedAlignment::from_parts(names, rows_e, expanded_w).unwrap();
        let cfg = EngineConfig::default();
        let mut e1 = LikelihoodEngine::new(&tree, &weighted, cfg);
        let mut e2 = LikelihoodEngine::new(&tree, &expanded, cfg);
        let a = e1.log_likelihood(&tree, 0);
        let b = e2.log_likelihood(&tree, 0);
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn random_trees_satisfy_invariants(n in 4usize..20, seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let t = random_tree(&default_names(n), 0.1, &mut rng).unwrap();
        t.validate().unwrap();
        prop_assert_eq!(t.num_edges(), 2 * n - 3);
        prop_assert_eq!(t.splits().len(), n - 3);
        // Newick round trip preserves the topology.
        let back = phylomic::tree::newick::parse(&phylomic::tree::newick::to_newick(&t)).unwrap();
        prop_assert_eq!(t.rf_distance(&back), 0);
    }

    #[test]
    fn spr_preserves_invariants_and_undoes(
        n in 5usize..12,
        seed in 0u64..500,
        prune_pick in 0usize..100,
        target_pick in 0usize..100,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let t0 = random_tree(&default_names(n), 0.1, &mut rng).unwrap();
        let mut t = t0.clone();
        let prune = prune_pick % t.num_edges();
        let (a, b) = t.endpoints(prune);
        let root = if t.is_tip(a) { a } else { b };
        let target = target_pick % t.num_edges();
        match phylomic::tree::moves::spr(&mut t, prune, root, target) {
            Ok(undo) => {
                t.validate().unwrap();
                phylomic::tree::moves::spr_undo(&mut t, undo).unwrap();
                prop_assert_eq!(t.rf_distance(&t0), 0);
                prop_assert!((t.total_length() - t0.total_length()).abs() < 1e-9);
            }
            Err(_) => {
                // Rejected moves must leave the tree untouched.
                prop_assert_eq!(t.rf_distance(&t0), 0);
            }
        }
    }
}

// Engine-level property: the virtual-root pulley principle on random
// data. Kept at a modest case count — each case builds a full engine.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pulley_principle_random_engine(seed in 0u64..200, alpha in 0.1f64..5.0) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let names = default_names(6);
        let tree: Tree = random_tree(&names, 0.2, &mut rng).unwrap();
        let gtr = Gtr::new(GtrParams::jc69());
        let gamma = DiscreteGamma::new(alpha);
        let aln = phylomic::seqgen::simulate_compressed(&tree, gtr.eigen(), &gamma, 64, &mut rng);
        let mut engine = LikelihoodEngine::new(&tree, &aln, EngineConfig { kernel: KernelKind::Vector, alpha });
        let reference = engine.log_likelihood(&tree, 0);
        for e in tree.edge_ids() {
            let ll = engine.log_likelihood(&tree, e);
            prop_assert!((ll - reference).abs() < 1e-8, "edge {e}: {ll} vs {reference}");
        }
    }
}
