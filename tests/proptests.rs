//! Property-based tests over the core invariants.

use phylomic::bio::{alphabet::UNAMBIGUOUS, CompressedAlignment, DnaCode};
use phylomic::models::{DiscreteGamma, Gtr, GtrParams, ProbMatrix};
use phylomic::plf::cla::Cla;
use phylomic::plf::layout::{EigenBasis, FusedPmat, Lut16x16};
use phylomic::plf::{AlignedVec, EngineConfig, KernelKind, LikelihoodEngine, SITE_STRIDE};
use phylomic::tree::build::{default_names, random_tree};
use phylomic::tree::Tree;
use proptest::prelude::*;

/// Strategy: a valid GTR parameter set.
fn gtr_params() -> impl Strategy<Value = GtrParams> {
    (
        proptest::array::uniform6(0.05f64..8.0),
        (0.05f64..1.0, 0.05f64..1.0, 0.05f64..1.0, 0.05f64..1.0),
    )
        .prop_map(|(rates, (a, c, g, t))| {
            let sum = a + c + g + t;
            GtrParams {
                rates,
                freqs: [a / sum, c / sum, g / sum, t / sum],
            }
        })
}

/// Strategy: a random CLA-like value buffer for `n` sites.
fn cla_values(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1e-6f64..1.0, n * SITE_STRIDE)
}

/// Strategy: valid tip codes.
fn tip_codes(n: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(1u8..16, n)
}

/// Copies a generated buffer into 64-byte-aligned storage: the SIMD
/// backend's buffer contract (checked at kernel entry in debug builds)
/// requires CLA inputs to be aligned and whole-site padded, which a
/// plain `Vec<f64>` does not guarantee.
fn aligned(v: &[f64]) -> AlignedVec {
    let mut out = AlignedVec::zeroed(v.len());
    out.copy_from_slice(v);
    out
}

/// Every concrete kernel backend. `Simd` resolves to `Vector` on hosts
/// without AVX2+FMA, where the comparison degenerates to Vector ==
/// Vector — still sound, just not informative there.
const BACKENDS: [KernelKind; 3] = [KernelKind::Scalar, KernelKind::Vector, KernelKind::Simd];

const N: usize = 23; // deliberately not a multiple of the site block

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prob_matrix_rows_sum_to_one(params in gtr_params(), t in 0.0f64..20.0, alpha in 0.05f64..20.0) {
        let gtr = Gtr::new(params);
        let gamma = DiscreteGamma::new(alpha);
        let pm = ProbMatrix::new(gtr.eigen(), gamma.rates(), t);
        for k in 0..4 {
            for a in 0..4 {
                let s: f64 = pm.per_rate[k][a].iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-8, "k={k} a={a} sum={s}");
            }
        }
    }

    #[test]
    fn all_backends_newview_ii_equivalent(
        params in gtr_params(),
        vl in cla_values(N),
        vr in cla_values(N),
        (tl, tr) in (0.001f64..3.0, 0.001f64..3.0),
    ) {
        let gtr = Gtr::new(params);
        let rates = *DiscreteGamma::new(0.9).rates();
        let pl = FusedPmat::from_prob(&ProbMatrix::new(gtr.eigen(), &rates, tl));
        let pr = FusedPmat::from_prob(&ProbMatrix::new(gtr.eigen(), &rates, tr));
        let (vl, vr) = (aligned(&vl), aligned(&vr));
        let scale = vec![0u32; N];
        let mut outs = Vec::new();
        for kind in BACKENDS {
            let mut cla = Cla::new(N);
            let (v, s) = cla.buffers_mut();
            kind.kernels().newview_ii(&pl, &vl, &scale, &pr, &vr, &scale, v, s);
            outs.push(cla);
        }
        for (kind, other) in BACKENDS.iter().zip(&outs).skip(1) {
            for (a, b) in outs[0].values().iter().zip(other.values()) {
                prop_assert!((a - b).abs() <= 1e-12 * (1.0 + a.abs()), "{kind}: {a} vs {b}");
            }
            prop_assert_eq!(outs[0].scale(), other.scale(), "{} scaling counters", kind);
        }
    }

    #[test]
    fn all_backends_evaluate_equivalent(
        params in gtr_params(),
        vq in cla_values(N),
        vr in cla_values(N),
        codes in tip_codes(N),
        t in 0.001f64..3.0,
    ) {
        let gtr = Gtr::new(params);
        let rates = *DiscreteGamma::new(1.2).rates();
        let p = FusedPmat::from_prob(&ProbMatrix::new(gtr.eigen(), &rates, t));
        let pi_tip = Lut16x16::tip_pi(&gtr.freqs());
        let mut pi_w = [0.0; SITE_STRIDE];
        for k in 0..4 {
            for a in 0..4 {
                pi_w[4 * k + a] = 0.25 * gtr.freqs()[a];
            }
        }
        let (vq, vr) = (aligned(&vq), aligned(&vr));
        let scale = vec![0u32; N];
        let weights = vec![1u32; N];
        let lls: Vec<(f64, f64)> = BACKENDS
            .iter()
            .map(|kind| {
                let k = kind.kernels();
                (
                    k.evaluate_ii(&pi_w, &vq, &scale, &p, &vr, &scale, &weights),
                    k.evaluate_ti(&pi_tip, &codes, &p, &vr, &scale, &weights),
                )
            })
            .collect();
        for (kind, (ii, ti)) in BACKENDS.iter().zip(&lls).skip(1) {
            let (ii0, ti0) = lls[0];
            prop_assert!((ii0 - ii).abs() < 1e-9 * (1.0 + ii0.abs()), "{kind}: {ii0} vs {ii}");
            prop_assert!((ti0 - ti).abs() < 1e-9 * (1.0 + ti0.abs()), "{kind}: {ti0} vs {ti}");
        }
    }

    #[test]
    fn all_backends_derivatives_equivalent(
        params in gtr_params(),
        vq in cla_values(N),
        vr in cla_values(N),
        t in 0.001f64..2.0,
    ) {
        let gtr = Gtr::new(params);
        let rates = *DiscreteGamma::new(0.6).rates();
        let basis = EigenBasis::new(gtr.eigen(), &rates);
        let weights = vec![1u32; N];
        let (vq, vr) = (aligned(&vq), aligned(&vr));
        let mut results = Vec::new();
        for kind in BACKENDS {
            let mut sum = AlignedVec::zeroed(N * SITE_STRIDE);
            kind.kernels().derivative_sum_ii(&basis, &vq, &vr, &mut sum);
            let (d1, d2) = kind.kernels()
                .derivative_core(&sum, &basis.lambda_rate, t, &weights);
            results.push((sum, d1, d2));
        }
        let (sum0, d10, d20) = &results[0];
        for (kind, (sum, d1, d2)) in BACKENDS.iter().zip(&results).skip(1) {
            for (a, b) in sum0.iter().zip(sum.iter()) {
                prop_assert!((a - b).abs() <= 1e-12 * (1.0 + a.abs()), "{kind}: {a} vs {b}");
            }
            prop_assert!((d10 - d1).abs() < 1e-8 * (1.0 + d10.abs()), "{kind}: {d10} vs {d1}");
            prop_assert!((d20 - d2).abs() < 1e-8 * (1.0 + d20.abs()), "{kind}: {d20} vs {d2}");
        }
    }

    #[test]
    fn backend_matrix_agrees_across_remainder_tails(
        params in gtr_params(),
        vl in cla_values(31),
        vr in cla_values(31),
        codes in tip_codes(31),
        (tl, tr) in (0.001f64..3.0, 0.001f64..3.0),
    ) {
        // The full Simd == Vector == Scalar matrix over pattern counts
        // that exercise every remainder-tail shape of the 8-site block
        // loops (n = 1, 7, 8, 9, 31), with the underflow-scaling path
        // forced on a subset of sites and nonzero input counters so the
        // bit-identical-scaling claim is actually load-bearing.
        let gtr = Gtr::new(params);
        let rates = *DiscreteGamma::new(0.8).rates();
        let pl = FusedPmat::from_prob(&ProbMatrix::new(gtr.eigen(), &rates, tl));
        let pr = FusedPmat::from_prob(&ProbMatrix::new(gtr.eigen(), &rates, tr));
        let basis = EigenBasis::new(gtr.eigen(), &rates);
        let pi_tip = Lut16x16::tip_pi(&gtr.freqs());
        let mut pi_w = [0.0; SITE_STRIDE];
        for k in 0..4 {
            for a in 0..4 {
                pi_w[4 * k + a] = 0.25 * gtr.freqs()[a];
            }
        }
        let (mut vl, mut vr) = (aligned(&vl), aligned(&vr));
        // Every third site is pushed far below the 2⁻²⁵⁶ scaling
        // threshold (product ≈ 1e-120), so newview must rescale those
        // sites and leave the rest alone.
        for site in (0..31).step_by(3) {
            for m in 0..SITE_STRIDE {
                vl[site * SITE_STRIDE + m] *= 1e-60;
                vr[site * SITE_STRIDE + m] *= 1e-60;
            }
        }
        for n in [1usize, 7, 8, 9, 31] {
            let vl = &vl[..n * SITE_STRIDE];
            let vr = &vr[..n * SITE_STRIDE];
            let scale_in = vec![1u32; n];
            let weights = vec![2u32; n];
            let mut results = Vec::new();
            for kind in BACKENDS {
                let k = kind.kernels();
                let mut cla = Cla::new(n);
                let (v, s) = cla.buffers_mut();
                k.newview_ii(&pl, vl, &scale_in, &pr, vr, &scale_in, v, s);
                let ii = k.evaluate_ii(
                    &pi_w, cla.values(), cla.scale(), &pr, vr, &scale_in, &weights);
                let ti = k.evaluate_ti(&pi_tip, &codes[..n], &pl, vr, &scale_in, &weights);
                let mut sum = AlignedVec::zeroed(n * SITE_STRIDE);
                k.derivative_sum_ii(&basis, cla.values(), vr, &mut sum);
                let (d1, d2) = k.derivative_core(&sum, &basis.lambda_rate, tr, &weights);
                results.push((cla, ii, ti, d1, d2));
            }
            let (cla0, ii0, ti0, d10, d20) = &results[0];
            prop_assert!(
                cla0.scale().iter().any(|&s| s > 2),
                "n={} never scaled — the scaling path is untested", n
            );
            for (kind, (cla, ii, ti, d1, d2)) in BACKENDS.iter().zip(&results).skip(1) {
                prop_assert_eq!(
                    cla0.scale(), cla.scale(),
                    "n={} {}: scaling counters not bit-identical", n, kind
                );
                for (a, b) in cla0.values().iter().zip(cla.values()) {
                    prop_assert!(
                        (a - b).abs() <= 1e-12 * (1.0 + a.abs()),
                        "n={n} {kind}: CLA {a} vs {b}"
                    );
                }
                prop_assert!(
                    (ii0 - ii).abs() <= 1e-12 * (1.0 + ii0.abs()),
                    "n={n} {kind}: logL {ii0} vs {ii}"
                );
                prop_assert!(
                    (ti0 - ti).abs() <= 1e-12 * (1.0 + ti0.abs()),
                    "n={n} {kind}: tip logL {ti0} vs {ti}"
                );
                // Derivatives accumulate signed per-site ratios, so
                // cancellation can leave a small final value with
                // honest last-ulp noise from the different summation
                // orders; anchor the tolerance to the per-site ratio
                // magnitudes as well as the total.
                let dtol = 1e-12 * (1.0 + d10.abs() + d20.abs() + n as f64);
                prop_assert!((d10 - d1).abs() <= dtol, "n={n} {kind}: d1 {d10} vs {d1}");
                prop_assert!((d20 - d2).abs() <= dtol, "n={n} {kind}: d2 {d20} vs {d2}");
            }
        }
    }

    #[test]
    fn pattern_weights_equal_repeated_columns(
        cols in proptest::collection::vec((0usize..4, 0usize..4, 0usize..4, 1u32..4), 2..10)
    ) {
        // Expanding weighted patterns into repeated columns must give
        // an identical likelihood.
        let tree = phylomic::tree::newick::parse("(x:0.2,y:0.3,z:0.4);").unwrap();
        let names: Vec<String> = vec!["x".into(), "y".into(), "z".into()];
        let mut rows_w: Vec<Vec<DnaCode>> = vec![Vec::new(); 3];
        let mut rows_e: Vec<Vec<DnaCode>> = vec![Vec::new(); 3];
        let mut weights = Vec::new();
        for &(a, b, c, w) in &cols {
            let col = [UNAMBIGUOUS[a], UNAMBIGUOUS[b], UNAMBIGUOUS[c]];
            for t in 0..3 {
                rows_w[t].push(col[t]);
                for _ in 0..w {
                    rows_e[t].push(col[t]);
                }
            }
            weights.push(w);
        }
        let weighted = CompressedAlignment::from_parts(names.clone(), rows_w, weights).unwrap();
        let expanded_w = vec![1; rows_e[0].len()];
        let expanded = CompressedAlignment::from_parts(names, rows_e, expanded_w).unwrap();
        let cfg = EngineConfig::default();
        let mut e1 = LikelihoodEngine::new(&tree, &weighted, cfg);
        let mut e2 = LikelihoodEngine::new(&tree, &expanded, cfg);
        let a = e1.log_likelihood(&tree, 0);
        let b = e2.log_likelihood(&tree, 0);
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn random_trees_satisfy_invariants(n in 4usize..20, seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let t = random_tree(&default_names(n), 0.1, &mut rng).unwrap();
        t.validate().unwrap();
        prop_assert_eq!(t.num_edges(), 2 * n - 3);
        prop_assert_eq!(t.splits().len(), n - 3);
        // Newick round trip preserves the topology.
        let back = phylomic::tree::newick::parse(&phylomic::tree::newick::to_newick(&t)).unwrap();
        prop_assert_eq!(t.rf_distance(&back), 0);
    }

    #[test]
    fn spr_preserves_invariants_and_undoes(
        n in 5usize..12,
        seed in 0u64..500,
        prune_pick in 0usize..100,
        target_pick in 0usize..100,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let t0 = random_tree(&default_names(n), 0.1, &mut rng).unwrap();
        let mut t = t0.clone();
        let prune = prune_pick % t.num_edges();
        let (a, b) = t.endpoints(prune);
        let root = if t.is_tip(a) { a } else { b };
        let target = target_pick % t.num_edges();
        match phylomic::tree::moves::spr(&mut t, prune, root, target) {
            Ok(undo) => {
                t.validate().unwrap();
                phylomic::tree::moves::spr_undo(&mut t, undo).unwrap();
                prop_assert_eq!(t.rf_distance(&t0), 0);
                prop_assert!((t.total_length() - t0.total_length()).abs() < 1e-9);
            }
            Err(_) => {
                // Rejected moves must leave the tree untouched.
                prop_assert_eq!(t.rf_distance(&t0), 0);
            }
        }
    }
}

// Engine-level property: the virtual-root pulley principle on random
// data. Kept at a modest case count — each case builds a full engine.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pulley_principle_random_engine(seed in 0u64..200, alpha in 0.1f64..5.0) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let names = default_names(6);
        let tree: Tree = random_tree(&names, 0.2, &mut rng).unwrap();
        let gtr = Gtr::new(GtrParams::jc69());
        let gamma = DiscreteGamma::new(alpha);
        let aln = phylomic::seqgen::simulate_compressed(&tree, gtr.eigen(), &gamma, 64, &mut rng);
        let mut engine = LikelihoodEngine::new(&tree, &aln, EngineConfig { kernel: KernelKind::Vector, alpha, ..EngineConfig::default() });
        let reference = engine.log_likelihood(&tree, 0);
        for e in tree.edge_ids() {
            let ll = engine.log_likelihood(&tree, e);
            prop_assert!((ll - reference).abs() < 1e-8, "edge {e}: {ll} vs {reference}");
        }
    }
}

// ---------------------------------------------------------------------------
// Site-repeat compression: the compressed newview path must be
// bit-identical to the uncompressed one — same log-likelihood bits and
// same per-site scaling counters at every inner node — for any
// alignment, any backend, any repeat density.
// ---------------------------------------------------------------------------

use phylomic::plf::SiteRepeats;

/// An alignment whose patterns cycle through `protos` prototype
/// columns: `protos == 1` is 100% repeats, `protos >= width` is 0%.
fn proto_alignment(tree: &Tree, protos: usize, width: usize, seed: u64) -> CompressedAlignment {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let taxa = tree.num_taxa();
    let cols: Vec<Vec<usize>> = (0..protos)
        .map(|_| (0..taxa).map(|_| rng.random_range(0..4)).collect())
        .collect();
    let rows: Vec<Vec<DnaCode>> = (0..taxa)
        .map(|taxon| {
            (0..width)
                .map(|p| DnaCode::from_state(cols[p % protos][taxon]))
                .collect()
        })
        .collect();
    CompressedAlignment::from_parts(tree.tip_names().to_vec(), rows, vec![1; width]).unwrap()
}

/// Builds one engine per repeats mode (same kernel/alpha) and checks
/// log-likelihood bits and every inner node's per-site scale array are
/// identical at each of the given virtual roots.
fn assert_on_off_identical(
    tree: &Tree,
    aln: &CompressedAlignment,
    kernel: KernelKind,
    alpha: f64,
    roots: &[usize],
) {
    let mk = |site_repeats| {
        LikelihoodEngine::new(
            tree,
            aln,
            EngineConfig {
                kernel,
                alpha,
                site_repeats,
            },
        )
    };
    let mut off = mk(SiteRepeats::Off);
    let mut on = mk(SiteRepeats::On);
    for &root in roots {
        let a = off.log_likelihood(tree, root);
        let b = on.log_likelihood(tree, root);
        prop_assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{:?} root {}: logL {} vs {}",
            kernel,
            root,
            a,
            b
        );
        for inner in 0..off.num_inner() {
            prop_assert_eq!(
                off.cla_scale(inner),
                on.cla_scale(inner),
                "{:?} root {} inner {}: scale arrays differ",
                kernel,
                root,
                inner
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn site_repeats_on_off_bit_identical(
        seed in 0u64..500,
        protos in 1usize..24,
        width in 1usize..48,
        alpha in 0.2f64..3.0,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let names = default_names(8);
        let tree: Tree = random_tree(&names, 0.2, &mut rng).unwrap();
        let aln = proto_alignment(&tree, protos.min(width), width, seed ^ 0xabc);
        assert_on_off_identical(&tree, &aln, KernelKind::Vector, alpha, &[0, 3]);
    }
}

#[test]
fn site_repeats_remainder_tails_every_backend() {
    // Widths around the 8-site kernel block and single-site edge, at
    // 100% repeats (1 prototype) and 0% repeats (all-distinct), on
    // every backend.
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(77);
    let names = default_names(6);
    let tree: Tree = random_tree(&names, 0.15, &mut rng).unwrap();
    for width in [1usize, 7, 8, 9, 31] {
        for protos in [1usize, width] {
            let aln = proto_alignment(&tree, protos, width, 7 + width as u64);
            for kernel in BACKENDS {
                assert_on_off_identical(&tree, &aln, kernel, 0.8, &[0, 2]);
            }
        }
    }
}

#[test]
fn site_repeats_identical_under_forced_scaling() {
    // A deep caterpillar with long branches drives sites below the
    // rescale threshold; the compressed path must reproduce the exact
    // per-site scaling counters, not just the final likelihood.
    use phylomic::tree::build::caterpillar;
    // Conditional likelihoods decay roughly 4× per caterpillar level;
    // 2⁻²⁵⁶ needs ~130 levels.
    let names = default_names(170);
    let tree = caterpillar(&names, 2.0).unwrap();
    // Repeat-heavy: 5 prototype columns over 40 patterns.
    let aln = proto_alignment(&tree, 5, 40, 13);
    for kernel in BACKENDS {
        assert_on_off_identical(&tree, &aln, kernel, 0.5, &[0]);
    }
    // Sanity: scaling actually fired on this dataset.
    let mut e = LikelihoodEngine::new(
        &tree,
        &aln,
        EngineConfig {
            kernel: KernelKind::Scalar,
            alpha: 0.5,
            site_repeats: SiteRepeats::On,
        },
    );
    e.log_likelihood(&tree, 0);
    let scaled: u32 = (0..e.num_inner())
        .map(|i| e.cla_scale(i).iter().sum::<u32>())
        .sum();
    assert!(scaled > 0, "dataset failed to trigger rescaling");
}

#[test]
fn site_repeats_forkjoin_matches_serial() {
    use phylomic::parallel::ForkJoinEvaluator;
    use phylomic::search::Evaluator as _;
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(91);
    let names = default_names(9);
    let tree: Tree = random_tree(&names, 0.18, &mut rng).unwrap();
    // 97 patterns: indivisible by any worker count, so slices have
    // uneven widths and per-slice repeat tables differ.
    let aln = proto_alignment(&tree, 11, 97, 19);
    let cfg = |site_repeats| EngineConfig {
        kernel: KernelKind::Vector,
        alpha: 0.9,
        site_repeats,
    };
    let mut serial_on = LikelihoodEngine::new(&tree, &aln, cfg(SiteRepeats::On));
    for workers in [2usize, 3, 4] {
        let mut fj_on = ForkJoinEvaluator::new(&tree, &aln, cfg(SiteRepeats::On), workers);
        let mut fj_off = ForkJoinEvaluator::new(&tree, &aln, cfg(SiteRepeats::Off), workers);
        for root in [0usize, 4, 8] {
            let s = serial_on.log_likelihood(&tree, root);
            let a = fj_on.log_likelihood(&tree, root);
            let b = fj_off.log_likelihood(&tree, root);
            // Same partitioning on vs off: bit-identical.
            assert_eq!(a.to_bits(), b.to_bits(), "workers {workers} root {root}");
            // Fork-join vs serial: partial sums associate differently.
            assert!(
                (a - s).abs() < 1e-10,
                "workers {workers} root {root}: {a} vs {s}"
            );
        }
    }
}
